//! Workspace chaos test: a bounded seed sweep of the fault-injection
//! harness (the full 100-seed sweep runs as `bench --bin xtra_chaos`).
//!
//! Checks the global invariants of DESIGN.md §8 on the Fig. 5 chain and
//! Fig. 7 COW workloads: refcount conservation, no page leaks after lease
//! reclamation, COW isolation under concurrent faulted writers, typed
//! completion of every request, and per-seed reproducibility.

use bench::chaos::{run_chain_case, run_cow_case, sweep, FaultClass};

#[test]
fn bounded_sweep_holds_all_invariants() {
    // 6 seeds x 4 fault classes x 3 cases, with a determinism double-run
    // every 3rd seed.
    let out = sweep(0..6, 3);
    assert!(
        out.violations.is_empty(),
        "chaos invariant violations:\n{}",
        out.violations.join("\n")
    );
    assert!(out.completed > 0, "no request ever completed");
    assert!(out.cases >= 6 * 4 * 3, "sweep ran {} cases", out.cases);
}

#[test]
fn faults_actually_bite() {
    // Sanity: the harness is not vacuous — across a few seeds the chain
    // workload under partitions must produce at least one typed error.
    let mut errors = 0;
    for seed in 0..4 {
        let r = run_chain_case(
            apps::cluster::SystemKind::DmNet,
            FaultClass::Partition,
            seed,
        );
        errors += r.errors;
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    }
    assert!(errors > 0, "partitions never produced a single typed error");
}

#[test]
fn cow_case_is_reproducible_per_seed() {
    for fault in FaultClass::ALL {
        let a = run_cow_case(fault, 42);
        let b = run_cow_case(fault, 42);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fault class {} not reproducible",
            fault.label()
        );
    }
    // Different seeds explore different schedules.
    let a = run_cow_case(FaultClass::BurstyLoss, 1);
    let b = run_cow_case(FaultClass::BurstyLoss, 2);
    assert_ne!(a.fingerprint(), b.fingerprint(), "seed has no effect");
}

#[test]
fn server_crash_class_reclaims_crashed_client() {
    let r = run_cow_case(FaultClass::ServerCrash, 7);
    assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    assert!(
        r.completed > 0,
        "nothing completed around the crash windows"
    );
}
