//! Workspace chaos test: a bounded seed sweep of the fault-injection
//! harness (the full 100-seed sweep runs as `bench --bin xtra_chaos`).
//!
//! Checks the global invariants of DESIGN.md §8 on the Fig. 5 chain and
//! Fig. 7 COW workloads: refcount conservation, no page leaks after lease
//! reclamation, COW isolation under concurrent faulted writers, typed
//! completion of every request, and per-seed reproducibility. Both
//! workloads run with the DESIGN.md §9 client cache + coalescer enabled
//! (the chain via the cluster default, the COW case explicitly), so every
//! fault sweep also exercises epoch invalidation and batched control ops.

use bench::chaos::{
    run_chain_case, run_cow_case, run_slo_social_case, sweep, sweep_parallel, FaultClass,
};

#[test]
fn bounded_sweep_holds_all_invariants() {
    // 6 seeds x 5 fault classes x 5 cases, with a determinism double-run
    // every 3rd seed.
    let out = sweep(0..6, 3);
    assert!(
        out.violations.is_empty(),
        "chaos invariant violations:\n{}",
        out.violations.join("\n")
    );
    assert!(out.completed > 0, "no request ever completed");
    assert!(out.cases >= 6 * 5 * 5, "sweep ran {} cases", out.cases);
}

#[test]
fn parallel_sweep_matches_serial_fingerprints() {
    // The OS-thread-parallel sweep must reproduce the serial sweep
    // exactly: same records in the same order, same per-seed
    // fingerprints, same aggregates. Two seeds on two threads exercise
    // the round-robin assignment and the seed-order merge.
    let serial = sweep(0..2, 0);
    let parallel = sweep_parallel(0..2, 0, 2);
    assert_eq!(serial.records.len(), parallel.records.len());
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(
            (a.name, a.fault, a.seed, a.rerun),
            (b.name, b.fault, b.seed, b.rerun),
            "record order diverged"
        );
        assert_eq!(
            a.result.fingerprint(),
            b.result.fingerprint(),
            "{} {} seed {}: parallel fingerprint diverges from serial",
            a.name,
            a.fault.label(),
            a.seed
        );
    }
    assert_eq!(serial.cases, parallel.cases);
    assert_eq!(serial.completed, parallel.completed);
    assert_eq!(serial.errors, parallel.errors);
    assert_eq!(serial.violations, parallel.violations);
}

#[test]
fn faults_actually_bite() {
    // Sanity: the harness is not vacuous — across a few seeds the chain
    // workload under partitions must produce at least one typed error.
    let mut errors = 0;
    for seed in 0..4 {
        let r = run_chain_case(
            apps::cluster::SystemKind::DmNet,
            FaultClass::Partition,
            seed,
        );
        errors += r.errors;
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    }
    assert!(errors > 0, "partitions never produced a single typed error");
}

#[test]
fn cow_case_is_reproducible_per_seed() {
    for fault in FaultClass::ALL {
        let a = run_cow_case(fault, 42);
        let b = run_cow_case(fault, 42);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fault class {} not reproducible",
            fault.label()
        );
    }
    // Different seeds explore different schedules. A single pair can
    // collide by luck (two seeds whose loss windows both miss every
    // packet), so require distinct fingerprints across a small set.
    let fps: Vec<_> = (1..5)
        .map(|seed| run_cow_case(FaultClass::BurstyLoss, seed).fingerprint())
        .collect();
    assert!(
        fps.windows(2).any(|w| w[0] != w[1]),
        "seed has no effect: {fps:?}"
    );
}

#[test]
fn overloaded_social_survives_faults_without_leaks() {
    // The DESIGN.md §14 case: an SF=10 population offered 1.2x its
    // measured knee with the admission plane fully on. The case itself
    // flags goodput-collapse-to-zero and post-heal page leaks as
    // violations; here we additionally pin that overload is real (the
    // errors field folds in Busy rejections, which must occur at 1.2x
    // knee even without faults biting) and that the case reproduces.
    let a = run_slo_social_case(FaultClass::BurstyLoss, 5);
    assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
    assert!(a.completed > 0, "goodput collapsed under bursty loss");
    assert!(
        a.errors > 0,
        "1.2x knee with the plane on must shed or fault at least once"
    );
    let b = run_slo_social_case(FaultClass::BurstyLoss, 5);
    assert_eq!(a.fingerprint(), b.fingerprint(), "case not reproducible");
}

#[test]
fn server_crash_class_reclaims_crashed_client() {
    let r = run_cow_case(FaultClass::ServerCrash, 7);
    assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    assert!(
        r.completed > 0,
        "nothing completed around the crash windows"
    );
}

#[test]
fn server_crash_recovery_rebuilds_acknowledged_state() {
    // The durable-tier fault class: every server crash heals through
    // `restart_from_log`, so beyond the shared invariants the case checks
    // digest-exact recovery and byte-exact readback of every acknowledged
    // put (DESIGN.md §12). A handful of seeds hits crash windows at many
    // different log lengths.
    for seed in [3, 11, 29] {
        let r = run_cow_case(FaultClass::ServerCrashRecovery, seed);
        assert!(
            r.violations.is_empty(),
            "seed {seed} violations: {:?}",
            r.violations
        );
        assert!(
            r.completed > 0,
            "seed {seed}: nothing completed around the recovery windows"
        );
    }
}
