//! Property tests for the sharded DM plane (DESIGN.md §13): consistent-hash
//! ring determinism and minimal-movement, and migration equivalence against
//! a shadow model of the memory plane.

use bytes::Bytes;
use dmcommon::{DmServerId, Ref};
use dmnet::{CacheConfig, DmNetClient, DmServerConfig, HashRing, ShardConfig, GKEY_BIT};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The ring is a pure function of (n_servers, vnodes, seed): two
    /// independent constructions — including ones built concurrently on
    /// other OS threads — route every key identically. This is the
    /// property that lets every client resolve placement locally with no
    /// coordination.
    #[test]
    fn ring_is_deterministic_across_runs_and_threads(
        n_servers in 1usize..16,
        vnodes in 1usize..128,
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..256),
    ) {
        let reference = HashRing::new(n_servers, ShardConfig { vnodes }, seed);
        let routed: Vec<DmServerId> = keys.iter().map(|&k| reference.route(k)).collect();
        // Four concurrent re-constructions on distinct OS threads.
        let across_threads = bench::pool::scoped_map(4, 4, |_| {
            let ring = HashRing::new(n_servers, ShardConfig { vnodes }, seed);
            keys.iter().map(|&k| ring.route(k)).collect::<Vec<_>>()
        });
        for other in across_threads {
            prop_assert_eq!(&routed, &other);
        }
        // Every route lands on a real server.
        for r in &routed {
            prop_assert!((r.0 as usize) < n_servers);
        }
    }

    /// Consistent hashing's minimal-movement contract: growing N→N+1
    /// servers remaps at most ~2/(N+1) of keys (2x the ideal 1/(N+1), a
    /// >8-sigma bound at the default 64 vnodes), and every remapped key
    /// lands on the new server — an existing key never moves between two
    /// old servers.
    #[test]
    fn growing_the_ring_moves_few_keys_and_only_to_the_new_server(
        n_servers in 1usize..12,
        seed in any::<u64>(),
    ) {
        const KEYS: u64 = 4096;
        let config = ShardConfig::default();
        let old = HashRing::new(n_servers, config, seed);
        let new = old.grow();
        prop_assert_eq!(new.n_servers(), n_servers + 1);
        prop_assert!(new.epoch() > old.epoch());
        let mut moved = 0u64;
        for k in 0..KEYS {
            let key = GKEY_BIT | k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (a, b) = (old.route(key), new.route(key));
            if a != b {
                moved += 1;
                prop_assert_eq!(
                    b.0 as usize, n_servers,
                    "remapped key moved between two old servers"
                );
            }
        }
        let bound = (2.0 / (n_servers + 1) as f64) * KEYS as f64;
        prop_assert!(
            (moved as f64) <= bound,
            "grow moved {} of {} keys (bound {:.0})", moved, KEYS, bound
        );
    }
}

proptest! {
    // Full-simulation cases are expensive; fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Migration equivalence against a shadow model: after an arbitrary
    /// schedule of migrations over randomly-placed refs, every ref reads
    /// back byte-identical to the shadow copy (through redirects where
    /// needed), COW sharing still isolates writers, and releasing
    /// everything returns every page on every server — refcounts and
    /// sharing state survived the moves exactly.
    #[test]
    fn migration_matches_shadow_model(
        seed in any::<u64>(),
        blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..12_000),
            1..8
        ),
        moves in proptest::collection::vec((0usize..8, 0u8..3), 0..12),
    ) {
        const N_DM: u8 = 3;
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 17);
            let params = ModelParams::new();
            let dm_nodes: Vec<_> = (0..N_DM)
                .map(|i| net.add_node(format!("dm{i}"), NicConfig::default()))
                .collect();
            let servers = dmnet::start_pool(&net, &dm_nodes, &params, DmServerConfig::default());
            let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            let mut clients = Vec::new();
            for i in 0..2 {
                let node = net.add_node(format!("c{i}"), NicConfig::default());
                let rpc = RpcBuilder::new(&net, node, 100).build();
                clients.push(
                    DmNetClient::connect_sharded(
                        rpc,
                        pool.clone(),
                        CacheConfig::all_on(),
                        ShardConfig::default(),
                        seed,
                    )
                    .await
                    .unwrap(),
                );
            }

            // Shadow model: gkey -> expected bytes. The real plane may
            // relocate refs at will; the shadow never changes.
            let mut refs: Vec<(Ref, Vec<u8>)> = Vec::new();
            for b in &blobs {
                let r = clients[0].put_ref(&Bytes::from(b.clone())).await.unwrap();
                let Ref::Net { key, .. } = r else { unreachable!() };
                assert!(key & GKEY_BIT != 0);
                refs.push((r, b.clone()));
            }

            // Arbitrary migration schedule, including no-op repeats and
            // migrating the same ref several hops.
            for &(ri, dst) in &moves {
                let (r, _) = &refs[ri % refs.len()];
                match clients[0].migrate_ref(r, DmServerId(dst)).await {
                    Ok(()) => {}
                    // Migrating to the ref's current home is rejected
                    // (self-migration) — the shadow is unaffected.
                    Err(dmcommon::DmError::InvalidAddress) => {}
                    Err(e) => panic!("migration failed on a healthy fabric: {e:?}"),
                }
            }

            // Bytes: both clients (one migrated, one cold) agree with the
            // shadow for every ref, at full length and at a random-ish
            // interior window.
            for (r, want) in &refs {
                let len = want.len() as u64;
                for c in &clients {
                    let got = c.read_ref(r, 0, len).await.unwrap();
                    assert_eq!(&got[..], &want[..], "migrated ref diverged from shadow");
                    if len > 2 {
                        let off = len / 3;
                        let got = c.read_ref(r, off, len - off).await.unwrap();
                        assert_eq!(&got[..], &want[off as usize..]);
                    }
                }
            }

            // COW sharing: a writer's private divergence never leaks into
            // the shared ref, wherever the ref lives now.
            let (r0, want0) = &refs[0];
            let mapping = clients[1].map_ref(r0).await.unwrap();
            clients[1]
                .rwrite(mapping, &Bytes::from(vec![0xEE; want0.len().min(64)]))
                .await
                .unwrap();
            let shared = clients[0].read_ref(r0, 0, want0.len() as u64).await.unwrap();
            assert_eq!(&shared[..], &want0[..], "COW isolation broken after migration");
            clients[1].rfree(mapping).await.unwrap();

            // Refcounts: releasing every ref returns every page on every
            // server — nothing migrated is double-pinned or leaked.
            for (r, _) in &refs {
                clients[1].release_ref(r).await.unwrap();
            }
            for s in &servers {
                s.check_invariants_all();
                assert_eq!(
                    s.free_pages_total(),
                    s.capacity_pages_total(),
                    "pages leaked across migrations"
                );
                assert_eq!(s.gkeys_bound(), 0);
            }
        });
    }
}
