//! Workspace-level property tests: random request patterns through full
//! deployments keep application-observable behavior identical across the
//! three systems, and `Value` semantics hold under arbitrary data.

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use dmrpc::Value;
use proptest::prelude::*;
use simcore::Sim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For a random chain length and random payloads (spanning the
    /// inline/by-ref threshold), all three systems compute identical
    /// checksums.
    #[test]
    fn systems_agree_on_random_workloads(
        length in 1usize..6,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..20_000),
            1..5
        ),
    ) {
        let mut answers: Vec<Vec<u64>> = Vec::new();
        for kind in SystemKind::ALL {
            let payloads = payloads.clone();
            let sim = Sim::new();
            let sums = sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 42);
                let app = build_chain(&cluster, length).await;
                let mut sums = Vec::new();
                for p in &payloads {
                    sums.push(app.request(&Bytes::from(p.clone())).await.expect("request"));
                }
                sums
            });
            answers.push(sums);
        }
        prop_assert_eq!(&answers[0], &answers[1], "eRPC vs DmRPC-net");
        prop_assert_eq!(&answers[0], &answers[2], "eRPC vs DmRPC-CXL");
        // And the checksums are actually right.
        for (p, &s) in payloads.iter().zip(&answers[0]) {
            let want: u64 = p.iter().map(|&b| b as u64).sum();
            prop_assert_eq!(s, want);
        }
    }

    /// make_value/fetch is the identity for arbitrary bytes on both DM
    /// backends, and a shared value read by many parties stays immutable
    /// while any of them overwrite their own view.
    #[test]
    fn value_roundtrip_and_immutability(
        data in proptest::collection::vec(any::<u8>(), 0..50_000),
        kind_sel in 0usize..2,
        write_frac in 0.0f64..=1.0,
    ) {
        let kind = [SystemKind::DmNet, SystemKind::DmCxl][kind_sel];
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 1, ClusterConfig::default(), 9);
            let a = cluster.add_server("a");
            let b = cluster.add_server("b");
            let writer = cluster.endpoint(&a, 100).await;
            let reader = cluster.endpoint(&b, 100).await;
            let data = Bytes::from(data);
            let v = writer.make_value(data.clone()).await.expect("make_value");
            // Reader sees the exact bytes.
            assert_eq!(reader.fetch(&v).await.expect("fetch"), data);
            // Reader overwrites part of its own view...
            reader.overwrite_fraction(&v, write_frac).await.expect("overwrite");
            // ...and the shared value still reads back pristine everywhere.
            assert_eq!(writer.fetch(&v).await.expect("fetch"), data);
            assert_eq!(reader.fetch(&v).await.expect("fetch"), data);
            writer.release(&v).await.expect("release");
        });
    }

    /// Encoded values survive a hostile wire: decoding arbitrary bytes
    /// never panics, and any value that decodes re-encodes identically.
    #[test]
    fn value_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let b = Bytes::from(bytes);
        if let Ok(v) = Value::decode(&b) {
            let enc = v.encode();
            prop_assert_eq!(Value::decode(&enc).unwrap(), v);
        }
    }
}
