//! Crash-recovery oracle for the durable DM tier (DESIGN.md §12).
//!
//! Property: a durable server crashed after ANY acknowledged operation
//! and healed through `restart_from_log` rebuilds exactly the
//! acknowledged pre-crash state — zero lost acknowledged puts, zero
//! resurrected frees. The proptest drives a random mutating-op sequence
//! through a cache-off client and crashes the server at EVERY prefix
//! point (recovering in place, so the log also accumulates across
//! recoveries and through compaction checkpoints); a byte-level shadow
//! model tracks what every live region and ref must contain.
//!
//! The deterministic tests cover the log's failure modes: a torn final
//! record (partial append at crash) and a flipped bit anywhere in the
//! tail must both truncate recovery to the last intact record boundary,
//! never corrupt state or resurrect a free.

use bytes::Bytes;
use dmcommon::{DmError, Ref, RemoteAddr};
use dmnet::{DmNetClient, DmServerConfig, WalConfig};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

/// A live region in the shadow model: its address, length, and the bytes
/// every post-recovery read must return.
struct ModelRegion {
    addr: RemoteAddr,
    len: u64,
    data: Vec<u8>,
}

/// A live ref in the shadow model: the handle plus the immutable snapshot
/// it must serve after every recovery.
struct ModelRef {
    r: Ref,
    snapshot: Vec<u8>,
}

#[derive(Clone, Debug)]
enum Op {
    Alloc {
        pages: u64,
    },
    Write {
        region: usize,
        off: u64,
        len: usize,
        fill: u8,
    },
    CreateRef {
        region: usize,
    },
    WriteCreateRef {
        region: usize,
        fill: u8,
    },
    MapRef {
        r: usize,
    },
    PutRef {
        len: usize,
        fill: u8,
    },
    Free {
        region: usize,
    },
    ReleaseRef {
        r: usize,
    },
}

const PS: u64 = dmcommon::PAGE_SIZE as u64;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..4).prop_map(|pages| Op::Alloc { pages }),
        (0usize..8, 0u64..2 * PS, 1usize..1500, any::<u8>()).prop_map(
            |(region, off, len, fill)| Op::Write {
                region,
                off,
                len,
                fill
            }
        ),
        (0usize..8).prop_map(|region| Op::CreateRef { region }),
        (0usize..8, any::<u8>()).prop_map(|(region, fill)| Op::WriteCreateRef { region, fill }),
        (0usize..8).prop_map(|r| Op::MapRef { r }),
        (1usize..2000, any::<u8>()).prop_map(|(len, fill)| Op::PutRef { len, fill }),
        (0usize..8).prop_map(|region| Op::Free { region }),
        (0usize..8).prop_map(|r| Op::ReleaseRef { r }),
    ]
}

/// Test fixture: one durable single-node server plus a cache-off client
/// (every op is an acknowledged server round trip).
async fn durable_fixture(
    seed: u64,
    durability: WalConfig,
) -> (Network, std::rc::Rc<dmnet::DmServer>, DmNetClient) {
    let net = Network::new(FabricConfig::default(), seed);
    let params = ModelParams::new();
    let dm_node = net.add_node("dm0", NicConfig::default());
    let servers = dmnet::start_pool(
        &net,
        &[dm_node],
        &params,
        DmServerConfig {
            capacity_pages: 512,
            lease_ttl: None,
            durability: Some(durability),
            ..Default::default()
        },
    );
    let cnode = net.add_node("client", NicConfig::default());
    let rpc = RpcBuilder::new(&net, cnode, 100).build();
    let client = DmNetClient::connect(rpc, vec![servers[0].addr()])
        .await
        .expect("fault-free connect");
    (net, servers[0].clone(), client)
}

/// Apply one op to the real system and mirror every acknowledged effect
/// in the shadow model. Typed errors (e.g. pool exhausted) leave the
/// model untouched — an un-acked op has no durability contract.
async fn apply_op(
    client: &DmNetClient,
    op: &Op,
    regions: &mut Vec<ModelRegion>,
    refs: &mut Vec<ModelRef>,
    released: &mut Vec<Ref>,
) {
    match *op {
        Op::Alloc { pages } => {
            if let Ok(addr) = client.ralloc(pages * PS).await {
                regions.push(ModelRegion {
                    addr,
                    len: pages * PS,
                    data: vec![0u8; (pages * PS) as usize],
                });
            }
        }
        Op::Write {
            region,
            off,
            len,
            fill,
        } => {
            if regions.is_empty() {
                return;
            }
            let idx = region % regions.len();
            let r = &mut regions[idx];
            if off + len as u64 > r.len {
                return;
            }
            let at = RemoteAddr {
                va: r.addr.va + off,
                ..r.addr
            };
            client
                .rwrite(at, &Bytes::from(vec![fill; len]))
                .await
                .expect("in-bounds write");
            r.data[off as usize..off as usize + len].fill(fill);
        }
        Op::CreateRef { region } => {
            if regions.is_empty() {
                return;
            }
            let r = &regions[region % regions.len()];
            if let Ok(handle) = client.create_ref(r.addr, r.len).await {
                refs.push(ModelRef {
                    r: handle,
                    snapshot: r.data.clone(),
                });
            }
        }
        Op::WriteCreateRef { region, fill } => {
            if regions.is_empty() {
                return;
            }
            let idx = region % regions.len();
            let data = vec![fill; regions[idx].len as usize];
            let addr = regions[idx].addr;
            if let Ok(handle) = client
                .write_create_ref(addr, &Bytes::from(data.clone()))
                .await
            {
                regions[idx].data = data.clone();
                refs.push(ModelRef {
                    r: handle,
                    snapshot: data,
                });
            }
        }
        Op::MapRef { r } => {
            if refs.is_empty() {
                return;
            }
            let mr = &refs[r % refs.len()];
            let snapshot = mr.snapshot.clone();
            if let Ok(addr) = client.map_ref(&mr.r).await {
                regions.push(ModelRegion {
                    addr,
                    len: snapshot.len() as u64,
                    data: snapshot,
                });
            }
        }
        Op::PutRef { len, fill } => {
            let data = vec![fill; len];
            if let Ok(handle) = client.put_ref(&Bytes::from(data.clone())).await {
                refs.push(ModelRef {
                    r: handle,
                    snapshot: data,
                });
            }
        }
        Op::Free { region } => {
            if regions.is_empty() {
                return;
            }
            let idx = region % regions.len();
            let r = regions.remove(idx);
            client.rfree(r.addr).await.expect("free of live region");
        }
        Op::ReleaseRef { r } => {
            if refs.is_empty() {
                return;
            }
            let idx = r % refs.len();
            let mr = refs.remove(idx);
            client
                .release_ref(&mr.r)
                .await
                .expect("release of live ref");
            released.push(mr.r);
        }
    }
}

/// Verify the recovered server against the shadow model through the
/// client: live regions and refs read back byte-exact, released refs
/// stay dead. Returns violations instead of panicking so proptest can
/// shrink the op sequence.
async fn verify_model(
    client: &DmNetClient,
    regions: &[ModelRegion],
    refs: &[ModelRef],
    released: &[Ref],
    out: &mut Vec<String>,
) {
    for (i, r) in regions.iter().enumerate() {
        match client.rread(r.addr, r.len).await {
            Ok(b) if b[..] == r.data[..] => {}
            Ok(_) => out.push(format!("region {i}: bytes diverged after recovery")),
            Err(e) => out.push(format!("region {i}: lost after recovery: {e:?}")),
        }
    }
    for (i, mr) in refs.iter().enumerate() {
        match client.read_ref(&mr.r, 0, mr.snapshot.len() as u64).await {
            Ok(b) if b[..] == mr.snapshot[..] => {}
            Ok(_) => out.push(format!("ref {i}: snapshot diverged after recovery")),
            Err(e) => out.push(format!("ref {i}: lost after recovery: {e:?}")),
        }
    }
    for (i, r) in released.iter().enumerate() {
        match client.read_ref(r, 0, 1).await {
            Err(DmError::InvalidRef) => {}
            other => out.push(format!(
                "released ref {i} resurrected by recovery: {other:?}"
            )),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant, exhaustively: crash + recover after EVERY
    /// acknowledged op in a random sequence. Each recovery must rebuild a
    /// digest-identical memory plane, keep the invalidation epoch
    /// monotone, hold the refcount invariants, and serve every byte the
    /// shadow model predicts.
    #[test]
    fn recovery_at_every_prefix_rebuilds_acknowledged_state(
        ops in proptest::collection::vec(op_strategy(), 1..28),
        seed in 0u64..1_000,
    ) {
        let sim = Sim::new();
        let violations = sim.block_on(async move {
            let (_net, server, client) = durable_fixture(seed, WalConfig::zero_cost()).await;
            let mut regions = Vec::new();
            let mut refs = Vec::new();
            let mut released = Vec::new();
            let mut violations = Vec::new();

            for (n, op) in ops.iter().enumerate() {
                apply_op(&client, op, &mut regions, &mut refs, &mut released).await;

                // Crash at this prefix point and recover in place.
                let pre_digest = server.pages_digest();
                let pre_epoch = server.epoch();
                server.crash();
                let report = server.restart_from_log().await;
                if report.torn_tail {
                    violations.push(format!("op {n}: torn tail in an uncorrupted log"));
                }
                if server.pages_digest() != pre_digest {
                    violations.push(format!(
                        "op {n} ({op:?}): recovered digest diverges from acknowledged state"
                    ));
                }
                if server.epoch() < pre_epoch {
                    violations.push(format!(
                        "op {n}: invalidation epoch regressed {} -> {}",
                        pre_epoch,
                        server.epoch()
                    ));
                }
                server.check_invariants_all();
                verify_model(&client, &regions, &refs, &released, &mut violations).await;
                if !violations.is_empty() {
                    break;
                }
            }
            violations
        });
        prop_assert!(violations.is_empty(), "{}", violations.join("\n"));
    }

    /// Compaction transparency: with an aggressive compaction threshold
    /// the same property holds while the log repeatedly collapses into
    /// checkpoint records mid-sequence.
    #[test]
    fn recovery_survives_aggressive_compaction(
        ops in proptest::collection::vec(op_strategy(), 1..28),
        seed in 0u64..1_000,
    ) {
        let config = WalConfig {
            compact_threshold_bytes: 2048,
            ..WalConfig::zero_cost()
        };
        let sim = Sim::new();
        let violations = sim.block_on(async move {
            let (_net, server, client) = durable_fixture(seed, config).await;
            let mut regions = Vec::new();
            let mut refs = Vec::new();
            let mut released = Vec::new();
            let mut violations = Vec::new();
            for op in &ops {
                apply_op(&client, op, &mut regions, &mut refs, &mut released).await;
            }
            let pre_digest = server.pages_digest();
            server.crash();
            server.restart_from_log().await;
            if server.pages_digest() != pre_digest {
                violations.push("recovered digest diverges across compaction".into());
            }
            server.check_invariants_all();
            verify_model(&client, &regions, &refs, &released, &mut violations).await;
            violations
        });
        prop_assert!(violations.is_empty(), "{}", violations.join("\n"));
    }
}

/// Scripted op sequence used by the corruption tests: every record kind
/// lands in the log at a known byte offset.
async fn scripted_history(client: &DmNetClient, server: &dmnet::DmServer) -> (Vec<u64>, Vec<u64>) {
    let wal = server.wal().expect("durable server");
    let mut digests = Vec::new();
    let mut bytes = Vec::new();
    // Baseline: the client's REGISTER is already logged.
    digests.push(server.pages_digest());
    bytes.push(wal.log_bytes());
    let a = client.ralloc(2 * PS).await.unwrap();
    let mut record = |server: &dmnet::DmServer| {
        digests.push(server.pages_digest());
        bytes.push(server.wal().unwrap().log_bytes());
    };
    record(server);
    client
        .rwrite(a, &Bytes::from(vec![0x11; 64]))
        .await
        .unwrap();
    record(server);
    let r1 = client.create_ref(a, 2 * PS).await.unwrap();
    record(server);
    let _m = client.map_ref(&r1).await.unwrap();
    record(server);
    let r2 = client.put_ref(&Bytes::from(vec![0x22; 300])).await.unwrap();
    record(server);
    client.release_ref(&r2).await.unwrap();
    record(server);
    let b = client.ralloc(PS).await.unwrap();
    record(server);
    client.rfree(b).await.unwrap();
    record(server);
    (digests, bytes)
}

/// A torn final record — the crash hit mid-append — must truncate
/// recovery to exactly the previous acknowledged state, at every prefix
/// boundary of a real op history.
#[test]
fn torn_tail_recovers_to_previous_acknowledged_state() {
    let sim = Sim::new();
    sim.block_on(async move {
        // Compaction off so recorded byte offsets stay valid.
        let config = WalConfig {
            compact_threshold_bytes: 0,
            ..WalConfig::zero_cost()
        };
        let (_net, server, client) = durable_fixture(7, config).await;
        let (digests, bytes) = scripted_history(&client, &server).await;
        let full = server.wal().unwrap().raw();
        for (n, (&digest_n, w)) in digests.iter().zip(bytes.windows(2)).enumerate() {
            let (start, end) = (w[0], w[1]);
            assert!(end > start, "op {n} logged no record");
            // Tear the next op's first record: 7 bytes is inside its
            // frame header, so the tail is structurally torn.
            let torn = full[..(start + 7).min(end) as usize].to_vec();
            server.wal().unwrap().set_raw(torn);
            server.crash();
            let report = server.restart_from_log().await;
            assert!(report.torn_tail, "op {n}: torn tail not detected");
            assert_eq!(
                server.pages_digest(),
                digest_n,
                "op {n}: torn-tail recovery diverged from acknowledged prefix"
            );
            server.check_invariants_all();
        }
        // Restore the intact log: full recovery still works afterwards.
        server.wal().unwrap().set_raw(full);
        server.crash();
        let report = server.restart_from_log().await;
        assert!(!report.torn_tail);
        assert_eq!(server.pages_digest(), *digests.last().unwrap());
    });
}

/// A flipped bit anywhere in the tail (media corruption) fails the CRC
/// and truncates recovery to the last intact record boundary — corrupt
/// bytes are never replayed into the memory plane.
#[test]
fn bit_flip_truncates_recovery_at_corruption_point() {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = WalConfig {
            compact_threshold_bytes: 0,
            ..WalConfig::zero_cost()
        };
        let (_net, server, client) = durable_fixture(11, config).await;
        let (digests, bytes) = scripted_history(&client, &server).await;
        let full = server.wal().unwrap().raw();
        for (n, (&digest_n, w)) in digests.iter().zip(bytes.windows(2)).enumerate() {
            let start = w[0] as usize;
            // Flip one payload bit inside the next op's first record.
            let mut flipped = full.clone();
            flipped[start + 17] ^= 0x40;
            server.wal().unwrap().set_raw(flipped);
            server.crash();
            let report = server.restart_from_log().await;
            assert!(report.torn_tail, "op {n}: bit flip not detected");
            assert_eq!(
                server.pages_digest(),
                digest_n,
                "op {n}: recovery replayed past a corrupt record"
            );
            server.check_invariants_all();
        }
        let _ = digests;
    });
}

/// The repaired log stays append-able: after a torn-tail recovery, new
/// acknowledged ops land on the truncated log and the NEXT recovery
/// includes them (the crash-during-recovery story composes).
#[test]
fn recovery_after_repair_accepts_new_ops() {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = WalConfig {
            compact_threshold_bytes: 0,
            ..WalConfig::zero_cost()
        };
        let (_net, server, client) = durable_fixture(13, config).await;
        client.ralloc(PS).await.unwrap();
        let full = server.wal().unwrap().raw();
        // Tear mid-way through the ALLOC record.
        server
            .wal()
            .unwrap()
            .set_raw(full[..full.len() - 5].to_vec());
        server.crash();
        let report = server.restart_from_log().await;
        assert!(report.torn_tail);
        // The alloc was torn out; the client's lost region is gone, and
        // new ops must succeed on the repaired log.
        let a2 = client.ralloc(PS).await.unwrap();
        client
            .rwrite(a2, &Bytes::from(vec![0x33; 16]))
            .await
            .unwrap();
        let pre = server.pages_digest();
        server.crash();
        let report = server.restart_from_log().await;
        assert!(!report.torn_tail, "repaired log reported torn again");
        assert_eq!(server.pages_digest(), pre);
        assert_eq!(&client.rread(a2, 16).await.unwrap()[..], &[0x33; 16][..]);
    });
}
