//! Cross-crate integration tests: full deployments of the paper's systems,
//! exercised end-to-end through the public APIs.

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::image_pipeline::{build_pipeline, OP_COMPRESS, OP_TRANSCODE};
use apps::social::build_social;
use bytes::Bytes;
use simcore::Sim;

/// The same request must produce identical application-level results on
/// all three systems — transfer semantics are invisible to correctness.
#[test]
fn three_systems_agree_on_results() {
    let payload = Bytes::from((0..50_000u32).map(|i| (i % 241) as u8).collect::<Vec<_>>());
    let expected: u64 = payload.iter().map(|&b| b as u64).sum();
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        let payload = payload.clone();
        let got = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 1);
            let app = build_chain(&cluster, 5).await;
            app.request(&payload).await.expect("request")
        });
        assert_eq!(got, expected, "{kind:?}");
    }
}

/// End-to-end data integrity through refs and COW survives packet loss:
/// the RPC layer retransmits, the DM layer is never corrupted.
#[test]
fn chain_survives_packet_loss() {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 99);
        cluster.net.set_loss_probability(0.02);
        let app = build_chain(&cluster, 3).await;
        let payload = Bytes::from(vec![5u8; 20_000]);
        let expected: u64 = 5 * 20_000;
        for i in 0..30 {
            let got = app.request(&payload).await.expect("request under loss");
            assert_eq!(got, expected, "iteration {i}");
        }
        assert!(cluster.net.dropped_loss() > 0, "loss must actually occur");
    });
}

/// The image pipeline transforms images identically on all systems, and
/// the DM pools do not leak pages across requests.
#[test]
fn image_pipeline_correct_and_leak_free() {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 3);
        let app = build_pipeline(&cluster).await;
        let image = Bytes::from((0..16384u32).map(|i| (i % 100) as u8).collect::<Vec<_>>());
        for _ in 0..10 {
            let out = app.request(OP_TRANSCODE, &image).await.expect("transcode");
            assert_eq!(out.len(), image.len());
            let out = app.request(OP_COMPRESS, &image).await.expect("compress");
            assert_eq!(out.len(), image.len() / 2);
        }
        // Drain async releases, then verify page-pool recovery.
        simcore::sleep(std::time::Duration::from_millis(1)).await;
        cluster.dm_servers[0].with_page_manager(|pm| {
            pm.check_invariants();
            assert_eq!(
                pm.free_pages(),
                pm.capacity_pages(),
                "pages leaked across requests"
            );
        });
    });
}

/// The social network behaves identically (content-wise) under eRPC and
/// DmRPC-net, while the data movers' memory traffic differs radically.
#[test]
fn social_network_equivalence_and_mover_traffic() {
    let run = |kind: SystemKind| {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 21);
            let app = build_social(&cluster, 40, 4096, 5).await;
            for u in 0..10 {
                app.compose(u).await.expect("compose");
            }
            let mut total = 0usize;
            for u in 0..10 {
                total += app.read_user(u).await.expect("read_user");
            }
            (total, app.servers[0].mem.traffic_bytes())
        })
    };
    let (erpc_bytes, erpc_mover) = run(SystemKind::Erpc);
    let (dm_bytes, dm_mover) = run(SystemKind::DmNet);
    assert_eq!(erpc_bytes, dm_bytes, "same content served");
    assert_eq!(erpc_bytes, 10 * 4096);
    assert!(
        dm_mover * 10 < erpc_mover,
        "DmRPC movers must be >10x colder: {dm_mover} vs {erpc_mover}"
    );
}

/// The CXL latency knob (Fig. 12 mechanism) slows DmRPC-CXL monotonically.
#[test]
fn cxl_latency_knob_monotone_end_to_end() {
    let mut last = 0u64;
    for lat_ns in [75u64, 265, 400] {
        let sim = Sim::new();
        let elapsed = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmCxl, 1, ClusterConfig::default(), 4);
            cluster
                .params
                .set_cxl_latency(std::time::Duration::from_nanos(lat_ns));
            let app = build_chain(&cluster, 3).await;
            let payload = Bytes::from(vec![1u8; 32768]);
            app.request(&payload).await.expect("warmup");
            let t0 = simcore::now();
            app.request(&payload).await.expect("request");
            (simcore::now() - t0).as_nanos() as u64
        });
        assert!(
            elapsed > last,
            "latency must grow with CXL latency: {elapsed} after {last}"
        );
        last = elapsed;
    }
}

/// Deterministic replay: identical seeds give bit-identical simulations
/// across full end-to-end deployments.
#[test]
fn full_deployment_is_deterministic() {
    let fingerprint = || {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 7);
            cluster.net.set_loss_probability(0.01);
            let app = build_social(&cluster, 30, 4096, 11).await;
            app.preload(20).await.expect("preload");
            let mut acc = 0usize;
            for _ in 0..20 {
                app.mixed_request().await.expect("mixed");
                acc += 1;
            }
            acc
        });
        (sim.poll_count(), sim.now().nanos())
    };
    assert_eq!(fingerprint(), fingerprint());
}

/// Size-aware transfer: tiny arguments stay inline on every backend and
/// still round-trip correctly.
#[test]
fn small_arguments_ride_inline_everywhere() {
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 1, ClusterConfig::default(), 8);
            let node = cluster.add_server("c");
            let ep = cluster.endpoint(&node, 100).await;
            let v = ep
                .make_value(Bytes::from_static(b"tiny"))
                .await
                .expect("make_value");
            assert!(!v.is_by_ref(), "{kind:?}");
            assert_eq!(&ep.fetch(&v).await.expect("fetch")[..], b"tiny");
        });
    }
}
