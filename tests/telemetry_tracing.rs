//! Telemetry integration: one causal span tree across the full DmRPC-net
//! stack, golden-fingerprint trace export, and zero-overhead-when-off.

use std::collections::{HashMap, HashSet};

use apps::chain::{build_chain, CHAIN_REQ};
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use simcore::Sim;
use telemetry::{SpanKind, SpanRecord};

/// One traced request against a 3-service DmRPC-net chain: argument
/// upload, a COW-provoking overwrite, the chain call, aggregation and the
/// deferred (coalesced) release. Returns the records and the trace id.
fn traced_chain_spans() -> (Vec<SpanRecord>, u64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 7);
        let tracer = cluster.enable_tracing(11, 1);
        let app = build_chain(&cluster, 3).await;
        let client = app.client.clone();
        let payload = Bytes::from(vec![9u8; 8192]);
        let trace_id;
        {
            let root = telemetry::start_trace("test.request", client.addr().node.0)
                .expect("1-in-1 sampling selects the first request");
            trace_id = root.ctx().trace_id;
            let v = client.make_value(payload.clone()).await.expect("upload");
            assert!(v.is_by_ref(), "8 KiB argument must go by reference");
            // Writing a shared ref's pages forces the DM server to COW.
            client.overwrite_fraction(&v, 0.5).await.expect("overwrite");
            let reply = client.call(app.entry, CHAIN_REQ, &v).await.expect("chain");
            drop(reply);
            client.release_async(v);
        }
        // Let the detached release and the coalescer's flush drain so the
        // batched sub-op's span is recorded too.
        simcore::sleep(std::time::Duration::from_millis(5)).await;
        (tracer.records(), trace_id)
    })
}

/// The traced request forms a single causal tree whose kinds and
/// parentage cover every layer: client call, fabric hops, server
/// handling, DM control ops, COW, and application memory charges.
#[test]
fn chain_request_forms_one_causal_span_tree() {
    let (records, trace_id) = traced_chain_spans();
    let spans: Vec<&SpanRecord> = records.iter().filter(|r| r.trace_id == trace_id).collect();
    assert!(
        spans.len() >= 10,
        "expected a rich tree, got {}",
        spans.len()
    );

    // Exactly one root, and it is the Request span.
    let roots: Vec<&&SpanRecord> = spans.iter().filter(|r| r.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "one causal root");
    assert_eq!(roots[0].kind, SpanKind::Request);
    let root_id = roots[0].span_id;

    // Every span's parent chain resolves to that root: a single tree with
    // no dangling parents and no cycles.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|r| (r.span_id, *r)).collect();
    for s in &spans {
        let mut cur = **s;
        let mut steps = 0;
        while cur.parent_id != 0 {
            cur = **by_id.get(&cur.parent_id).unwrap_or_else(|| {
                panic!("span {} ({}) has a dangling parent", cur.span_id, cur.name)
            });
            steps += 1;
            assert!(steps < 64, "parent chain did not terminate");
        }
        assert_eq!(cur.span_id, root_id, "span {} roots elsewhere", s.name);
    }

    // Every layer of the stack appears in the tree.
    for kind in [
        SpanKind::Request,
        SpanKind::ClientCall,
        SpanKind::Serialize,
        SpanKind::NetHop,
        SpanKind::ServerHandle,
        SpanKind::DmOp,
        SpanKind::Cow,
        SpanKind::MemCharge,
    ] {
        assert!(
            spans.iter().any(|s| s.kind == kind),
            "kind {kind:?} missing from the tree"
        );
    }

    // Parentage is structurally correct per kind.
    let parent_kind = |s: &SpanRecord| by_id[&s.parent_id].kind;
    for s in &spans {
        match s.kind {
            SpanKind::ServerHandle => assert_eq!(
                parent_kind(s),
                SpanKind::ClientCall,
                "server handling parents under the originating client call"
            ),
            SpanKind::Cow => assert_eq!(
                parent_kind(s),
                SpanKind::DmOp,
                "COW copies happen inside a DM operation"
            ),
            SpanKind::Serialize => assert_eq!(
                parent_kind(s),
                SpanKind::ServerHandle,
                "dispatch CPU is charged inside the handler"
            ),
            SpanKind::NetHop => assert!(
                matches!(
                    parent_kind(s),
                    SpanKind::ClientCall | SpanKind::ServerHandle
                ),
                "hops start from a sender with request context"
            ),
            _ => {}
        }
    }

    // The chain itself was traced across distinct machines: three services
    // plus at least one DM server handled RPCs inside this one trace.
    let handler_nodes: HashSet<u32> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ServerHandle)
        .map(|s| s.node)
        .collect();
    assert!(
        handler_nodes.len() >= 4,
        "traced handlers on {} nodes, expected the 3 services plus a DM server",
        handler_nodes.len()
    );

    // The deferred release rode a coalesced batch and was re-parented into
    // this trace via its on-wire context.
    assert!(
        spans
            .iter()
            .any(|s| s.kind == SpanKind::DmOp && s.name == "dm.release_ref"),
        "batched release_ref must stay attributed to the request"
    );
}

/// Deterministic export: the same seeded run produces byte-identical
/// Chrome-trace JSON on repeat runs and on other OS threads (so sweeping
/// harnesses — e.g. chaos with any `CHAOS_THREADS` setting — cannot
/// perturb traces).
#[test]
fn trace_export_is_byte_identical_across_runs_and_threads() {
    fn traced_run_json() -> String {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 21);
            cluster.enable_tracing(5, 2);
            let app = build_chain(&cluster, 3).await;
            let payload = Bytes::from(vec![3u8; 4096]);
            for _ in 0..10 {
                app.request(&payload).await.expect("request");
            }
            simcore::sleep(std::time::Duration::from_millis(5)).await;
            cluster.trace_json().expect("tracing enabled")
        })
    }
    let golden = traced_run_json();
    assert!(golden.contains("\"traceEvents\""));
    assert_eq!(golden, traced_run_json(), "second run diverged");
    for h in [
        std::thread::spawn(traced_run_json),
        std::thread::spawn(traced_run_json),
    ] {
        assert_eq!(
            h.join().expect("worker"),
            golden,
            "cross-thread run diverged"
        );
    }
}

/// A tracer that is installed but sampling-off must not perturb the
/// simulation at all: identical poll counts and virtual end time.
#[test]
fn installed_but_off_telemetry_is_zero_overhead() {
    fn fingerprint(install_tracer: bool) -> (u64, u64) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 33);
            if install_tracer {
                cluster.enable_tracing(9, 0); // installed, sampling off
            }
            let app = build_chain(&cluster, 3).await;
            let payload = Bytes::from(vec![1u8; 16384]);
            for _ in 0..8 {
                app.request(&payload).await.expect("request");
            }
            simcore::sleep(std::time::Duration::from_millis(5)).await;
        });
        (sim.poll_count(), sim.now().nanos())
    }
    assert_eq!(fingerprint(false), fingerprint(true));
}

/// The deepest-span-wins sweep attributes every instant to exactly one
/// category, so per-category sums must equal end-to-end latency (within
/// 1% for integer-averaged rows) on all three systems — the self-check
/// behind `results/xtra_latency_breakdown.csv`.
#[test]
fn breakdown_sums_match_end_to_end_on_all_systems() {
    for kind in SystemKind::ALL {
        let b = bench::latency_breakdown::measure(kind);
        assert!(b.total_ns > 0, "{kind:?} produced an empty breakdown");
        let (sum, total) = (b.category_sum() as f64, b.total_ns as f64);
        assert!(
            (sum - total).abs() <= total * 0.01,
            "{kind:?}: categories sum to {sum}, end-to-end {total}"
        );
    }
}
