//! Golden-fingerprint gate for the partitioned simulation engine
//! (DESIGN.md §11). A fixed multi-node RPC workload is run under the
//! conservative window engine at the thread count given by `SIM_THREADS`
//! (default 8 — deliberately above the CI runners' core counts so
//! oversubscription is exercised) and again serially; both runs must
//! reproduce the golden fingerprint committed below. Any change to
//! executor scheduling, fabric timing, fault arithmetic, or the window
//! protocol that shifts even one poll or nanosecond shows up here.

use bytes::Bytes;
use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};
use std::cell::Cell;
use std::rc::Rc;

const PARTS: u32 = 6;
const CALLS: u64 = 25;

/// Fingerprint of the golden run: per-partition (polls, end_ns) pairs,
/// then the window count, then the cross-partition event count. Computed
/// once at 1 thread and pinned; regenerate deliberately (never blindly)
/// with `PAR_SIM_PRINT=1 cargo test --test par_sim -- --nocapture`.
const GOLDEN: [u64; 14] = [
    477, 20072843, 477, 20072843, 477, 20072843, 477, 20072843, 477, 20072843, 477, 20072843, 77,
    450,
];

/// The workload: PARTS single-node partitions in a ring; each node runs
/// an rpclib echo server and a client calling its successor with 2 KB
/// payloads, every byte crossing a partition boundary.
fn ring(threads: usize) -> simcore::par::ParOutcome<u64> {
    fn topo() -> simnet::Network {
        let net = simnet::Network::new(simnet::FabricConfig::default(), 11);
        for i in 0..PARTS {
            net.add_node(format!("n{i}"), simnet::NicConfig::default());
        }
        net
    }
    let lookahead = topo().xpart_lookahead();
    let builders: Vec<PartitionBuilder<simnet::XDatagram, u64>> = (0..PARTS)
        .map(|part| {
            let b: PartitionBuilder<simnet::XDatagram, u64> = Box::new(move |ctx| {
                let net = topo();
                net.attach_to_partition(ctx, (0..PARTS).collect());
                let rpc = rpclib::RpcBuilder::new(&net, simnet::NodeId(part), 9).build();
                rpc.register(1, |c| async move { c.payload });
                let next = simnet::Addr {
                    node: simnet::NodeId((part + 1) % PARTS),
                    port: 9,
                };
                let ok: Rc<Cell<u64>> = Rc::new(Cell::new(0));
                let ok2 = ok.clone();
                ctx.sim().spawn(async move {
                    let payload = Bytes::from(vec![part as u8; 2048]);
                    for _ in 0..CALLS {
                        if rpc.call(next, 1, payload.clone()).await.is_ok() {
                            ok2.set(ok2.get() + 1);
                        }
                    }
                });
                Box::new(move || ok.get())
            });
            b
        })
        .collect();
    run_partitioned(builders, ParConfig { lookahead, threads })
}

#[test]
fn partitioned_ring_matches_golden_fingerprint() {
    let threads: usize = std::env::var("SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8);
    let par = ring(threads);
    let serial = ring(1);
    for p in par.partitions.iter().chain(&serial.partitions) {
        assert_eq!(p.result, CALLS, "every ring call must complete");
    }
    assert_eq!(
        par.fingerprint(),
        serial.fingerprint(),
        "fingerprint diverged between {threads} threads and serial"
    );
    if std::env::var("PAR_SIM_PRINT").is_ok() {
        println!("fingerprint: {:?}", serial.fingerprint());
    }
    assert_eq!(
        serial.fingerprint(),
        GOLDEN,
        "golden fingerprint drifted — if the schedule change is intentional, \
         rerun with PAR_SIM_PRINT=1 and update GOLDEN"
    );
}
