//! Long-running stress tests, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored --nocapture
//! ```

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social;
use apps::workload::run_open_loop;
use simcore::{Sim, SimRng};

/// A long mixed social-network run (hundreds of thousands of requests)
/// under light packet loss, verifying liveness, bounded error count, and
/// full DM page-pool recovery.
#[test]
#[ignore = "long-running stress test; run explicitly"]
fn social_network_long_haul_under_loss() {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 1234);
        cluster.net.set_loss_probability(0.005);
        let app = Rc::new(build_social(&cluster, 1000, 8192, 77).await);
        app.preload(500).await.expect("preload");
        let a2 = app.clone();
        let m = run_open_loop(
            300_000.0,
            Duration::from_millis(5),
            Duration::from_millis(500), // 500 ms of virtual time
            SimRng::new(9),
            Rc::new(move |_n| {
                let app = a2.clone();
                async move { app.mixed_request().await }
            }),
        )
        .await;
        println!(
            "completed {} requests, avg {:.1} us, p99.9 {:.1} us, errors {}",
            m.completed,
            m.avg_latency_us(),
            m.latency_us(0.999),
            m.errors
        );
        assert!(m.completed > 100_000, "long run must complete at scale");
        // Transport loss is fully recovered by the RPC layer; the only
        // tolerated errors are the application-level eviction race (a
        // reader fetching a post id whose ref was just released by
        // post-storage eviction — a realistic dangling-reference case the
        // DM layer reports cleanly as InvalidRef).
        let err_rate = m.errors as f64 / (m.completed + m.errors) as f64;
        assert!(err_rate < 0.02, "error rate too high: {err_rate:.4}");
        // The DM pools must not have leaked despite churn + loss.
        simcore::sleep(Duration::from_millis(50)).await;
        for s in &cluster.dm_servers {
            s.check_invariants_all();
        }
    });
    println!("poll fingerprint: {}", sim.poll_count());
}

/// Sustained shuffle rounds on the CXL backend: page ownership migrates
/// between hosts and the coordinator for thousands of rounds without leaks.
#[test]
#[ignore = "long-running stress test; run explicitly"]
fn cxl_shuffle_churn() {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmCxl, 1, ClusterConfig::default(), 5);
        let app = apps::shuffle::build_shuffle(&cluster, 4, 4).await;
        let mut reference: Option<Vec<u64>> = None;
        for round in 0..300u64 {
            app.map_phase(32 * 1024, round % 7).await.expect("map");
            let sums = app.reduce_phase().await.expect("reduce");
            if round % 7 == 0 {
                match &reference {
                    None => reference = Some(sums),
                    Some(prev) => assert_eq!(prev, &sums, "same seed, same sums"),
                }
            }
        }
        simcore::sleep(Duration::from_millis(5)).await;
        let fabric = cluster.cxl_fabric().expect("cxl");
        // All pages either free at the coordinator or owned-free by hosts;
        // only the final round's published partitions stay pinned.
        let in_use: usize = (0..fabric.gfam().capacity_pages())
            .filter(|&p| fabric.gfam().rc_peek(p as u32) > 0)
            .count();
        assert!(in_use <= 4 * 4 * 9, "page churn leaked: {in_use} in use");
    });
}
