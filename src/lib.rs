//! DmRPC workspace umbrella crate (examples + integration tests live here).
