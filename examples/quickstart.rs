//! Quickstart: pass a 64 KiB argument through a forwarding microservice by
//! reference instead of by value.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a three-node deployment (client → forwarder → worker) on the
//! simulated fabric with a network-attached DM pool, then shows the paper's
//! core effect: the forwarder never touches the 64 KiB payload — only an
//! 18-byte `Ref` crosses it.

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use dmrpc::Value;
use simcore::Sim;

fn main() {
    let sim = Sim::new();
    sim.block_on(async {
        // One DmRPC-net cluster: 2 DM servers + 3 compute servers.
        let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 1);

        // Worker: materializes the argument and returns its checksum.
        let worker_node = cluster.add_server("worker");
        let worker = cluster.endpoint(&worker_node, 100).await;
        {
            let w = worker.clone();
            worker.rpc().register(1, move |ctx| {
                let w = w.clone();
                async move {
                    let v = Value::decode(&ctx.payload).expect("valid value");
                    let data = w.fetch(&v).await.expect("fetch");
                    let sum: u64 = data.iter().map(|&b| b as u64).sum();
                    let reply = w
                        .make_value(Bytes::from(sum.to_le_bytes().to_vec()))
                        .await
                        .expect("reply value");
                    reply.encode()
                }
            });
        }
        let worker_addr = worker.addr();

        // Forwarder: a pure data mover — passes the value along untouched.
        let fwd_node = cluster.add_server("forwarder");
        let fwd = cluster.endpoint(&fwd_node, 100).await;
        {
            let f = fwd.clone();
            fwd.rpc().register(1, move |ctx| {
                let f = f.clone();
                async move {
                    f.rpc()
                        .call(worker_addr, 1, ctx.payload)
                        .await
                        .expect("forward")
                }
            });
        }

        // Client.
        let client_node = cluster.add_server("client");
        let client = cluster.endpoint(&client_node, 100).await;

        let payload = Bytes::from(vec![3u8; 64 * 1024]);
        let arg = client
            .make_value(payload.clone())
            .await
            .expect("make_value");
        println!(
            "argument: {} bytes of data, {} bytes on the wire (by-ref = {})",
            arg.len(),
            arg.wire_bytes(),
            arg.is_by_ref()
        );

        let t0 = simcore::now();
        let reply = client.call(fwd.addr(), 1, &arg).await.expect("call");
        let elapsed = simcore::now() - t0;
        let sum_bytes = client.fetch(&reply).await.expect("fetch reply");
        let sum = u64::from_le_bytes(sum_bytes[..8].try_into().expect("8 bytes"));
        client.release(&arg).await.expect("release");

        assert_eq!(sum, 3 * 64 * 1024);
        println!("checksum from worker: {sum} (correct)");
        println!("end-to-end virtual time: {elapsed:?}");
        println!(
            "forwarder node moved {} bytes through its memory (pass-by-value would move >128 KiB)",
            fwd_node.mem.traffic_bytes()
        );
    });
}
