//! The paper's 7-tier Cloud Image Processing application (Fig. 9), run on
//! all three systems with a 32 KiB image, comparing end-to-end latency and
//! data-mover memory traffic.
//!
//! ```text
//! cargo run --example image_pipeline_demo
//! ```

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::image_pipeline::{build_pipeline, OP_COMPRESS, OP_TRANSCODE};
use bytes::Bytes;
use simcore::Sim;

fn main() {
    println!("7-tier image pipeline: client -> firewall -> LB -> imgproc -> transcode/compress\n");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>18}",
        "system", "transcode", "compress", "mover traffic (B)"
    );
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        let (t_lat, c_lat, mover_traffic) = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 7);
            let app = build_pipeline(&cluster).await;
            let image = Bytes::from((0..32 * 1024).map(|i| (i % 199) as u8).collect::<Vec<_>>());

            // Warm up, then measure one of each operation.
            app.request(OP_TRANSCODE, &image).await.expect("warmup");
            cluster.reset_stats();

            let t0 = simcore::now();
            let out = app.request(OP_TRANSCODE, &image).await.expect("transcode");
            let t_lat = simcore::now() - t0;
            assert_eq!(out.len(), image.len());

            let t1 = simcore::now();
            let out = app.request(OP_COMPRESS, &image).await.expect("compress");
            let c_lat = simcore::now() - t1;
            assert_eq!(out.len(), image.len() / 2);

            // Firewall + LB are pure movers (service_nodes[0], [1]).
            let mover: u64 = app.service_nodes[..2]
                .iter()
                .map(|n| n.mem.traffic_bytes())
                .sum();
            (t_lat, c_lat, mover)
        });
        println!(
            "{:>10}  {:>14}  {:>14}  {:>18}",
            kind.label(),
            format!("{t_lat:?}"),
            format!("{c_lat:?}"),
            mover_traffic
        );
    }
    println!("\nUnder DmRPC the firewall and load balancer never see the image bytes.");
}
