//! All-to-all shuffle (Spark-style): 4 mappers × 4 reducers exchanging
//! 64 KiB partitions. Under DmRPC, mappers publish partitions to DM once
//! and hand out refs — their NICs go quiet during the reduce phase.
//!
//! ```text
//! cargo run --release --example shuffle_demo
//! ```

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::shuffle::build_shuffle;
use simcore::Sim;

fn main() {
    const M: usize = 4;
    const R: usize = 4;
    const PART: usize = 64 * 1024;
    println!(
        "shuffle: {M} mappers x {R} reducers, {} KiB partitions\n",
        PART / 1024
    );
    println!(
        "{:>10}  {:>14}  {:>22}",
        "system", "reduce time", "mapper NIC tx (reduce)"
    );
    let mut sums_seen: Option<Vec<u64>> = None;
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        let (elapsed, tx, sums) = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 99);
            let app = build_shuffle(&cluster, M, R).await;
            app.map_phase(PART, 1).await.expect("map phase");
            cluster.net.reset_stats();
            let t0 = simcore::now();
            let sums = app.reduce_phase().await.expect("reduce phase");
            (simcore::now() - t0, app.mapper_tx_bytes(&cluster), sums)
        });
        match &sums_seen {
            None => sums_seen = Some(sums),
            Some(prev) => assert_eq!(prev, &sums, "systems must agree"),
        }
        println!(
            "{:>10}  {:>12}us  {:>20} B",
            kind.label(),
            elapsed.as_micros(),
            tx
        );
    }
    println!("\nSame checksums everywhere; only the bytes' route differs.");
}
