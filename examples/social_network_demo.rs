//! The DeathStarBench-style social network (paper §VI-F) under the mixed
//! 60/30/10 workload, comparing eRPC and DmRPC-net latency at one offered
//! rate.
//!
//! ```text
//! cargo run --release --example social_network_demo
//! ```

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social;
use apps::workload::run_open_loop;
use simcore::{Sim, SimRng};

fn main() {
    println!("social network, 8 KiB media, 50k req/s offered, 60/30/10 mix\n");
    println!(
        "{:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
        "system", "achieved", "avg", "p99", "p99.9"
    );
    for kind in [SystemKind::Erpc, SystemKind::DmNet] {
        let sim = Sim::new();
        let m = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 5);
            let app = Rc::new(build_social(&cluster, 300, 8192, 9).await);
            app.preload(150).await.expect("preload");
            let a = app.clone();
            run_open_loop(
                50_000.0,
                Duration::from_millis(1),
                Duration::from_millis(10),
                SimRng::new(42),
                Rc::new(move |_n| {
                    let app = a.clone();
                    async move { app.mixed_request().await }
                }),
            )
            .await
        });
        println!(
            "{:>10}  {:>9} rps  {:>8.1}us  {:>8.1}us  {:>8.1}us",
            kind.label(),
            m.throughput_rps() as u64,
            m.avg_latency_us(),
            m.latency_us(0.99),
            m.latency_us(0.999),
        );
    }
    println!("\nEvery request crosses nginx/proxy/php-fpm data movers; DmRPC forwards refs.");
}
