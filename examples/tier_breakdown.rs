//! Per-tier latency breakdown of the 7-tier image pipeline: where does a
//! request's time go under each transfer mode?
//!
//! ```text
//! cargo run --release --example tier_breakdown
//! ```
//!
//! Uses the RPC layer's per-handler service-time histograms. Each service's
//! time *includes* its downstream calls (nested RPC), so reading the table
//! top-to-bottom shows how much each tier adds.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::image_pipeline::{build_pipeline, IMG_REQ, OP_TRANSCODE};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

fn main() {
    const SIZE: usize = 32 * 1024;
    println!("image pipeline, 32 KiB images, moderate load — mean service time per tier");
    println!("(each tier includes everything downstream of it)\n");
    println!(
        "{:>12}  {:>10}  {:>10}  {:>10}",
        "tier", "eRPC", "DmRPC-net", "DmRPC-CXL"
    );
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("firewall", vec![]),
        ("lb", vec![]),
        ("imgproc-a", vec![]),
        ("transcode", vec![]),
    ];
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        let tiers = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 3);
            let app = Rc::new(build_pipeline(&cluster).await);
            let image = Bytes::from(vec![7u8; SIZE]);
            app.request(OP_TRANSCODE, &image).await.expect("warmup");
            let a2 = app.clone();
            run_closed_loop(
                8,
                Duration::from_micros(500),
                Duration::from_millis(3),
                Rc::new(move |_w, _i| {
                    let app = a2.clone();
                    let image = image.clone();
                    async move { app.request(OP_TRANSCODE, &image).await.map(|_| ()) }
                }),
            )
            .await;
            // service_nodes order: firewall, lb, imgproc-a, imgproc-b,
            // transcode, compress. Each service's endpoint lives on its own
            // node at port 100; read the handler histograms back through the
            // names used during construction. We reconstruct by probing the
            // per-node RPC endpoints recorded in the cluster.
            let mut means = Vec::new();
            for name in ["firewall", "lb", "imgproc-a", "transcode"] {
                let mut found = 0.0;
                for s in cluster.servers() {
                    if cluster.net.node_name(s.id) == name {
                        // The handler histogram lives on the service's Rpc;
                        // the cluster tracks endpoints weakly.
                        found = cluster
                            .handler_mean_us(s.id, 100, IMG_REQ)
                            .unwrap_or(f64::NAN);
                    }
                }
                means.push(found);
            }
            means
        });
        for (row, v) in rows.iter_mut().zip(tiers) {
            row.1.push(v);
        }
    }
    for (name, vals) in rows {
        println!(
            "{:>12}  {:>8.1}us  {:>8.1}us  {:>8.1}us",
            name, vals[0], vals[1], vals[2]
        );
    }
    println!("\nUnder DmRPC the upper tiers shrink toward pure forwarding cost;");
    println!("only the worker tier keeps paying for the image bytes.");
}
