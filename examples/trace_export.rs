//! Record a distributed trace of Fig. 5 chain requests and export it as
//! Chrome `trace_event` JSON for Perfetto (<https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --example trace_export [-- out.json]
//! ```
//!
//! Every request is sampled (1-in-1), so the file holds the full causal
//! trees — client call, per-fragment network hops, server handling, DM
//! control ops, COW copies — stamped in virtual time. The export is
//! byte-reproducible: same seeds, same JSON.

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use simcore::Sim;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    let sim = Sim::new();
    let json = sim.block_on(async {
        let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 42);
        cluster.enable_tracing(7, 1);
        let app = build_chain(&cluster, 3).await;
        let payload = Bytes::from(vec![5u8; 4096]);
        for _ in 0..4 {
            app.request(&payload).await.expect("chain request");
        }
        // Let deferred releases and the coalescer flush before exporting.
        simcore::sleep(std::time::Duration::from_millis(2)).await;
        cluster.trace_json().expect("tracing enabled")
    });
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "wrote {out} ({} bytes) — open it at https://ui.perfetto.dev",
        json.len()
    );
}
