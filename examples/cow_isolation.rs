//! Copy-on-write isolation, shown directly on the Table-II DM API: two
//! processes share one region through a `Ref`; a write by either is
//! invisible to the other, and only written pages are copied.
//!
//! ```text
//! cargo run --example cow_isolation
//! ```

use bytes::Bytes;
use dmnet::{start_pool, DmNetClient, DmServerConfig};
use memsim::ModelParams;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

fn main() {
    let sim = Sim::new();
    sim.block_on(async {
        let net = Network::new(FabricConfig::default(), 3);
        let dm_node = net.add_node("dm0", NicConfig::default());
        let a_node = net.add_node("alice", NicConfig::default());
        let b_node = net.add_node("bob", NicConfig::default());

        let params = ModelParams::new();
        let pool = start_pool(&net, &[dm_node], &params, DmServerConfig::default());
        let pool_addrs = vec![pool[0].addr()];

        let alice = DmNetClient::connect(
            RpcBuilder::new(&net, a_node, 100).build(),
            pool_addrs.clone(),
        )
        .await
        .expect("alice connects");
        let bob = DmNetClient::connect(RpcBuilder::new(&net, b_node, 100).build(), pool_addrs)
            .await
            .expect("bob connects");

        // Alice publishes 4 pages of data (paper Listing 1, lines 2-7).
        let addr = alice.ralloc(4 * 4096).await.expect("ralloc");
        alice
            .rwrite(addr, &Bytes::from(vec![b'A'; 4 * 4096]))
            .await
            .expect("rwrite");
        let r = alice.create_ref(addr, 4 * 4096).await.expect("create_ref");
        println!("alice shared 16 KiB as a {}-byte Ref", r.wire_bytes());

        // Bob maps it and reads — zero copies so far.
        let bob_addr = bob.map_ref(&r).await.expect("map_ref");
        let view = bob.rread(bob_addr, 8).await.expect("rread");
        println!("bob reads:  {:?} (shared pages)", &view[..]);

        let traffic_before = pool[0].memory().traffic_bytes();
        // Bob writes one byte in page 2 -> exactly one page is copied.
        bob.rwrite(bob_addr.offset(2 * 4096), &Bytes::from_static(b"B"))
            .await
            .expect("cow write");
        let copied = pool[0].memory().traffic_bytes() - traffic_before;
        println!("bob writes 1 byte -> server copied ~{copied} bytes (one 4 KiB page, read+write)");

        // Isolation: alice still sees 'A' everywhere.
        let alice_view = alice.rread(addr.offset(2 * 4096), 1).await.expect("rread");
        let bob_view = bob
            .rread(bob_addr.offset(2 * 4096), 1)
            .await
            .expect("rread");
        println!(
            "page 2, first byte — alice: {:?}, bob: {:?}",
            alice_view[0] as char, bob_view[0] as char
        );
        assert_eq!(alice_view[0], b'A');
        assert_eq!(bob_view[0], b'B');

        // Tear down and prove nothing leaked.
        alice.rfree(addr).await.expect("rfree");
        bob.rfree(bob_addr).await.expect("rfree");
        alice.release_ref(&r).await.expect("release");
        pool[0].with_page_manager(|pm| {
            pm.check_invariants();
            assert_eq!(pm.free_pages(), pm.capacity_pages());
        });
        println!("all pages reclaimed; invariants hold");
    });
}
