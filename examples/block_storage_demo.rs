//! Replicated block storage (the paper's §I motivating workload): write
//! 128 KiB blocks with 3-way replication and observe the primary's write
//! amplification disappear under pass-by-reference.
//!
//! ```text
//! cargo run --release --example block_storage_demo
//! ```

use apps::block_storage::build_block_store;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use simcore::Sim;

fn main() {
    println!("block storage: client -> primary -> 2 replicas, 128 KiB blocks\n");
    println!(
        "{:>10}  {:>14}  {:>20}  {:>14}",
        "system", "write latency", "primary tx (B/write)", "read latency"
    );
    for kind in SystemKind::ALL {
        let sim = Sim::new();
        let (wlat, tx_per_write, rlat) = sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 77);
            let store = build_block_store(&cluster, 2).await;
            let block = Bytes::from((0..128 * 1024).map(|i| (i % 251) as u8).collect::<Vec<_>>());
            store.write_block(0, &block).await.expect("warmup");
            cluster.net.reset_stats();

            let n = 8u64;
            let t0 = simcore::now();
            for id in 1..=n {
                store.write_block(id, &block).await.expect("write");
            }
            let wlat = (simcore::now() - t0).as_nanos() as u64 / n / 1000;
            let tx = cluster.net.node_tx_bytes(store.primary_node.id) / n;

            let t1 = simcore::now();
            let back = store.read_block(3).await.expect("read");
            let rlat = (simcore::now() - t1).as_nanos() as u64 / 1000;
            assert_eq!(back, block);
            (wlat, tx, rlat)
        });
        println!(
            "{:>10}  {:>12}us  {:>20}  {:>12}us",
            kind.label(),
            wlat,
            tx_per_write,
            rlat
        );
    }
    println!("\nUnder eRPC the primary re-sends every block twice (2x write amplification);");
    println!("under DmRPC the replicas pull the bytes from disaggregated memory directly.");
}
