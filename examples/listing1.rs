//! The paper's Listing 1, line for line: Client → Load balancer →
//! {Worker 1 | Worker 2}, using the raw Table-II API exactly as printed
//! (`ralloc` → `rwrite` → `create_ref` → RPC → `rfree`; worker: `map_ref`
//! → `rread` → aggregate → `rfree`).
//!
//! ```text
//! cargo run --example listing1
//! ```

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use dmcommon::Ref;
use dmnet::{start_pool, DmNetClient, DmServerConfig};
use memsim::ModelParams;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

const RPC_LB: u8 = 1;
const RPC_WORKER: u8 = 2;
const LEN: usize = 1024; // ints, as in the listing

fn main() {
    let sim = Sim::new();
    sim.block_on(async {
        // ---- deployment: 1 DM server, LB, 2 workers, client -------------
        let net = Network::new(FabricConfig::default(), 4);
        let dm_node = net.add_node("dm", NicConfig::default());
        let lb_node = net.add_node("lb", NicConfig::default());
        let w1_node = net.add_node("worker1", NicConfig::default());
        let w2_node = net.add_node("worker2", NicConfig::default());
        let client_node = net.add_node("client", NicConfig::default());
        let params = ModelParams::new();
        let pool = start_pool(&net, &[dm_node], &params, DmServerConfig::default());
        let pool_addrs = vec![pool[0].addr()];

        // ---- @Worker microservices (Listing 1 lines 20-33) ---------------
        let mut worker_addrs = Vec::new();
        for (name, node) in [("worker1", w1_node), ("worker2", w2_node)] {
            let rpc = RpcBuilder::new(&net, node, 100).build();
            let dm = Rc::new(
                DmNetClient::connect(rpc.clone(), pool_addrs.clone())
                    .await
                    .expect("worker connects to DM"),
            );
            worker_addrs.push(rpc.addr());
            let who = name.to_string();
            rpc.register(RPC_WORKER, move |ctx| {
                let dm = dm.clone();
                let who = who.clone();
                async move {
                    // RPC_Worker(Ref ref):
                    let r = Ref::decode(&ctx.payload).expect("ref argument");
                    // Map ref to local virtual address that maps to DM.
                    let r_addr = dm.map_ref(&r).await.expect("map_ref");
                    // Read from DM to local buffer.
                    let local_buf = dm.rread(r_addr, r.len()).await.expect("rread");
                    // Working on local memory: aggregating the content.
                    let mut sum: u64 = 0;
                    for chunk in local_buf.chunks_exact(4) {
                        sum += u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as u64;
                    }
                    dm.rfree(r_addr).await.expect("rfree");
                    println!("  [{who}] aggregated {} ints -> sum {sum}", r.len() / 4);
                    Bytes::from(sum.to_le_bytes().to_vec())
                }
            });
        }

        // ---- @Load balancer microservice (lines 10-18) --------------------
        // Forwards requests without touching arguments.
        let lb_rpc = RpcBuilder::new(&net, lb_node, 100).build();
        let worker_1_is_idle = Rc::new(Cell::new(true));
        {
            let flip = worker_1_is_idle.clone();
            let (w1, w2) = (worker_addrs[0], worker_addrs[1]);
            lb_rpc.register(RPC_LB, move |ctx| {
                let flip = flip.clone();
                async move {
                    let target = if flip.get() {
                        flip.set(false);
                        w1 // RPC_Worker_1(ref)
                    } else {
                        flip.set(true);
                        w2 // RPC_Worker_2(ref)
                    };
                    ctx.rpc
                        .call(target, RPC_WORKER, ctx.payload)
                        .await
                        .expect("forward")
                }
            });
        }
        let lb_addr = lb_rpc.addr();

        // ---- @Client microservice (lines 1-9) ------------------------------
        let client_rpc = RpcBuilder::new(&net, client_node, 100).build();
        let dm = DmNetClient::connect(client_rpc.clone(), pool_addrs)
            .await
            .expect("client connects to DM");
        for round in 0..2u32 {
            // int *r_addr = (int*) ralloc(len*sizeof(int));
            let r_addr = dm.ralloc((LEN * 4) as u64).await.expect("ralloc");
            // Fill the disaggregated memory: rwrite(r_addr, local_buf, ...)
            let local_buf: Vec<u8> = (0..LEN as u32)
                .flat_map(|i| (i + round).to_le_bytes())
                .collect();
            dm.rwrite(r_addr, &Bytes::from(local_buf))
                .await
                .expect("rwrite");
            // Ref ref = create_ref(r_addr, len*sizeof(int));
            let r = dm
                .create_ref(r_addr, (LEN * 4) as u64)
                .await
                .expect("create_ref");
            // RPC_LB(ref); — only the Ref travels.
            println!(
                "client round {round}: sending a {}-byte Ref for {} bytes of data",
                r.wire_bytes(),
                r.len()
            );
            let resp = client_rpc
                .call(lb_addr, RPC_LB, r.encode())
                .await
                .expect("RPC_LB");
            let sum = u64::from_le_bytes(resp[..8].try_into().expect("8 bytes"));
            let expect: u64 = (0..LEN as u64).map(|i| i + round as u64).sum();
            assert_eq!(sum, expect);
            println!("client round {round}: worker returned {sum} (correct)");
            // rfree(r_addr);
            dm.rfree(r_addr).await.expect("rfree");
            dm.release_ref(&r).await.expect("release_ref");
        }
        pool[0].with_page_manager(|pm| {
            pm.check_invariants();
            assert_eq!(pm.free_pages(), pm.capacity_pages());
        });
        println!("listing 1 executed verbatim; all DM pages reclaimed");
    });
}
