#!/usr/bin/env python3
"""Validate an exported trace against the Chrome trace_event JSON schema.

Checks the subset our exporter promises (DESIGN.md §10): a JSON object with
a `traceEvents` array of complete (`ph: "X"`) span events and `ph: "M"`
process-name metadata, each with the required fields and types, plus the
causal-tree invariants (unique span ids, every non-root parent resolves
within its trace, no child starts before its parent). Children may END
after their parent — deferred releases ride a coalesced batch that the
server processes after the originating request span closed.

Usage: validate_trace.py trace.json
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    spans = {}  # (trace_id, span_id) -> (ts, dur)
    parents = []  # (trace_id, span_id, parent_id)
    n_meta = n_span = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        if not isinstance(e.get("pid"), int) or not isinstance(e.get("tid"), int):
            fail(f"event {i}: pid/tid must be integers")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"event {i}: name must be a non-empty string")
        if ph == "M":
            n_meta += 1
            if e["name"] != "process_name":
                fail(f"event {i}: unexpected metadata record {e['name']!r}")
            if not isinstance(e.get("args", {}).get("name"), str):
                fail(f"event {i}: process_name needs args.name")
        elif ph == "X":
            n_span += 1
            for key in ("ts", "dur"):
                if not isinstance(e.get(key), (int, float)) or e[key] < 0:
                    fail(f"event {i}: {key} must be a non-negative number")
            if not isinstance(e.get("cat"), str):
                fail(f"event {i}: complete events need a category")
            args = e.get("args")
            if not isinstance(args, dict):
                fail(f"event {i}: complete events need args")
            try:
                tid = int(args["trace_id"], 16)
                sid = int(args["span_id"], 16)
                pid = int(args["parent_id"], 16)
            except (KeyError, TypeError, ValueError):
                fail(f"event {i}: args need hex trace_id/span_id/parent_id")
            if (tid, sid) in spans:
                fail(f"event {i}: duplicate span id {sid:#x} in trace {tid:#x}")
            spans[(tid, sid)] = (e["ts"], e["dur"])
            parents.append((tid, sid, pid))
        else:
            fail(f"event {i}: unexpected phase {ph!r}")

    if n_span == 0:
        fail("no span events in the trace")
    eps = 0.002  # ts/dur carry 3 fraction digits; allow one ulp per bound
    for tid, sid, pid in parents:
        if pid == 0:
            continue
        if (tid, pid) not in spans:
            fail(f"span {sid:#x} in trace {tid:#x} has dangling parent {pid:#x}")
        (cts, _cdur), (pts, _pdur) = spans[(tid, sid)], spans[(tid, pid)]
        if cts < pts - eps:
            fail(f"span {sid:#x} starts before its parent {pid:#x}")

    print(
        f"OK: {n_span} span events across "
        f"{len({t for t, _, _ in parents})} traces, {n_meta} process names"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py trace.json")
    main(sys.argv[1])
