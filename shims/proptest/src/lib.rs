//! In-repo stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset this workspace uses.
//!
//! The build environment has no crates.io access, so the property tests run
//! on this minimal engine instead: strategies generate values from a seeded
//! deterministic PRNG (SplitMix64), each `#[test]` inside [`proptest!`] runs
//! `ProptestConfig::cases` generated cases, and a failing case panics with
//! the case index so the exact run is reproducible (generation is fully
//! deterministic — same binary, same cases). Unlike upstream there is **no
//! shrinking**: the first failing input is reported as-is.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, [`Just`], [`any`], range strategies over the primitive
//! integer/float types, tuples of strategies up to arity 6,
//! [`collection::vec`], and [`Strategy::prop_map`]/[`Strategy::boxed`].

use std::cell::Cell;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 PRNG driving all value generation.
pub struct TestRng {
    state: Cell<u64>,
}

impl TestRng {
    /// Seeded constructor; each test case uses a distinct seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: Cell::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&self) -> u64 {
        let mut z = self.state.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error carried out of a failing property (via `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type produced by a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs one property over `config.cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Create a runner with the given config.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Run `f` once per case with a deterministically seeded RNG; panics on
    /// the first failing case.
    pub fn run(&mut self, name: &str, mut f: impl FnMut(&TestRng) -> TestCaseResult) {
        for case in 0..self.config.cases {
            let rng = TestRng::new(0xD0_5EED ^ (case as u64).wrapping_mul(0x0123_4567_89AB_CDEF));
            if let Err(e) = f(&rng) {
                panic!(
                    "property `{name}` failed at case {case}/{}: {e}",
                    self.config.cases
                );
            }
        }
    }
}

/// A generator of test values.
///
/// Unlike upstream there is no value tree or shrinking: a strategy simply
/// produces a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(move |rng: &TestRng| self.generate(rng)),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Fn(&TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice between equally-weighted boxed alternatives
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives; must be non-empty.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alts }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy ([`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &TestRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        rng.unit_f64() * 2e18 - 1e18
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return <$t>::arbitrary(rng);
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &TestRng) -> f64 {
        // Include the end point with small probability so boundary behaviour
        // (e.g. quantile(1.0)) is exercised.
        if rng.below(64) == 0 {
            *self.end()
        } else {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng,
    };
    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // The `@impl` arm must precede the catch-all arm: a trailing
    // `$($rest:tt)*` matches *anything*, including `@impl` recursions.
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.0f64..=1.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|n| n * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u8..4, 4u8..8)) {
            prop_assert!(a < 4 && (4..8).contains(&b));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(crate::any::<u64>(), 0..50);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| crate::Strategy::generate(&s, &crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| crate::Strategy::generate(&s, &crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(8));
        runner.run("always_fails", |_| Err(crate::TestCaseError::fail("nope")));
    }
}
