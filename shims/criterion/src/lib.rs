//! In-repo stand-in for the `criterion` crate, covering exactly the surface
//! used by `crates/bench/benches/micro.rs`.
//!
//! The container this repository builds in has no network access to a cargo
//! registry, so the real criterion cannot be fetched (see DESIGN.md §7).
//! This shim keeps the benchmark sources compiling and produces honest — if
//! statistically unsophisticated — wall-clock measurements:
//!
//! * each benchmark is auto-calibrated to run for roughly 20 ms per sample
//!   (`MEASURE_TARGET`), then measured over a fixed number of samples
//!   (`SAMPLES`);
//! * the median per-iteration time is reported, together with min/max and,
//!   when a [`Throughput`] was declared, derived bytes/sec;
//! * `--test` on the command line (what CI's smoke job passes) switches to a
//!   single-iteration "does it run" mode with no timing output.
//!
//! It does not implement HTML reports, comparison against saved baselines,
//! or outlier analysis — use the real criterion for publication numbers.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample during full runs.
const MEASURE_TARGET: Duration = Duration::from_millis(20);
/// Number of samples collected per benchmark during full runs.
const SAMPLES: usize = 15;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-iteration timing of a benchmark body.
pub struct Bencher {
    /// When true, run the body exactly once and skip measurement.
    smoke: bool,
    /// Median ns/iter (populated after `iter` in measurement mode).
    result: Option<Sample>,
}

#[derive(Clone, Copy)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.smoke {
            std::hint::black_box(body());
            return;
        }
        // Calibrate: find an iteration count that takes ~MEASURE_TARGET.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_TARGET || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed < MEASURE_TARGET / 16 {
                iters.saturating_mul(8)
            } else {
                // Close enough to extrapolate directly.
                let per = elapsed.as_nanos().max(1) as u64 / iters;
                (MEASURE_TARGET.as_nanos() as u64 / per.max(1)).max(iters + 1)
            };
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(body());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some(Sample {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: *per_iter.last().unwrap(),
        });
    }
}

/// Throughput declaration for a benchmark (bytes processed per iteration).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier combining a function name and a parameter, e.g. `write/256`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { smoke: test_mode() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let smoke = self.smoke;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            smoke,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.smoke, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    smoke: bool,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Bytes(n) | Throughput::Elements(n) => n,
        });
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.smoke, self.throughput, |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_one(&full, self.smoke, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, smoke: bool, throughput: Option<u64>, mut f: F) {
    let mut b = Bencher {
        smoke,
        result: None,
    };
    if smoke {
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    f(&mut b);
    match b.result {
        Some(s) => {
            let mut line = format!(
                "{name:<44} median {:>12} (min {}, max {})",
                fmt_ns(s.median_ns),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns)
            );
            if let Some(bytes) = throughput {
                let gib_s = bytes as f64 / s.median_ns; // bytes/ns == GB/s
                line.push_str(&format!("  {:>10.3} GB/s", gib_s));
            }
            println!("{line}");
        }
        None => println!("{name:<44} (no measurement: body never called iter)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a named group runner, mirroring the real
/// criterion macro's call shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point: runs each group registered with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("write", 256);
        assert_eq!(id.id, "write/256");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 us");
        assert_eq!(fmt_ns(12_500_000.0), "12.50 ms");
    }
}
