//! In-repo stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the handful of `bytes` APIs the workspace actually uses are
//! reimplemented here and wired in via a workspace path dependency. The
//! semantics mirror the real crate where the APIs overlap:
//!
//! * [`Bytes`] — an immutable, reference-counted byte buffer. `clone` and
//!   [`Bytes::slice`] are O(1) and share the underlying storage (this is what
//!   makes the RPC layer's zero-copy fragmentation genuinely copy-free).
//! * [`BytesMut`] — a growable buffer that converts into `Bytes` with
//!   [`BytesMut::freeze`].
//! * [`BufMut`] — the little-endian `put_*` appenders used by the codecs.
//!
//! One deliberate extension over the real crate:
//! [`Bytes::try_unsplit`] merges two slices that are adjacent views of the
//! same allocation back into one `Bytes` without copying. `rpclib`'s
//! reassembly path uses it to return the original message buffer when all
//! fragments are contiguous slices of one send (`BytesMut::unsplit` is the
//! upstream analogue, but only for mutable buffers).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`]: either a borrowed `'static` slice
/// (no refcount) or a shared heap allocation.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Repr {
    #[inline]
    fn as_full_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_slice(),
        }
    }

    /// Whether two reprs point at the same underlying storage.
    #[inline]
    fn same_storage(&self, other: &Repr) -> bool {
        match (self, other) {
            (Repr::Static(a), Repr::Static(b)) => std::ptr::eq(*a, *b),
            (Repr::Shared(a), Repr::Shared(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A cheaply cloneable, immutable slice of reference-counted bytes.
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wrap a `'static` slice without copying or allocating.
    #[inline]
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(s),
            off: 0,
            len: s.len(),
        }
    }

    /// Copy an arbitrary slice into a fresh shared buffer.
    #[inline]
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-slice sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice range {lo}..{hi} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + lo,
            len: hi - lo,
        }
    }

    /// Copy this view into a fresh `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.repr.as_full_slice()[self.off..self.off + self.len]
    }

    /// Merge two adjacent views of the same storage into one, without
    /// copying. Returns `Err((self, next))` unchanged if the views are not
    /// contiguous slices of a single allocation.
    ///
    /// This is how reassembled RPC messages hand the receiver the *original*
    /// sender-side buffer when every fragment was a [`Bytes::slice`] of one
    /// message (the zero-copy wire path; see `rpclib::wire`).
    pub fn try_unsplit(self, next: Bytes) -> Result<Bytes, (Bytes, Bytes)> {
        if self.is_empty() {
            return Ok(next);
        }
        if next.is_empty() {
            return Ok(self);
        }
        if self.repr.same_storage(&next.repr) && self.off + self.len == next.off {
            Ok(Bytes {
                len: self.len + next.len,
                ..self
            })
        } else {
            Err((self, next))
        }
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Clone for Bytes {
    #[inline]
    fn clone(&self) -> Bytes {
        Bytes {
            repr: self.repr.clone(),
            off: self.off,
            len: self.len,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    #[inline]
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    #[inline]
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve additional capacity.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Resize, filling with `value`.
    #[inline]
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Truncate to `len` bytes.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    #[inline]
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

/// Little-endian appenders for building wire messages.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    fn try_unsplit_rejoins_adjacent_slices() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let lo = b.slice(0..40);
        let hi = b.slice(40..100);
        let joined = lo.try_unsplit(hi).expect("adjacent");
        assert_eq!(joined, b);
    }

    #[test]
    fn try_unsplit_rejects_gaps_and_foreign_buffers() {
        let b = Bytes::from(vec![0u8; 10]);
        let lo = b.slice(0..4);
        let hi = b.slice(5..10); // gap at index 4
        assert!(lo.try_unsplit(hi).is_err());
        let other = Bytes::from(vec![0u8; 10]);
        assert!(b.slice(0..5).try_unsplit(other.slice(5..10)).is_err());
    }

    #[test]
    fn try_unsplit_with_empty_side_passes_through() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(Bytes::new().try_unsplit(b.clone()).unwrap(), b);
        assert_eq!(b.clone().try_unsplit(Bytes::new()).unwrap(), b);
    }

    #[test]
    fn freeze_and_bufmut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(258);
        m.put_u32_le(1);
        m.put_u64_le(u64::MAX);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(b[0], 7);
        assert_eq!(u16::from_le_bytes(b[1..3].try_into().unwrap()), 258);
        assert_eq!(&b[15..], b"xy");
    }

    #[test]
    fn equality_and_static() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"hello"[..]);
        assert!(a.slice(0..0).is_empty());
    }
}
