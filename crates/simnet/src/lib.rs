//! # simnet — simulated datacenter network fabric
//!
//! Models the paper's testbed network: servers with 100 GbE NICs attached to
//! a top-of-rack switch. The model is intentionally simple and faithful to
//! what drives the paper's results:
//!
//! * each NIC transmit (and receive) path is a FIFO rate server — sending a
//!   datagram occupies the sender's NIC for `wire_size / line_rate` plus a
//!   fixed per-packet overhead (DMA + driver/DPDK processing);
//! * the fabric adds a fixed switch + propagation latency per hop;
//! * optional i.i.d. packet loss exercises the RPC reliability layer.
//!
//! Datagrams carry real [`bytes::Bytes`] payloads: data integrity is
//! end-to-end testable, while *time* is charged by the cost model.
//!
//! This substitutes for the paper's DPDK/UDP data plane (see DESIGN.md §2).

#![warn(missing_docs)]

mod faults;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use simcore::par::{PartitionCtx, XSender};
use simcore::sync::mpsc;
use simcore::{transfer_time, Counter, RateResource, SimRng};
use telemetry::SpanKind;

pub use faults::GilbertElliott;
use faults::{FaultPlane, Verdict};

/// Ethernet + IP + UDP framing overhead added to every datagram on the wire.
pub const WIRE_HEADER_BYTES: u64 = 42;

/// Identifies a server in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// A (node, port) pair — the address of one bound endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Addr {
    /// Destination node.
    pub node: NodeId,
    /// Destination port on that node.
    pub port: u16,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// A datagram payload as a two-segment gather list — a small protocol-header
/// buffer plus a (typically refcounted, shared) body slice. This mirrors a
/// NIC scatter/gather descriptor: protocol stacks can prepend a header to a
/// large application buffer without copying the buffer. Wire time is charged
/// on the *sum* of the segment lengths, so splitting a payload never changes
/// modeled bytes-on-wire.
///
/// Plain single-buffer sends convert implicitly ([`From<Bytes>`]), carrying
/// the buffer in `head` with an empty `body`.
#[derive(Clone, Debug, Default)]
pub struct Payload {
    /// First segment (protocol header, or the whole payload).
    pub head: Bytes,
    /// Second segment (application data; empty for single-buffer sends).
    pub body: Bytes,
}

impl Payload {
    /// Build a two-segment payload.
    pub fn two(head: Bytes, body: Bytes) -> Payload {
        Payload { head, body }
    }

    /// Total payload length across both segments.
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// Whether both segments are empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.body.is_empty()
    }

    /// A contiguous view of the payload: zero-copy when one segment is
    /// empty, otherwise one concatenating copy.
    pub fn contiguous(&self) -> Bytes {
        if self.body.is_empty() {
            return self.head.clone();
        }
        if self.head.is_empty() {
            return self.body.clone();
        }
        let mut whole = Vec::with_capacity(self.len());
        whole.extend_from_slice(&self.head);
        whole.extend_from_slice(&self.body);
        Bytes::from(whole)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload {
            head: b,
            body: Bytes::new(),
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Bytes::from(v).into()
    }
}

impl From<&'static [u8]> for Payload {
    fn from(s: &'static [u8]) -> Payload {
        Bytes::from_static(s).into()
    }
}

/// One delivered datagram.
#[derive(Clone, Debug)]
pub struct Datagram {
    /// Sender address (for replies).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Payload segments (wire framing is accounted separately).
    pub payload: Payload,
}

/// Per-NIC configuration.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Line rate in bits per second (paper testbed: 100 Gb/s ConnectX-5).
    pub bandwidth_bits_per_sec: f64,
    /// Fixed per-packet cost (DMA setup, driver processing).
    pub per_packet_overhead: Duration,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            bandwidth_bits_per_sec: 100e9,
            per_packet_overhead: Duration::from_nanos(100),
        }
    }
}

impl NicConfig {
    /// Line rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_bits_per_sec / 8.0
    }
}

/// Fabric-wide configuration (one ToR switch).
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// One-way switch + propagation latency per hop.
    pub switch_latency: Duration,
    /// Independent per-packet drop probability (0 = lossless).
    pub loss_probability: f64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            switch_latency: Duration::from_nanos(500),
            loss_probability: 0.0,
        }
    }
}

/// A datagram crossing a partition boundary in a partitioned simulation
/// (see [`simcore::par`]). Payloads are refcounted shared buffers, so the
/// event is `Send` and crosses threads without copying.
#[derive(Clone, Debug)]
pub struct XDatagram {
    /// The datagram itself.
    pub dgram: Datagram,
    /// Bytes on the wire (payload + framing), charged at the receiver NIC
    /// by the destination partition's replica.
    pub wire_size: u64,
}

/// Cross-partition routing state: which partition this replica is, which
/// partition owns each node, and the engine handle for pushing events.
struct XpartState {
    local: u32,
    node_part: Vec<u32>,
    sender: XSender<XDatagram>,
}

struct NodeState {
    name: String,
    tx: RateResource,
    rx: RateResource,
    ports: HashMap<u16, mpsc::Sender<Datagram>>,
    next_ephemeral: u16,
}

struct NetInner {
    nodes: RefCell<Vec<NodeState>>,
    fabric: RefCell<FabricConfig>,
    faults: RefCell<FaultPlane>,
    /// True iff any per-link fault or partition is configured. Keeps the
    /// fault-free delivery path free of borrows and RNG draws.
    faults_active: Cell<bool>,
    /// Cross-partition routing, when this network is one partition's
    /// replica of a partitioned topology ([`Network::enable_xpart`]).
    xpart: RefCell<Option<XpartState>>,
    /// True iff `xpart` is set. Keeps the common (non-partitioned) send
    /// path at one `Cell` read.
    xpart_active: Cell<bool>,
    rng: SimRng,
    delivered: Counter,
    dropped_loss: Counter,
    dropped_partition: Counter,
    duplicated: Counter,
    reordered: Counter,
    dropped_unbound: Counter,
}

/// Handle onto the simulated fabric. Cloning shares the same network.
#[derive(Clone)]
pub struct Network {
    inner: Rc<NetInner>,
}

impl Network {
    /// Create a fabric with the given configuration and RNG seed (the seed
    /// only matters when `loss_probability > 0`).
    pub fn new(fabric: FabricConfig, seed: u64) -> Network {
        Network {
            inner: Rc::new(NetInner {
                nodes: RefCell::new(Vec::new()),
                fabric: RefCell::new(fabric),
                faults: RefCell::new(FaultPlane::default()),
                faults_active: Cell::new(false),
                xpart: RefCell::new(None),
                xpart_active: Cell::new(false),
                rng: SimRng::new(seed),
                delivered: Counter::new(),
                dropped_loss: Counter::new(),
                dropped_partition: Counter::new(),
                duplicated: Counter::new(),
                reordered: Counter::new(),
                dropped_unbound: Counter::new(),
            }),
        }
    }

    /// Add a server with the given NIC. Returns its [`NodeId`].
    pub fn add_node(&self, name: impl Into<String>, nic: NicConfig) -> NodeId {
        let mut nodes = self.inner.nodes.borrow_mut();
        let id = NodeId(nodes.len() as u32);
        let name = name.into();
        nodes.push(NodeState {
            tx: RateResource::new(
                format!("{name}.nic.tx"),
                nic.bytes_per_sec(),
                nic.per_packet_overhead,
            ),
            rx: RateResource::new(
                format!("{name}.nic.rx"),
                nic.bytes_per_sec(),
                nic.per_packet_overhead,
            ),
            name,
            ports: HashMap::new(),
            next_ephemeral: 49152,
        });
        id
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> String {
        self.inner.nodes.borrow()[node.0 as usize].name.clone()
    }

    /// Number of nodes in the fabric.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Bind a specific port on a node.
    ///
    /// # Panics
    /// Panics if the port is already bound.
    pub fn bind(&self, node: NodeId, port: u16) -> Endpoint {
        let (tx, rx) = mpsc::channel();
        {
            let mut nodes = self.inner.nodes.borrow_mut();
            let st = &mut nodes[node.0 as usize];
            let prev = st.ports.insert(port, tx);
            assert!(prev.is_none(), "port {port} already bound on {}", st.name);
        }
        Endpoint {
            net: self.clone(),
            addr: Addr { node, port },
            rx,
        }
    }

    /// Bind an ephemeral port on a node.
    pub fn bind_ephemeral(&self, node: NodeId) -> Endpoint {
        let port = {
            let mut nodes = self.inner.nodes.borrow_mut();
            let st = &mut nodes[node.0 as usize];
            loop {
                let p = st.next_ephemeral;
                st.next_ephemeral = st.next_ephemeral.wrapping_add(1).max(49152);
                if !st.ports.contains_key(&p) {
                    break p;
                }
            }
        };
        self.bind(node, port)
    }

    /// Set the fabric-wide per-packet loss probability (for reliability
    /// tests). Per-link overrides ([`Network::set_link_loss`]) take
    /// precedence on their links.
    pub fn set_loss_probability(&self, p: f64) {
        self.inner.fabric.borrow_mut().loss_probability = p;
    }

    fn refresh_faults_active(&self) {
        self.inner
            .faults_active
            .set(!self.inner.faults.borrow().is_empty());
    }

    /// Set (or with `None`, clear) a fixed i.i.d. loss probability on the
    /// directed link `src -> dst`, overriding the fabric-wide default.
    pub fn set_link_loss(&self, src: NodeId, dst: NodeId, p: Option<f64>) {
        self.inner.faults.borrow_mut().set_loss(src, dst, p);
        self.refresh_faults_active();
    }

    /// Install (or with `None`, clear) a Gilbert–Elliott bursty-loss model
    /// on the directed link `src -> dst`. The chain starts in the good
    /// state and advances once per packet.
    pub fn set_link_gilbert(&self, src: NodeId, dst: NodeId, cfg: Option<GilbertElliott>) {
        self.inner.faults.borrow_mut().set_gilbert(src, dst, cfg);
        self.refresh_faults_active();
    }

    /// Duplicate packets on `src -> dst` with probability `p` (0 clears).
    pub fn set_link_duplicate(&self, src: NodeId, dst: NodeId, p: f64) {
        self.inner.faults.borrow_mut().set_duplicate(src, dst, p);
        self.refresh_faults_active();
    }

    /// With probability `p`, hold a packet on `src -> dst` for an extra
    /// uniform delay in `(0, max_delay]` so it is reordered relative to
    /// its neighbors (`p = 0` clears).
    pub fn set_link_reorder(&self, src: NodeId, dst: NodeId, p: f64, max_delay: Duration) {
        self.inner
            .faults
            .borrow_mut()
            .set_reorder(src, dst, p, max_delay);
        self.refresh_faults_active();
    }

    /// Remove every fault (loss model, duplication, reordering, partition)
    /// from the directed link `src -> dst`.
    pub fn clear_link_faults(&self, src: NodeId, dst: NodeId) {
        self.inner.faults.borrow_mut().clear_link(src, dst);
        self.refresh_faults_active();
    }

    /// Remove all per-link faults and partitions (the fabric-wide
    /// `loss_probability` is left untouched).
    pub fn clear_faults(&self) {
        self.inner.faults.borrow_mut().clear_all();
        self.refresh_faults_active();
    }

    /// Partition nodes `a` and `b` (both directions) for `window` of
    /// virtual time starting now: every packet between them is dropped
    /// until the window expires. Windows extend, never shrink. Must be
    /// called from within a simulation context.
    pub fn partition_for(&self, a: NodeId, b: NodeId, window: Duration) {
        let until = simcore::now() + window;
        let mut f = self.inner.faults.borrow_mut();
        f.partition_until(a, b, until);
        f.partition_until(b, a, until);
        drop(f);
        self.refresh_faults_active();
    }

    /// Remove any partition between `a` and `b` (both directions) before
    /// its window expires.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut f = self.inner.faults.borrow_mut();
        f.heal(a, b);
        f.heal(b, a);
        drop(f);
        self.refresh_faults_active();
    }

    /// Whether packets from `a` to `b` are currently inside a partition
    /// window. Must be called from within a simulation context.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.inner
            .faults
            .borrow()
            .is_partitioned(a, b, simcore::now())
    }

    /// Datagrams delivered end-to-end.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.get()
    }

    /// Datagrams dropped by simulated loss (fixed or bursty).
    pub fn dropped_loss(&self) -> u64 {
        self.inner.dropped_loss.get()
    }

    /// Datagrams dropped inside a partition window.
    pub fn dropped_partition(&self) -> u64 {
        self.inner.dropped_partition.get()
    }

    /// Datagrams duplicated by fault injection (counted once per extra
    /// copy).
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.get()
    }

    /// Datagrams held for an extra reordering delay.
    pub fn reordered(&self) -> u64 {
        self.inner.reordered.get()
    }

    /// Datagrams dropped because no endpoint was bound at the destination.
    pub fn dropped_unbound(&self) -> u64 {
        self.inner.dropped_unbound.get()
    }

    /// Bytes transmitted by a node's NIC (payload + wire headers).
    pub fn node_tx_bytes(&self, node: NodeId) -> u64 {
        self.inner.nodes.borrow()[node.0 as usize].tx.bytes()
    }

    /// Bytes received by a node's NIC (payload + wire headers).
    pub fn node_rx_bytes(&self, node: NodeId) -> u64 {
        self.inner.nodes.borrow()[node.0 as usize].rx.bytes()
    }

    /// NIC transmit busy time for a node (for utilization reports).
    pub fn node_tx_busy(&self, node: NodeId) -> Duration {
        self.inner.nodes.borrow()[node.0 as usize].tx.busy_time()
    }

    /// Reset all NIC byte/op counters and every delivery/drop counter —
    /// including the fault-injection counters — so scoped chaos phases
    /// start from a clean slate (between warmup and measurement).
    pub fn reset_stats(&self) {
        for st in self.inner.nodes.borrow().iter() {
            st.tx.reset_stats();
            st.rx.reset_stats();
        }
        self.inner.delivered.reset();
        self.inner.dropped_loss.reset();
        self.inner.dropped_partition.reset();
        self.inner.duplicated.reset();
        self.inner.reordered.reset();
        self.inner.dropped_unbound.reset();
    }

    /// Transmit a datagram from `src` to `dst` without holding the bound
    /// [`Endpoint`] (protocol stacks whose dispatch loop owns the endpoint
    /// use this for their transmit path).
    pub fn send_datagram(&self, src: Addr, dst: Addr, payload: impl Into<Payload>) {
        self.send(Datagram {
            src,
            dst,
            payload: payload.into(),
        });
    }

    /// Internal: transmit a datagram. Reserves the sender's NIC immediately
    /// (preserving per-sender FIFO order) and spawns the delivery pipeline.
    /// Destinations owned by another partition are routed through the
    /// cross-partition mailbox instead ([`Network::enable_xpart`]).
    fn send(&self, dgram: Datagram) {
        let wire_size = dgram.payload.len() as u64 + WIRE_HEADER_BYTES;
        if self.inner.xpart_active.get() {
            if let Some(dst_part) = self.xpart_remote(&dgram) {
                self.send_xpart(dgram, wire_size, dst_part);
                return;
            }
        }
        // Captured in the sender's task (where any trace context lives) and
        // moved into the delivery pipeline, so one hop span covers tx NIC
        // occupancy, switch latency, and rx NIC occupancy. Untraced sends
        // cost one thread-local flag read.
        let mut hop = telemetry::leaf_span(SpanKind::NetHop, "net.hop", dgram.src.node.0);
        if let Some(s) = hop.as_mut() {
            s.attr("wire_bytes", wire_size);
            s.attr("dst_node", dgram.dst.node.0 as u64);
        }
        let tx_done = {
            let nodes = self.inner.nodes.borrow();
            nodes[dgram.src.node.0 as usize].tx.reserve(wire_size)
        };
        let net = self.clone();
        simcore::spawn(async move {
            simcore::sleep_until(tx_done).await;
            let (latency, loss_p) = {
                let f = net.inner.fabric.borrow();
                (f.switch_latency, f.loss_probability)
            };
            simcore::sleep(latency).await;
            // Fault plane: only consulted when some fault is configured or
            // the fabric-wide loss knob is on — the fault-free path draws
            // no random numbers and stays bit-identical.
            if net.inner.faults_active.get() || loss_p > 0.0 {
                let verdict = net.inner.faults.borrow_mut().verdict(
                    dgram.src.node,
                    dgram.dst.node,
                    simcore::now(),
                    loss_p,
                    &net.inner.rng,
                );
                match verdict {
                    Verdict::DropLoss => {
                        net.inner.dropped_loss.incr();
                        if let Some(mut s) = hop {
                            s.attr("dropped", 1);
                        }
                        return;
                    }
                    Verdict::DropPartition => {
                        net.inner.dropped_partition.incr();
                        if let Some(mut s) = hop {
                            s.attr("dropped", 1);
                        }
                        return;
                    }
                    Verdict::Deliver {
                        copies,
                        extra_delay,
                    } => {
                        if let Some(d) = extra_delay {
                            net.inner.reordered.incr();
                            simcore::sleep(d).await;
                        }
                        for copy in 0..copies {
                            if copy > 0 {
                                net.inner.duplicated.incr();
                            }
                            net.deliver_local(dgram.clone(), wire_size).await;
                        }
                        return;
                    }
                }
            }
            net.deliver_local(dgram, wire_size).await;
        });
    }

    /// Receive-side half of delivery: rx NIC occupancy, port lookup,
    /// enqueue into the bound endpoint (or count the drop).
    async fn deliver_local(&self, dgram: Datagram, wire_size: u64) {
        let rx_done = {
            let nodes = self.inner.nodes.borrow();
            nodes[dgram.dst.node.0 as usize].rx.reserve(wire_size)
        };
        simcore::sleep_until(rx_done).await;
        let sender = {
            let nodes = self.inner.nodes.borrow();
            nodes[dgram.dst.node.0 as usize]
                .ports
                .get(&dgram.dst.port)
                .cloned()
        };
        match sender {
            Some(tx) if tx.send(dgram).is_ok() => self.inner.delivered.incr(),
            _ => self.inner.dropped_unbound.incr(),
        }
    }

    /// Enable cross-partition routing on this replica of a partitioned
    /// topology. `node_part[n]` is the partition owning node `n`; the
    /// replica's own partition is `sender.partition()`. Every partition
    /// must build the *identical* topology (same `add_node` order, same
    /// NICs and fabric config) so node ids and cost models agree; each
    /// replica then binds endpoints and runs traffic only for the nodes it
    /// owns. Prefer [`Network::attach_to_partition`], which also wires the
    /// receive side.
    pub fn enable_xpart(&self, node_part: Vec<u32>, sender: XSender<XDatagram>) {
        assert_eq!(
            node_part.len(),
            self.node_count(),
            "node→partition map must cover every node"
        );
        *self.inner.xpart.borrow_mut() = Some(XpartState {
            local: sender.partition(),
            node_part,
            sender,
        });
        self.inner.xpart_active.set(true);
    }

    /// Wire this replica into a partition of a [`simcore::par`] run:
    /// enables cross-partition routing and installs the partition's
    /// delivery handler ([`Network::accept_xpart`]). Call once from the
    /// partition builder, before any traffic.
    pub fn attach_to_partition(&self, ctx: &PartitionCtx<XDatagram>, node_part: Vec<u32>) {
        self.enable_xpart(node_part, ctx.sender());
        let net = self.clone();
        ctx.on_deliver(move |x: XDatagram| net.accept_xpart(x));
    }

    /// The partition owning `node` (`None` when cross-partition routing is
    /// not enabled).
    pub fn partition_of(&self, node: NodeId) -> Option<u32> {
        self.inner
            .xpart
            .borrow()
            .as_ref()
            .map(|x| x.node_part[node.0 as usize])
    }

    /// Conservative lower bound on the delay of any cross-partition
    /// delivery — the lookahead for [`simcore::par::ParConfig`]. Every
    /// datagram pays its sender's per-packet NIC overhead plus at least
    /// [`WIRE_HEADER_BYTES`] of serialization before the switch hop, so
    /// `switch_latency + min over nodes of (per_packet_overhead +
    /// transfer_time(WIRE_HEADER_BYTES))` bounds the earliest possible
    /// arrival in another partition. Fault injection only adds delay or
    /// drops, never accelerates. Compute this *after* the topology (and
    /// any `set_rate` tuning) is final: raising a NIC rate mid-run could
    /// shrink the true bound below a previously computed lookahead (the
    /// engine's send-time assert would catch the violation).
    pub fn xpart_lookahead(&self) -> Duration {
        let nodes = self.inner.nodes.borrow();
        assert!(!nodes.is_empty(), "lookahead of an empty fabric");
        let min_nic = nodes
            .iter()
            .map(|st| st.tx.per_op_overhead() + transfer_time(WIRE_HEADER_BYTES, st.tx.rate()))
            .min()
            .expect("non-empty");
        self.inner.fabric.borrow().switch_latency + min_nic
    }

    /// Transmit across a partition boundary: charge the local tx NIC and
    /// the switch hop, evaluate the fault plane (at the packet's arrival
    /// timestamp, drawn in deterministic send order on this replica's
    /// RNG), and push the datagram to the owning partition as a
    /// timestamped event. The receive-side NIC cost is charged by the
    /// destination replica ([`Network::accept_xpart`]). The push happens
    /// at send time with a future timestamp — the transmit + switch delay
    /// is exactly what funds the engine's lookahead window.
    fn send_xpart(&self, dgram: Datagram, wire_size: u64, dst_part: u32) {
        let mut hop = telemetry::leaf_span(SpanKind::NetHop, "net.hop", dgram.src.node.0);
        if let Some(s) = hop.as_mut() {
            s.attr("wire_bytes", wire_size);
            s.attr("dst_node", dgram.dst.node.0 as u64);
            s.attr("xpart", 1);
        }
        let tx_done = {
            let nodes = self.inner.nodes.borrow();
            nodes[dgram.src.node.0 as usize].tx.reserve(wire_size)
        };
        let (latency, loss_p) = {
            let f = self.inner.fabric.borrow();
            (f.switch_latency, f.loss_probability)
        };
        let arrival = tx_done + latency;
        let mut deliver_at = arrival;
        let mut copies = 1u32;
        if self.inner.faults_active.get() || loss_p > 0.0 {
            let verdict = self.inner.faults.borrow_mut().verdict(
                dgram.src.node,
                dgram.dst.node,
                arrival,
                loss_p,
                &self.inner.rng,
            );
            match verdict {
                Verdict::DropLoss => {
                    self.inner.dropped_loss.incr();
                    if let Some(mut s) = hop {
                        s.attr("dropped", 1);
                    }
                    return;
                }
                Verdict::DropPartition => {
                    self.inner.dropped_partition.incr();
                    if let Some(mut s) = hop {
                        s.attr("dropped", 1);
                    }
                    return;
                }
                Verdict::Deliver {
                    copies: c,
                    extra_delay,
                } => {
                    if let Some(d) = extra_delay {
                        self.inner.reordered.incr();
                        deliver_at = arrival + d;
                    }
                    copies = c;
                }
            }
        }
        let sender = {
            let x = self.inner.xpart.borrow();
            x.as_ref().expect("xpart enabled").sender.clone()
        };
        for copy in 0..copies {
            if copy > 0 {
                self.inner.duplicated.incr();
            }
            sender.send(
                dst_part,
                deliver_at,
                XDatagram {
                    dgram: dgram.clone(),
                    wire_size,
                },
            );
        }
    }

    /// If cross-partition routing is on and `dgram`'s destination lives
    /// in another partition, return that partition.
    fn xpart_remote(&self, dgram: &Datagram) -> Option<u32> {
        let x = self.inner.xpart.borrow();
        let x = x.as_ref()?;
        debug_assert_eq!(
            x.node_part[dgram.src.node.0 as usize], x.local,
            "send from node {} owned by another partition",
            dgram.src.node.0,
        );
        let dst = x.node_part[dgram.dst.node.0 as usize];
        (dst != x.local).then_some(dst)
    }

    /// Receive-side entry for a datagram forwarded from a peer partition:
    /// runs (via the partition's delivery handler) at the packet's arrival
    /// instant and charges the local rx NIC exactly like a local delivery.
    pub fn accept_xpart(&self, x: XDatagram) {
        let net = self.clone();
        simcore::spawn(async move {
            net.deliver_local(x.dgram, x.wire_size).await;
        });
    }

    fn unbind(&self, addr: Addr) {
        let mut nodes = self.inner.nodes.borrow_mut();
        if let Some(st) = nodes.get_mut(addr.node.0 as usize) {
            st.ports.remove(&addr.port);
        }
    }
}

/// A bound datagram socket on a node.
pub struct Endpoint {
    net: Network,
    addr: Addr,
    rx: mpsc::Receiver<Datagram>,
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The network this endpoint belongs to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Send `payload` to `dst` (fire-and-forget, unreliable datagram).
    pub fn send_to(&self, dst: Addr, payload: impl Into<Payload>) {
        self.net.send(Datagram {
            src: self.addr,
            dst,
            payload: payload.into(),
        });
    }

    /// Receive the next datagram (never resolves while the endpoint has no
    /// traffic; the endpoint stays bound for the lifetime of `self`).
    pub async fn recv(&mut self) -> Datagram {
        self.rx
            .recv()
            .await
            .expect("endpoint channel closed while bound")
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Datagram> {
        self.rx.try_recv()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.net.unbind(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    fn gbe100() -> NicConfig {
        NicConfig::default()
    }

    #[test]
    fn one_way_delivery_latency() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 10);
        let mut eb = net.bind(b, 20);
        let t = sim.block_on(async move {
            ea.send_to(eb.addr(), Bytes::from_static(b"hello"));
            let d = eb.recv().await;
            assert_eq!(&d.payload.contiguous()[..], b"hello");
            assert_eq!(d.src, ea.addr());
            simcore::now().nanos()
        });
        // wire = 5 + 42 = 47B at 12.5GB/s = 3.76 -> 4ns; +100ns overhead each
        // side; +500ns switch: 104 + 500 + 104 = 708ns.
        assert_eq!(t, 708);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn serialization_dominates_for_large_payloads() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        let t = sim.block_on(async move {
            ea.send_to(eb.addr(), Bytes::from(vec![0u8; 125_000]));
            eb.recv().await;
            simcore::now().nanos()
        });
        // 125042B at 12.5GB/s ~ 10_004ns per side + overheads + switch.
        assert!((20_500..21_500).contains(&t), "t = {t}");
    }

    #[test]
    fn per_sender_fifo_order() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        let got = sim.block_on(async move {
            for i in 0..10u8 {
                ea.send_to(eb.addr(), Bytes::from(vec![i]));
            }
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(eb.recv().await.payload.contiguous()[0]);
            }
            got
        });
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn nic_bandwidth_shared_between_flows() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let c = net.add_node("c", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        let mut ec = net.bind(c, 1);
        let t = sim.block_on(async move {
            // Two 125KB payloads from the same sender to different receivers
            // must serialize on the sender NIC (~10us each).
            ea.send_to(eb.addr(), Bytes::from(vec![0u8; 125_000]));
            ea.send_to(ec.addr(), Bytes::from(vec![0u8; 125_000]));
            eb.recv().await;
            ec.recv().await;
            simcore::now().nanos()
        });
        assert!(t > 30_000, "second flow delayed by first: t = {t}");
    }

    #[test]
    fn unbound_port_drops() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        sim.block_on(async move {
            ea.send_to(Addr { node: b, port: 99 }, Bytes::from_static(b"x"));
            simcore::sleep(Duration::from_micros(10)).await;
        });
        assert_eq!(net.delivered(), 0);
        assert_eq!(net.dropped_unbound(), 1);
    }

    #[test]
    fn loss_drops_expected_fraction() {
        let sim = Sim::new();
        let net = Network::new(
            FabricConfig {
                loss_probability: 0.3,
                ..Default::default()
            },
            42,
        );
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let _eb = net.bind(b, 1);
        sim.block_on(async move {
            for _ in 0..1000 {
                ea.send_to(Addr { node: b, port: 1 }, Bytes::from_static(b"p"));
            }
            simcore::sleep(Duration::from_millis(10)).await;
        });
        let lost = net.dropped_loss();
        assert!((200..400).contains(&lost), "lost = {lost}");
        assert_eq!(net.delivered() + lost, 1000);
    }

    #[test]
    fn tx_rx_byte_accounting() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        sim.block_on(async move {
            ea.send_to(eb.addr(), Bytes::from(vec![0u8; 1000]));
            eb.recv().await;
        });
        assert_eq!(net.node_tx_bytes(a), 1000 + WIRE_HEADER_BYTES);
        assert_eq!(net.node_rx_bytes(b), 1000 + WIRE_HEADER_BYTES);
        net.reset_stats();
        assert_eq!(net.node_tx_bytes(a), 0);
    }

    #[test]
    fn ephemeral_ports_unique() {
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let e1 = net.bind_ephemeral(a);
        let e2 = net.bind_ephemeral(a);
        assert_ne!(e1.addr().port, e2.addr().port);
    }

    #[test]
    fn endpoint_drop_unbinds_port() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        {
            let _e = net.bind(b, 7);
        }
        let ea = net.bind(a, 1);
        sim.block_on(async move {
            ea.send_to(Addr { node: b, port: 7 }, Bytes::from_static(b"x"));
            simcore::sleep(Duration::from_micros(10)).await;
        });
        assert_eq!(net.dropped_unbound(), 1);
        // Port can be re-bound after drop.
        let _e2 = net.bind(b, 7);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let net = Network::new(FabricConfig::default(), 1);
        let a = net.add_node("a", gbe100());
        let _e1 = net.bind(a, 5);
        let _e2 = net.bind(a, 5);
    }

    #[test]
    fn per_link_loss_scopes_to_one_link() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let c = net.add_node("c", gbe100());
        let ea = net.bind(a, 1);
        let _eb = net.bind(b, 1);
        let _ec = net.bind(c, 1);
        net.set_link_loss(a, b, Some(1.0));
        sim.block_on(async move {
            for _ in 0..100 {
                ea.send_to(Addr { node: b, port: 1 }, Bytes::from_static(b"x"));
                ea.send_to(Addr { node: c, port: 1 }, Bytes::from_static(b"x"));
            }
            simcore::sleep(Duration::from_millis(1)).await;
        });
        // Every a->b packet dies; every a->c packet survives.
        assert_eq!(net.dropped_loss(), 100);
        assert_eq!(net.delivered(), 100);
        net.set_link_loss(a, b, None);
        assert!(
            !net.inner.faults_active.get(),
            "cleared faults re-arm fast path"
        );
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        let net2 = net.clone();
        sim.block_on(async move {
            net2.partition_for(a, b, Duration::from_micros(50));
            assert!(net2.is_partitioned(a, b));
            assert!(net2.is_partitioned(b, a));
            ea.send_to(eb.addr(), Bytes::from_static(b"dead"));
            simcore::sleep(Duration::from_micros(100)).await;
            assert!(!net2.is_partitioned(a, b));
            ea.send_to(eb.addr(), Bytes::from_static(b"alive"));
            let d = eb.recv().await;
            assert_eq!(&d.payload.contiguous()[..], b"alive");
        });
        assert_eq!(net.dropped_partition(), 1);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        net.set_link_duplicate(a, b, 1.0);
        let got = sim.block_on(async move {
            for i in 0..5u8 {
                ea.send_to(eb.addr(), Bytes::from(vec![i]));
            }
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(eb.recv().await.payload.contiguous()[0]);
            }
            got
        });
        // Copies contend with later packets at the rx NIC, so arrival order
        // interleaves; each payload must simply arrive exactly twice.
        let mut sorted = got;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(net.duplicated(), 5);
        assert_eq!(net.delivered(), 10);
    }

    #[test]
    fn reorder_overtakes_fifo() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let mut eb = net.bind(b, 1);
        // Every packet is held for a large random delay: with 20 packets the
        // arrival order almost surely differs from the send order.
        net.set_link_reorder(a, b, 1.0, Duration::from_micros(100));
        let got = sim.block_on(async move {
            for i in 0..20u8 {
                ea.send_to(eb.addr(), Bytes::from(vec![i]));
            }
            let mut got = Vec::new();
            for _ in 0..20 {
                got.push(eb.recv().await.payload.contiguous()[0]);
            }
            got
        });
        assert_eq!(net.reordered(), 20);
        let sorted: Vec<u8> = (0..20).collect();
        assert_ne!(got, sorted, "reordering changed arrival order");
        let mut resorted = got.clone();
        resorted.sort_unstable();
        assert_eq!(resorted, sorted, "no packet lost or duplicated");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty_and_deterministic() {
        let run = |seed: u64| -> (u64, u64) {
            let sim = Sim::new();
            let net = Network::new(FabricConfig::default(), seed);
            let a = net.add_node("a", gbe100());
            let b = net.add_node("b", gbe100());
            let ea = net.bind(a, 1);
            let _eb = net.bind(b, 1);
            net.set_link_gilbert(a, b, Some(GilbertElliott::bursty()));
            sim.block_on(async move {
                for _ in 0..2000 {
                    ea.send_to(Addr { node: b, port: 1 }, Bytes::from_static(b"x"));
                }
                simcore::sleep(Duration::from_millis(10)).await;
            });
            (net.dropped_loss(), net.delivered())
        };
        let (lost, delivered) = run(42);
        assert_eq!(lost + delivered, 2000);
        // Stationary bad-state share = 0.02/(0.02+0.25) ~ 7.4%, so the mean
        // loss rate is ~5.3%: far above loss_good, far below loss_bad.
        assert!((20..400).contains(&lost), "lost = {lost}");
        // Same seed replays the exact same schedule.
        assert_eq!(run(42), (lost, delivered));
        assert_ne!(run(43), (lost, delivered));
    }

    #[test]
    fn xpart_delivery_matches_serial_virtual_time() {
        use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};
        use std::cell::Cell as StdCell;
        use std::rc::Rc;

        // Identical topology in every partition; node 0 in partition 0,
        // node 1 in partition 1. The receive time must equal the serial
        // single-Network run (`one_way_delivery_latency`: 708ns).
        fn topo() -> (Network, NodeId, NodeId) {
            let net = Network::new(FabricConfig::default(), 1);
            let a = net.add_node("a", NicConfig::default());
            let b = net.add_node("b", NicConfig::default());
            (net, a, b)
        }
        let lookahead = topo().0.xpart_lookahead();
        let builders: Vec<PartitionBuilder<XDatagram, u64>> = (0..2u32)
            .map(|part| {
                let b: PartitionBuilder<XDatagram, u64> = Box::new(move |ctx| {
                    let (net, a, b) = topo();
                    net.attach_to_partition(ctx, vec![0, 1]);
                    let recv_ns: Rc<StdCell<u64>> = Rc::new(StdCell::new(0));
                    if part == 0 {
                        let ea = net.bind(a, 10);
                        ctx.sim().spawn(async move {
                            ea.send_to(Addr { node: b, port: 20 }, Bytes::from_static(b"hello"));
                            // Keep the endpoint bound past the send.
                            simcore::sleep(Duration::from_micros(10)).await;
                        });
                    } else {
                        let mut eb = net.bind(b, 20);
                        let recv_ns = recv_ns.clone();
                        ctx.sim().spawn(async move {
                            let d = eb.recv().await;
                            assert_eq!(&d.payload.contiguous()[..], b"hello");
                            recv_ns.set(simcore::now().nanos());
                        });
                    }
                    Box::new(move || recv_ns.get())
                });
                b
            })
            .collect();
        let out = run_partitioned(
            builders,
            ParConfig {
                lookahead,
                threads: 2,
            },
        );
        assert_eq!(out.xevents, 1);
        assert_eq!(out.partitions[1].result, 708, "matches the serial run");
    }

    /// A token circles a 4-node ring (one node per partition) with RPC-
    /// sized payloads; the outcome fingerprint and per-partition receive
    /// counts must be identical at every thread count.
    fn xpart_ring(threads: usize) -> Vec<u64> {
        use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};
        use std::cell::Cell as StdCell;
        use std::rc::Rc;

        const NODES: u32 = 4;
        const LAPS: u64 = 8;
        fn topo() -> Network {
            let net = Network::new(FabricConfig::default(), 9);
            for i in 0..NODES {
                net.add_node(format!("n{i}"), NicConfig::default());
            }
            net
        }
        let lookahead = topo().xpart_lookahead();
        let builders: Vec<PartitionBuilder<XDatagram, u64>> = (0..NODES)
            .map(|part| {
                let b: PartitionBuilder<XDatagram, u64> = Box::new(move |ctx| {
                    let net = topo();
                    net.attach_to_partition(ctx, (0..NODES).collect());
                    let me = NodeId(part);
                    let next = NodeId((part + 1) % NODES);
                    let mut ep = net.bind(me, 7);
                    let got: Rc<StdCell<u64>> = Rc::new(StdCell::new(0));
                    let got2 = got.clone();
                    ctx.sim().spawn(async move {
                        if part == 0 {
                            ep.send_to(
                                Addr {
                                    node: next,
                                    port: 7,
                                },
                                vec![0u8; 256],
                            );
                        }
                        loop {
                            let d = ep.recv().await;
                            got2.set(got2.get() + 1);
                            let hops = got2.get() * NODES as u64;
                            if part == 0 && hops >= LAPS * NODES as u64 {
                                break;
                            }
                            ep.send_to(
                                Addr {
                                    node: next,
                                    port: 7,
                                },
                                d.payload,
                            );
                        }
                    });
                    Box::new(move || got.get())
                });
                b
            })
            .collect();
        let out = run_partitioned(builders, ParConfig { lookahead, threads });
        assert_eq!(out.xevents, LAPS * NODES as u64);
        for p in &out.partitions {
            assert_eq!(p.result, LAPS, "each node relayed every lap");
        }
        out.fingerprint()
    }

    #[test]
    fn xpart_ring_fingerprint_thread_count_invariant() {
        let fp1 = xpart_ring(1);
        assert_eq!(fp1, xpart_ring(2));
        assert_eq!(fp1, xpart_ring(4));
    }

    #[test]
    fn xpart_faults_drop_and_delay_deterministically() {
        use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};

        // Partitioned link with loss: sender-side verdicts must be
        // deterministic and thread-count invariant, and drops must be
        // counted on the sender's replica.
        fn run(threads: usize) -> (Vec<u64>, u64, u64) {
            fn topo() -> (Network, NodeId, NodeId) {
                let net = Network::new(FabricConfig::default(), 42);
                let a = net.add_node("a", NicConfig::default());
                let b = net.add_node("b", NicConfig::default());
                (net, a, b)
            }
            let lookahead = topo().0.xpart_lookahead();
            let builders: Vec<PartitionBuilder<XDatagram, (u64, u64)>> = (0..2u32)
                .map(|part| {
                    let b: PartitionBuilder<XDatagram, (u64, u64)> = Box::new(move |ctx| {
                        let (net, a, b) = topo();
                        net.attach_to_partition(ctx, vec![0, 1]);
                        if part == 0 {
                            net.set_link_loss(a, b, Some(0.3));
                            let ea = net.bind(a, 1);
                            ctx.sim().spawn(async move {
                                for _ in 0..200 {
                                    ea.send_to(Addr { node: b, port: 1 }, Bytes::from_static(b"x"));
                                }
                                simcore::sleep(Duration::from_millis(1)).await;
                            });
                        } else {
                            // Receiver keeps the port bound for the whole run.
                            let _eb = Box::leak(Box::new(net.bind(b, 1)));
                        }
                        let net2 = net.clone();
                        Box::new(move || (net2.dropped_loss(), net2.delivered()))
                    });
                    b
                })
                .collect();
            let out = run_partitioned(builders, ParConfig { lookahead, threads });
            let dropped = out.partitions[0].result.0;
            let delivered = out.partitions[1].result.1;
            (out.fingerprint(), dropped, delivered)
        }
        let (fp1, dropped, delivered) = run(1);
        assert_eq!(dropped + delivered, 200);
        assert!((30..100).contains(&dropped), "dropped = {dropped}");
        assert_eq!(run(2), (fp1, dropped, delivered));
    }

    #[test]
    fn reset_stats_clears_fault_counters() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let a = net.add_node("a", gbe100());
        let b = net.add_node("b", gbe100());
        let ea = net.bind(a, 1);
        let _eb = net.bind(b, 1);
        net.set_link_loss(a, b, Some(1.0));
        net.set_link_duplicate(a, b, 1.0);
        let net2 = net.clone();
        sim.block_on(async move {
            net2.partition_for(a, b, Duration::from_secs(1));
            for _ in 0..10 {
                ea.send_to(Addr { node: b, port: 1 }, Bytes::from_static(b"x"));
            }
            simcore::sleep(Duration::from_micros(50)).await;
        });
        assert_eq!(net.dropped_partition(), 10);
        net.reset_stats();
        assert_eq!(net.dropped_loss(), 0);
        assert_eq!(net.dropped_partition(), 0);
        assert_eq!(net.duplicated(), 0);
        assert_eq!(net.reordered(), 0);
        assert_eq!(net.delivered(), 0);
    }
}
