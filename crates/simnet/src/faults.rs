//! Deterministic fault-injection plane for the simulated fabric.
//!
//! Faults are configured per *directed* link `(src, dst)` and evaluated
//! inside the delivery pipeline, after switch latency and before the
//! receive-side NIC. Every stochastic decision draws from the fabric's
//! seeded [`SimRng`], so a `(seed, fault schedule)` pair replays the exact
//! same packet fate sequence on every run.
//!
//! Fault classes (DESIGN.md §8):
//!
//! * **fixed per-link loss** — i.i.d. drop probability overriding the
//!   fabric-wide default for one link;
//! * **Gilbert–Elliott bursty loss** — a two-state Markov chain (good/bad)
//!   advanced once per packet, with independent loss probability in each
//!   state; models correlated loss bursts that defeat naive fixed-RTO
//!   retransmission;
//! * **transient partitions** — drop *every* packet between a node pair
//!   until a virtual-time expiry (checked lazily, no timers);
//! * **duplication** — deliver a packet twice (stresses at-most-once
//!   execution and response caching);
//! * **reordering** — hold a packet for an extra uniformly-drawn delay so
//!   it overtakes or is overtaken by its neighbors.
//!
//! The fault-free fast path draws **zero** random numbers (see
//! [`crate::Network::send`]): a fabric with no configured faults and zero
//! default loss is bit-identical to one built before this module existed.

use std::collections::HashMap;
use std::time::Duration;

use simcore::{SimRng, SimTime};

use crate::NodeId;

/// Parameters of a Gilbert–Elliott two-state Markov loss model.
///
/// The chain starts in the *good* state. Once per packet it flips state
/// with probability `p_good_to_bad` (resp. `p_bad_to_good`), then the
/// packet is dropped with the loss probability of the *current* state.
#[derive(Clone, Copy, Debug)]
pub struct GilbertElliott {
    /// Per-packet probability of entering the bad (bursty) state.
    pub p_good_to_bad: f64,
    /// Per-packet probability of recovering to the good state.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A typical bursty-loss profile: long clean stretches punctuated by
    /// short bursts during which most packets die.
    pub fn bursty() -> GilbertElliott {
        GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
            loss_good: 0.001,
            loss_bad: 0.7,
        }
    }
}

/// Gilbert–Elliott model plus its per-link Markov state.
struct GeState {
    cfg: GilbertElliott,
    bad: bool,
}

/// All faults configured on one directed link.
#[derive(Default)]
struct LinkFaults {
    /// Fixed i.i.d. loss override (takes precedence over fabric default).
    loss: Option<f64>,
    /// Bursty loss model (takes precedence over `loss`).
    ge: Option<GeState>,
    /// Probability a delivered packet is duplicated.
    duplicate_p: f64,
    /// Probability a delivered packet is held for an extra delay.
    reorder_p: f64,
    /// Maximum extra delay for reordered packets (uniform in `(0, max]`).
    reorder_delay: Duration,
}

impl LinkFaults {
    fn is_noop(&self) -> bool {
        self.loss.is_none() && self.ge.is_none() && self.duplicate_p == 0.0 && self.reorder_p == 0.0
    }
}

/// The fate of one packet, decided by [`FaultPlane::verdict`].
pub(crate) enum Verdict {
    /// Deliver `copies` copies (2 when duplicated), after an optional
    /// extra reordering delay.
    Deliver {
        copies: u32,
        extra_delay: Option<Duration>,
    },
    /// Dropped by (fixed or bursty) loss.
    DropLoss,
    /// Dropped because the link is inside a partition window.
    DropPartition,
}

/// Per-fabric fault state: link fault configs plus partition windows.
#[derive(Default)]
pub(crate) struct FaultPlane {
    links: HashMap<(NodeId, NodeId), LinkFaults>,
    /// Directed partition windows: drop everything until the stored time.
    partitions: HashMap<(NodeId, NodeId), SimTime>,
}

impl FaultPlane {
    pub(crate) fn is_empty(&self) -> bool {
        self.links.is_empty() && self.partitions.is_empty()
    }

    fn link_mut(&mut self, src: NodeId, dst: NodeId) -> &mut LinkFaults {
        self.links.entry((src, dst)).or_default()
    }

    /// Drop the entry again if every knob is back at its default, so the
    /// fault-free fast path re-engages after faults are cleared.
    fn prune(&mut self, src: NodeId, dst: NodeId) {
        if self.links.get(&(src, dst)).is_some_and(|l| l.is_noop()) {
            self.links.remove(&(src, dst));
        }
    }

    pub(crate) fn set_loss(&mut self, src: NodeId, dst: NodeId, p: Option<f64>) {
        self.link_mut(src, dst).loss = p;
        self.prune(src, dst);
    }

    pub(crate) fn set_gilbert(&mut self, src: NodeId, dst: NodeId, cfg: Option<GilbertElliott>) {
        self.link_mut(src, dst).ge = cfg.map(|cfg| GeState { cfg, bad: false });
        self.prune(src, dst);
    }

    pub(crate) fn set_duplicate(&mut self, src: NodeId, dst: NodeId, p: f64) {
        self.link_mut(src, dst).duplicate_p = p;
        self.prune(src, dst);
    }

    pub(crate) fn set_reorder(&mut self, src: NodeId, dst: NodeId, p: f64, max_delay: Duration) {
        let lf = self.link_mut(src, dst);
        lf.reorder_p = p;
        lf.reorder_delay = max_delay;
        self.prune(src, dst);
    }

    pub(crate) fn clear_link(&mut self, src: NodeId, dst: NodeId) {
        self.links.remove(&(src, dst));
        self.partitions.remove(&(src, dst));
    }

    pub(crate) fn clear_all(&mut self) {
        self.links.clear();
        self.partitions.clear();
    }

    pub(crate) fn partition_until(&mut self, src: NodeId, dst: NodeId, until: SimTime) {
        let e = self.partitions.entry((src, dst)).or_insert(SimTime::ZERO);
        *e = (*e).max(until);
    }

    pub(crate) fn heal(&mut self, src: NodeId, dst: NodeId) {
        self.partitions.remove(&(src, dst));
    }

    pub(crate) fn is_partitioned(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        self.partitions.get(&(src, dst)).is_some_and(|&u| now < u)
    }

    /// Decide the fate of one packet on `src -> dst` at virtual time `now`.
    ///
    /// `default_loss` is the fabric-wide i.i.d. loss probability, applied
    /// when the link has no loss override. Draw order is fixed (partition,
    /// loss, duplicate, reorder) so schedules replay deterministically.
    pub(crate) fn verdict(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
        default_loss: f64,
        rng: &SimRng,
    ) -> Verdict {
        if let Some(&until) = self.partitions.get(&(src, dst)) {
            if now < until {
                return Verdict::DropPartition;
            }
            self.partitions.remove(&(src, dst)); // window expired
        }
        let Some(lf) = self.links.get_mut(&(src, dst)) else {
            if default_loss > 0.0 && rng.gen_bool(default_loss) {
                return Verdict::DropLoss;
            }
            return Verdict::Deliver {
                copies: 1,
                extra_delay: None,
            };
        };
        let lost = if let Some(ge) = lf.ge.as_mut() {
            let flip_p = if ge.bad {
                ge.cfg.p_bad_to_good
            } else {
                ge.cfg.p_good_to_bad
            };
            if flip_p > 0.0 && rng.gen_bool(flip_p) {
                ge.bad = !ge.bad;
            }
            let p = if ge.bad {
                ge.cfg.loss_bad
            } else {
                ge.cfg.loss_good
            };
            p > 0.0 && rng.gen_bool(p)
        } else {
            let p = lf.loss.unwrap_or(default_loss);
            p > 0.0 && rng.gen_bool(p)
        };
        if lost {
            return Verdict::DropLoss;
        }
        let copies = if lf.duplicate_p > 0.0 && rng.gen_bool(lf.duplicate_p) {
            2
        } else {
            1
        };
        let extra_delay = if lf.reorder_p > 0.0 && rng.gen_bool(lf.reorder_p) {
            let max_ns = lf.reorder_delay.as_nanos() as u64;
            if max_ns == 0 {
                None
            } else {
                Some(Duration::from_nanos(rng.gen_range_in(1, max_ns + 1)))
            }
        } else {
            None
        };
        Verdict::Deliver {
            copies,
            extra_delay,
        }
    }
}
