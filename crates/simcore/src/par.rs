//! Partitioned deterministic simulation: conservative time-windowed
//! parallel execution of multiple [`Sim`] instances.
//!
//! The serial executor ([`Sim`]) is single-threaded by construction, so
//! event volume scales linearly with wall time. This module partitions a
//! simulated cluster across OS threads: each **partition** owns a full
//! `Sim` (its own virtual clock, task slab, timer wheel, and RNG streams)
//! pinned to one worker thread, and partitions exchange timestamped events
//! through per-`(src, dst)` ordered queues drained at **window barriers**.
//!
//! ## The conservative protocol
//!
//! The engine repeatedly computes the *global next event time* `m` — the
//! minimum over every partition's earliest pending local event and every
//! undelivered cross-partition event — and runs all partitions through the
//! window `[m, m + L)`, where `L` is the **lookahead**: a caller-supplied
//! lower bound on the delay of any cross-partition event (for `simnet`
//! fabrics, derived from the switch latency plus the minimum NIC cost; see
//! `Network::xpart_lookahead`). Because no partition has anything to run
//! before `m`, no send can be timestamped earlier than `m`, so every
//! cross-partition event generated inside the window is delivered at or
//! after `m + L` — i.e. in a *later* window. Each partition can therefore
//! run its window to completion without ever waiting on a peer, and idle
//! stretches are skipped in one jump (the window start is `m`, not the
//! previous window's end).
//!
//! ## Determinism
//!
//! Each partition's execution is a pure function of its builder and the
//! ordered sequence of events injected into it. Injection order is
//! canonical — events due inside a window are sorted by
//! `(deliver_at, src partition, per-pair sequence)` before being scheduled,
//! and the per-pair sequence is itself deterministic because each sender
//! partition is deterministic. The thread count only changes *which worker*
//! runs a partition, never what the partition observes, so virtual-time
//! results, RNG streams, poll counts, telemetry traces, and golden
//! fingerprints are byte-identical at every thread count, including
//! `threads = 1` (the serial schedule). `simcore/tests/par_determinism.rs`
//! proves this property over randomized topologies.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use crate::time::SimTime;
use crate::Sim;

/// One timestamped cross-partition event.
#[derive(Debug)]
pub struct XEvent<E> {
    /// Virtual time at which the destination partition must process it.
    pub deliver_at: SimTime,
    /// Sending partition.
    pub src: u32,
    /// Per-`(src, dst)` sequence number (the deterministic tie-breaker for
    /// events due at the same instant from the same sender).
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

/// Per-`(src, dst)` queue: a sequence counter plus pending events. Events
/// are *not* ordered by `deliver_at` (a sender may delay one packet more
/// than the next), so window injection scans the whole queue.
struct PairQueue<E> {
    seq: u64,
    events: Vec<XEvent<E>>,
}

impl<E> Default for PairQueue<E> {
    fn default() -> Self {
        PairQueue {
            seq: 0,
            events: Vec::new(),
        }
    }
}

/// Shared mailbox fabric: one ordered queue per `(src, dst)` partition
/// pair. Senders push during their window; receivers drain at the next
/// window barrier. The barrier separates the phases, so the mutexes are
/// uncontended in steady state.
struct Mail<E> {
    parts: usize,
    /// Current window end (ns). Every send must be timestamped at or after
    /// it — the conservative-safety invariant, checked on every push.
    window_end: AtomicU64,
    /// Total cross-partition events exchanged (a determinism fingerprint).
    sent: AtomicU64,
    queues: Vec<Mutex<PairQueue<E>>>,
}

impl<E> Mail<E> {
    fn new(parts: usize) -> Mail<E> {
        Mail {
            parts,
            window_end: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            queues: (0..parts * parts)
                .map(|_| Mutex::new(PairQueue::default()))
                .collect(),
        }
    }
}

/// Handle for pushing cross-partition events, given to partition builders
/// (cheaply cloneable; usable from any task of the owning partition).
pub struct XSender<E: Send> {
    src: u32,
    mail: Arc<Mail<E>>,
}

impl<E: Send> Clone for XSender<E> {
    fn clone(&self) -> Self {
        XSender {
            src: self.src,
            mail: self.mail.clone(),
        }
    }
}

impl<E: Send> XSender<E> {
    /// Enqueue `payload` for partition `dst` at virtual time `deliver_at`.
    ///
    /// # Panics
    ///
    /// Panics if `deliver_at` lies inside the current window — i.e. the
    /// caller violated the lookahead contract: every cross-partition event
    /// must be timestamped at least one lookahead after the instant it was
    /// generated, otherwise the destination may already have advanced past
    /// it and determinism (and causality) would be lost.
    pub fn send(&self, dst: u32, deliver_at: SimTime, payload: E) {
        assert!((dst as usize) < self.mail.parts, "unknown partition {dst}");
        let window_end = self.mail.window_end.load(Ordering::SeqCst);
        assert!(
            deliver_at.nanos() >= window_end,
            "cross-partition event timestamped {} inside the current window \
             (end {}): lookahead contract violated",
            deliver_at.nanos(),
            window_end,
        );
        let q = &self.mail.queues[self.src as usize * self.mail.parts + dst as usize];
        let mut q = q.lock().expect("mail queue poisoned");
        let seq = q.seq;
        q.seq += 1;
        q.events.push(XEvent {
            deliver_at,
            src: self.src,
            seq,
            payload,
        });
        self.mail.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// The sending partition's index.
    pub fn partition(&self) -> u32 {
        self.src
    }
}

/// Installed delivery handler (see [`PartitionCtx::on_deliver`]).
type DeliverHook<E> = RefCell<Option<Rc<dyn Fn(E)>>>;
/// Installed window wrapper (see [`PartitionCtx::wrap_windows`]).
type WrapHook = RefCell<Option<Rc<dyn Fn(&mut dyn FnMut())>>>;

/// Per-partition hooks installed by the builder.
struct Hooks<E> {
    /// Called (inside a simulation task, at exactly `deliver_at`) for every
    /// event delivered to this partition.
    on_deliver: DeliverHook<E>,
    /// Optional wrapper around each window execution (e.g. install a
    /// per-partition telemetry tracer for the duration of the window).
    wrap: WrapHook,
}

impl<E> Default for Hooks<E> {
    fn default() -> Self {
        Hooks {
            on_deliver: RefCell::new(None),
            wrap: RefCell::new(None),
        }
    }
}

/// The builder-facing view of one partition: its `Sim`, its index, the
/// cross-partition sender, and the hook registration points.
pub struct PartitionCtx<E: Send + 'static> {
    sim: Sim,
    part: u32,
    mail: Arc<Mail<E>>,
    hooks: Rc<Hooks<E>>,
}

impl<E: Send + 'static> PartitionCtx<E> {
    /// This partition's simulation. The builder may spawn tasks onto it;
    /// nothing runs until the engine opens the first window.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// This partition's index.
    pub fn partition(&self) -> u32 {
        self.part
    }

    /// A sender for pushing events to other partitions.
    pub fn sender(&self) -> XSender<E> {
        XSender {
            src: self.part,
            mail: self.mail.clone(),
        }
    }

    /// Install the delivery handler: called at `deliver_at` (in virtual
    /// time, inside a task of this partition) for every incoming event.
    /// Required if this partition ever receives events.
    pub fn on_deliver(&self, f: impl Fn(E) + 'static) {
        *self.hooks.on_deliver.borrow_mut() = Some(Rc::new(f));
    }

    /// Install a wrapper executed around every window this partition runs;
    /// the wrapper must call its argument exactly once. Use this to scope
    /// per-partition thread-local state (e.g. a telemetry tracer install)
    /// to exactly the polls of this partition, keeping recorded traces
    /// identical no matter how partitions are packed onto threads.
    pub fn wrap_windows(&self, f: impl Fn(&mut dyn FnMut()) + 'static) {
        *self.hooks.wrap.borrow_mut() = Some(Rc::new(f));
    }
}

/// A deferred per-partition result extractor, returned by the builder and
/// invoked on the partition's owner thread after the run completes.
pub type Finisher<R> = Box<dyn FnOnce() -> R>;

/// A partition builder: runs on the partition's worker thread (inside the
/// partition's [`Sim::scope`]) before the first window, sets up the
/// partition's tasks and hooks, and returns the finisher.
pub type PartitionBuilder<E, R> = Box<dyn FnOnce(&PartitionCtx<E>) -> Finisher<R> + Send>;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Minimum delay of any cross-partition event — the conservative
    /// synchronization window. Must be positive.
    pub lookahead: Duration,
    /// Worker threads (clamped to the partition count; `1` = the serial
    /// schedule, which every other thread count must reproduce exactly).
    pub threads: usize,
}

/// Outcome of one partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionOutcome<R> {
    /// The partition's executor poll count (a schedule fingerprint).
    pub polls: u64,
    /// The partition's final virtual time (all clocks end on the final
    /// window edge, so this is identical across partitions).
    pub end: SimTime,
    /// The finisher's result.
    pub result: R,
}

/// Outcome of a partitioned run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParOutcome<R> {
    /// Per-partition outcomes, in partition order.
    pub partitions: Vec<PartitionOutcome<R>>,
    /// Number of synchronization windows executed (thread-count
    /// invariant: a function of event times only).
    pub windows: u64,
    /// Total cross-partition events exchanged.
    pub xevents: u64,
}

impl<R> ParOutcome<R> {
    /// The `(polls, end_ns)` pairs of every partition plus the window and
    /// exchange counts — the canonical byte-reproducibility fingerprint.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = Vec::with_capacity(2 * self.partitions.len() + 2);
        for p in &self.partitions {
            fp.push(p.polls);
            fp.push(p.end.nanos());
        }
        fp.push(self.windows);
        fp.push(self.xevents);
        fp
    }
}

/// Coordinator state shared between the main thread and the workers.
struct Coord {
    /// All workers plus the coordinator.
    barrier: Barrier,
    /// Per-partition next-event time (ns; `u64::MAX` = quiescent),
    /// refreshed by workers before every aggregation barrier.
    nexts: Mutex<Vec<u64>>,
    /// The window end chosen by the coordinator (ns).
    window: AtomicU64,
    /// Written ONLY by the coordinator between the report and release
    /// barriers, read by everyone after the release barrier. A worker must
    /// never set it: workers flip it at arbitrary points mid-window, so two
    /// peers in the same barrier generation could disagree — one exiting
    /// early while the other re-enters the next barrier, leaving it one
    /// participant short forever.
    done: AtomicBool,
    /// First worker panic, re-raised on the main thread. The coordinator
    /// converts a recorded panic into `done` at the next report barrier.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Coord {
    fn record_panic(&self, p: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        slot.get_or_insert(p);
    }
}

/// One partition's runtime state on its owner thread.
struct Slot<E: Send + 'static, R> {
    part: usize,
    sim: Sim,
    hooks: Rc<Hooks<E>>,
    finish: Option<Finisher<R>>,
}

/// Run `builders.len()` partitions under conservative time-windowed
/// synchronization and return the per-partition outcomes.
///
/// Partition `i` is pinned to worker thread `i % threads` for the whole
/// run; results are independent of the thread count (see the module docs).
pub fn run_partitioned<E, R>(
    builders: Vec<PartitionBuilder<E, R>>,
    config: ParConfig,
) -> ParOutcome<R>
where
    E: Send + 'static,
    R: Send + 'static,
{
    assert!(
        config.lookahead > Duration::ZERO,
        "partitioned simulation needs a positive lookahead"
    );
    let parts = builders.len();
    if parts == 0 {
        return ParOutcome {
            partitions: Vec::new(),
            windows: 0,
            xevents: 0,
        };
    }
    let threads = config.threads.clamp(1, parts);
    let mail: Arc<Mail<E>> = Arc::new(Mail::new(parts));
    let coord = Arc::new(Coord {
        barrier: Barrier::new(threads + 1),
        nexts: Mutex::new(vec![u64::MAX; parts]),
        window: AtomicU64::new(0),
        done: AtomicBool::new(false),
        panic: Mutex::new(None),
    });

    // Distribute builders round-robin: partition i -> thread i % threads.
    let mut per_thread: Vec<Vec<(usize, PartitionBuilder<E, R>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, b) in builders.into_iter().enumerate() {
        per_thread[i % threads].push((i, b));
    }

    let mut windows = 0u64;
    let mut outcomes: Vec<(usize, PartitionOutcome<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|mine| {
                let mail = mail.clone();
                let coord = coord.clone();
                scope.spawn(move || worker(mine, mail, coord))
            })
            .collect();

        // Coordinator: aggregate next-event times, choose windows.
        loop {
            coord.barrier.wait(); // workers have reported and pushed sends
            if coord.panic.lock().expect("panic slot").is_some() {
                coord.done.store(true, Ordering::SeqCst);
            } else {
                let mut m = {
                    let nexts = coord.nexts.lock().expect("nexts poisoned");
                    nexts.iter().copied().min().unwrap_or(u64::MAX)
                };
                for q in &mail.queues {
                    let q = q.lock().expect("mail queue poisoned");
                    for ev in &q.events {
                        m = m.min(ev.deliver_at.nanos());
                    }
                }
                if m == u64::MAX {
                    coord.done.store(true, Ordering::SeqCst);
                } else {
                    let end = (SimTime::from_nanos(m) + config.lookahead).nanos();
                    assert!(end > m, "lookahead too small for the time scale");
                    mail.window_end.store(end, Ordering::SeqCst);
                    coord.window.store(end, Ordering::SeqCst);
                    windows += 1;
                }
            }
            coord.barrier.wait(); // release workers into the window
            if coord.done.load(Ordering::SeqCst) {
                break;
            }
        }

        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(outs) => outs,
                Err(p) => resume_unwind(p),
            })
            .collect()
    });
    if let Some(p) = coord.panic.lock().expect("panic slot").take() {
        resume_unwind(p);
    }
    outcomes.sort_by_key(|&(i, _)| i);
    ParOutcome {
        partitions: outcomes.into_iter().map(|(_, o)| o).collect(),
        windows,
        xevents: mail.sent.load(Ordering::Relaxed),
    }
}

/// Worker thread: builds its partitions, then alternates report / barrier /
/// window phases with the coordinator until the run is globally quiescent.
fn worker<E, R>(
    mine: Vec<(usize, PartitionBuilder<E, R>)>,
    mail: Arc<Mail<E>>,
    coord: Arc<Coord>,
) -> Vec<(usize, PartitionOutcome<R>)>
where
    E: Send + 'static,
    R: Send + 'static,
{
    // Build phase. A panicking builder poisons the run (recorded, and the
    // worker keeps participating in barriers so nobody deadlocks).
    let mut slots: Vec<Slot<E, R>> = Vec::new();
    for (part, builder) in mine {
        let built = catch_unwind(AssertUnwindSafe(|| {
            let sim = Sim::new();
            let hooks: Rc<Hooks<E>> = Rc::new(Hooks::default());
            let ctx = PartitionCtx {
                sim: sim.clone(),
                part: part as u32,
                mail: mail.clone(),
                hooks: hooks.clone(),
            };
            let finish = ctx.sim.scope(|| builder(&ctx));
            Slot {
                part,
                sim,
                hooks,
                finish: Some(finish),
            }
        }));
        match built {
            Ok(slot) => slots.push(slot),
            Err(p) => {
                coord.record_panic(p);
                break;
            }
        }
    }

    loop {
        {
            let mut nexts = coord.nexts.lock().expect("nexts poisoned");
            for slot in &slots {
                nexts[slot.part] = slot
                    .sim
                    .next_event_time()
                    .map(|t| t.nanos())
                    .unwrap_or(u64::MAX);
            }
        }
        coord.barrier.wait(); // report done; coordinator aggregates
        coord.barrier.wait(); // window published
        if coord.done.load(Ordering::SeqCst) {
            break;
        }
        let end = SimTime::from_nanos(coord.window.load(Ordering::SeqCst));
        let ran = catch_unwind(AssertUnwindSafe(|| {
            for slot in &mut slots {
                inject(slot, &mail, end);
                run_window(slot, end);
            }
        }));
        if let Err(p) = ran {
            coord.record_panic(p);
        }
    }

    slots
        .into_iter()
        .map(|mut slot| {
            let finish = slot.finish.take().expect("finisher present");
            (
                slot.part,
                PartitionOutcome {
                    polls: slot.sim.poll_count(),
                    end: slot.sim.now(),
                    result: finish(),
                },
            )
        })
        .collect()
}

/// Drain every event due before `end` for `slot`'s partition and schedule
/// it at its delivery time, in canonical `(deliver_at, src, seq)` order.
fn inject<E: Send + 'static, R>(slot: &mut Slot<E, R>, mail: &Arc<Mail<E>>, end: SimTime) {
    let mut incoming: Vec<XEvent<E>> = Vec::new();
    for src in 0..mail.parts {
        let q = &mail.queues[src * mail.parts + slot.part];
        let mut q = q.lock().expect("mail queue poisoned");
        let mut i = 0;
        while i < q.events.len() {
            if q.events[i].deliver_at < end {
                incoming.push(q.events.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    if incoming.is_empty() {
        return;
    }
    incoming.sort_by_key(|ev| (ev.deliver_at, ev.src, ev.seq));
    for ev in incoming {
        let hooks = slot.hooks.clone();
        slot.sim.spawn(async move {
            crate::sleep_until(ev.deliver_at).await;
            let handler =
                hooks.on_deliver.borrow().clone().expect(
                    "partition received a cross-partition event but has no on_deliver handler",
                );
            handler(ev.payload);
        });
    }
}

/// Run one partition's window `[.., end)`, through its wrapper if any.
fn run_window<E: Send + 'static, R>(slot: &mut Slot<E, R>, end: SimTime) {
    let wrap = slot.hooks.wrap.borrow().clone();
    match wrap {
        Some(w) => {
            let sim = slot.sim.clone();
            let mut ran = false;
            w(&mut || {
                ran = true;
                sim.run_before(end);
            });
            assert!(ran, "wrap_windows wrapper never ran its window");
        }
        None => slot.sim.run_before(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// Two partitions bounce a counter back and forth `HOPS` times with a
    /// fixed per-hop delay; the engine must terminate, count every event,
    /// and produce identical fingerprints at 1 and 2 threads.
    fn pingpong(threads: usize) -> (ParOutcome<u64>, Vec<u64>) {
        const HOPS: u64 = 64;
        let delay = Duration::from_micros(3);
        let builders: Vec<PartitionBuilder<u64, u64>> = (0..2u32)
            .map(|part| {
                let b: PartitionBuilder<u64, u64> = Box::new(move |ctx| {
                    let sent: Rc<Cell<u64>> = Rc::new(Cell::new(0));
                    let sender = ctx.sender();
                    let peer = 1 - part;
                    let relay = {
                        let sent = sent.clone();
                        move |v: u64| {
                            if v < HOPS {
                                sent.set(sent.get() + 1);
                                sender.send(peer, crate::now() + delay, v + 1);
                            }
                        }
                    };
                    ctx.on_deliver(relay.clone());
                    if part == 0 {
                        let sender = ctx.sender();
                        let sent = sent.clone();
                        ctx.sim().spawn(async move {
                            crate::sleep(delay).await;
                            sent.set(sent.get() + 1);
                            sender.send(1, crate::now() + delay, 1);
                        });
                    }
                    Box::new(move || sent.get())
                });
                b
            })
            .collect();
        let out = run_partitioned(
            builders,
            ParConfig {
                lookahead: delay,
                threads,
            },
        );
        let fp = out.fingerprint();
        (out, fp)
    }

    #[test]
    fn pingpong_terminates_and_counts() {
        let (out, _) = pingpong(2);
        assert_eq!(out.partitions.len(), 2);
        assert_eq!(out.xevents, 64);
        let total_sent: u64 = out.partitions.iter().map(|p| p.result).sum();
        assert_eq!(total_sent, 64);
        assert!(out.windows >= 64, "each hop needs at least one window");
    }

    #[test]
    fn fingerprint_identical_across_thread_counts() {
        let (_, fp1) = pingpong(1);
        let (_, fp2) = pingpong(2);
        let (_, fp4) = pingpong(4); // clamps to 2 partitions
        assert_eq!(fp1, fp2);
        assert_eq!(fp1, fp4);
    }

    #[test]
    fn no_cross_events_runs_each_partition_independently() {
        let builders: Vec<PartitionBuilder<(), u64>> = (0..3u64)
            .map(|i| {
                let b: PartitionBuilder<(), u64> = Box::new(move |ctx| {
                    let t: Rc<Cell<u64>> = Rc::new(Cell::new(0));
                    let t2 = t.clone();
                    ctx.sim().spawn(async move {
                        crate::sleep(Duration::from_micros(1 + i)).await;
                        t2.set(crate::now().nanos());
                    });
                    Box::new(move || t.get())
                });
                b
            })
            .collect();
        let out = run_partitioned(
            builders,
            ParConfig {
                lookahead: Duration::from_micros(10),
                threads: 3,
            },
        );
        assert_eq!(out.xevents, 0);
        for (i, p) in out.partitions.iter().enumerate() {
            assert_eq!(p.result, 1_000 + i as u64 * 1_000);
        }
    }

    #[test]
    fn empty_run_is_empty() {
        let out = run_partitioned::<(), ()>(
            Vec::new(),
            ParConfig {
                lookahead: Duration::from_micros(1),
                threads: 4,
            },
        );
        assert_eq!(out.windows, 0);
        assert!(out.partitions.is_empty());
    }

    #[test]
    #[should_panic(expected = "lookahead contract violated")]
    fn send_inside_window_panics() {
        let builders: Vec<PartitionBuilder<(), ()>> = (0..2)
            .map(|part| {
                let b: PartitionBuilder<(), ()> = Box::new(move |ctx| {
                    ctx.on_deliver(|_| {});
                    if part == 0 {
                        let sender = ctx.sender();
                        ctx.sim().spawn(async move {
                            crate::sleep(Duration::from_micros(5)).await;
                            // Timestamped "now": inside the current window.
                            sender.send(1, crate::now(), ());
                        });
                    }
                    Box::new(|| ())
                });
                b
            })
            .collect();
        run_partitioned(
            builders,
            ParConfig {
                lookahead: Duration::from_micros(2),
                threads: 1,
            },
        );
    }

    #[test]
    fn builder_panic_propagates() {
        let builders: Vec<PartitionBuilder<(), ()>> = vec![
            Box::new(|_| panic!("builder boom")),
            Box::new(|ctx| {
                ctx.on_deliver(|_| {});
                Box::new(|| ())
            }),
        ];
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_partitioned(
                builders,
                ParConfig {
                    lookahead: Duration::from_micros(1),
                    threads: 2,
                },
            )
        }));
        assert!(r.is_err());
    }
}
