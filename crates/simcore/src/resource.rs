//! Cost-model resources: rate-limited servers and CPU pools.
//!
//! A [`RateResource`] models a single FIFO server with a fixed per-operation
//! overhead and a byte rate — the canonical model for a NIC transmit path or
//! a memory controller. Operations reserve the next free slot on the resource
//! and sleep until their completion instant, so concurrent users are
//! automatically serialized and the resource's utilization emerges naturally.
//!
//! A [`CpuPool`] models `n` identical cores with a FIFO run queue, used for
//! per-request application processing time.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use crate::executor::{now, sleep_until};
use crate::stats::Counter;
use crate::sync::Semaphore;
use crate::time::{transfer_time, SimTime};

/// A FIFO rate-limited resource (link, memory channel, disk...).
#[derive(Clone)]
pub struct RateResource {
    inner: Rc<RateInner>,
}

struct RateInner {
    name: String,
    bytes_per_sec: Cell<f64>,
    per_op_overhead: Cell<Duration>,
    next_free: Cell<SimTime>,
    busy: Cell<Duration>,
    ops: Counter,
    bytes: Counter,
}

impl RateResource {
    /// Create a resource serving `bytes_per_sec` with `per_op_overhead`
    /// charged on every operation regardless of size.
    pub fn new(name: impl Into<String>, bytes_per_sec: f64, per_op_overhead: Duration) -> Self {
        RateResource {
            inner: Rc::new(RateInner {
                name: name.into(),
                bytes_per_sec: Cell::new(bytes_per_sec),
                per_op_overhead: Cell::new(per_op_overhead),
                next_free: Cell::new(SimTime::ZERO),
                busy: Cell::new(Duration::ZERO),
                ops: Counter::new(),
                bytes: Counter::new(),
            }),
        }
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Occupy the resource for `bytes` and wait until the operation
    /// completes. Returns the completion instant.
    pub async fn access(&self, bytes: u64) -> SimTime {
        let finish = self.reserve(bytes);
        sleep_until(finish).await;
        finish
    }

    /// Reserve service for `bytes` starting no earlier than now, without
    /// waiting. Returns the completion instant. Useful when the caller wants
    /// to overlap the wait with other work.
    pub fn reserve(&self, bytes: u64) -> SimTime {
        let t = now();
        let start = self.inner.next_free.get().max(t);
        let service =
            self.inner.per_op_overhead.get() + transfer_time(bytes, self.inner.bytes_per_sec.get());
        let finish = start + service;
        self.inner.next_free.set(finish);
        self.inner.busy.set(self.inner.busy.get() + service);
        self.inner.ops.add(1);
        self.inner.bytes.add(bytes);
        finish
    }

    /// Change the service rate (e.g. Fig. 12's memory-latency sweep).
    pub fn set_rate(&self, bytes_per_sec: f64) {
        self.inner.bytes_per_sec.set(bytes_per_sec);
    }

    /// Configured service rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.inner.bytes_per_sec.get()
    }

    /// Configured fixed per-operation overhead (used e.g. to derive a
    /// conservative lookahead bound for partitioned simulation).
    pub fn per_op_overhead(&self) -> Duration {
        self.inner.per_op_overhead.get()
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Duration {
        self.inner.busy.get()
    }

    /// Total operations served.
    pub fn ops(&self) -> u64 {
        self.inner.ops.get()
    }

    /// Total bytes served.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Utilization over `elapsed` (clamped to 1.0).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy_time().as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
    }

    /// Reset counters (between measurement phases).
    pub fn reset_stats(&self) {
        self.inner.busy.set(Duration::ZERO);
        self.inner.ops.reset();
        self.inner.bytes.reset();
    }
}

/// A pool of identical CPU cores with FIFO admission.
#[derive(Clone)]
pub struct CpuPool {
    cores: Semaphore,
    n_cores: u64,
    busy: Rc<Cell<Duration>>,
    ops: Counter,
}

impl CpuPool {
    /// Create a pool of `n_cores` cores.
    pub fn new(n_cores: u64) -> CpuPool {
        assert!(n_cores > 0, "CpuPool needs at least one core");
        CpuPool {
            cores: Semaphore::new(n_cores),
            n_cores,
            busy: Rc::new(Cell::new(Duration::ZERO)),
            ops: Counter::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> u64 {
        self.n_cores
    }

    /// Execute `work` of CPU time on one core (queueing if all are busy).
    pub async fn execute(&self, work: Duration) {
        let _permit = self.cores.acquire_one().await;
        crate::executor::sleep(work).await;
        self.busy.set(self.busy.get() + work);
        self.ops.add(1);
    }

    /// Total CPU busy time across all cores.
    pub fn busy_time(&self) -> Duration {
        self.busy.get()
    }

    /// Completed executions.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Average core utilization over `elapsed`.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy_time().as_secs_f64() / (elapsed.as_secs_f64() * self.n_cores as f64)).min(1.0)
    }

    /// Reset counters (between measurement phases).
    pub fn reset_stats(&self) {
        self.busy.set(Duration::ZERO);
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, Sim};
    use std::cell::RefCell;

    #[test]
    fn rate_resource_serializes_concurrent_users() {
        let sim = Sim::new();
        // 1 GB/s, zero overhead: 1000 bytes = 1us.
        let res = RateResource::new("link", 1e9, Duration::ZERO);
        let finishes: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let res = res.clone();
            let finishes = finishes.clone();
            sim.spawn(async move {
                res.access(1000).await;
                finishes.borrow_mut().push(now().nanos());
            });
        }
        sim.run();
        assert_eq!(&*finishes.borrow(), &[1_000, 2_000, 3_000]);
        assert_eq!(res.ops(), 3);
        assert_eq!(res.bytes(), 3000);
        assert_eq!(res.busy_time(), Duration::from_micros(3));
    }

    #[test]
    fn rate_resource_per_op_overhead() {
        let sim = Sim::new();
        let res = RateResource::new("nic", 1e9, Duration::from_nanos(250));
        let t = sim.block_on(async move {
            res.access(1000).await;
            now().nanos()
        });
        assert_eq!(t, 1250);
    }

    #[test]
    fn rate_resource_idle_gap_not_counted_busy() {
        let sim = Sim::new();
        let res = RateResource::new("link", 1e9, Duration::ZERO);
        let res2 = res.clone();
        sim.block_on(async move {
            res2.access(500).await;
            crate::executor::sleep(Duration::from_micros(10)).await;
            res2.access(500).await;
        });
        assert_eq!(res.busy_time(), Duration::from_micros(1));
        assert!(res.utilization(Duration::from_micros(11)) < 0.1);
    }

    #[test]
    fn reserve_without_wait_advances_queue() {
        let sim = Sim::new();
        let res = RateResource::new("link", 1e9, Duration::ZERO);
        sim.block_on(async move {
            let f1 = res.reserve(1000);
            let f2 = res.reserve(1000);
            assert_eq!(f1.nanos(), 1_000);
            assert_eq!(f2.nanos(), 2_000);
        });
    }

    #[test]
    fn set_rate_affects_future_ops() {
        let sim = Sim::new();
        let res = RateResource::new("mem", 1e9, Duration::ZERO);
        sim.block_on(async move {
            res.access(1000).await;
            assert_eq!(now().nanos(), 1_000);
            res.set_rate(2e9);
            res.access(1000).await;
            assert_eq!(now().nanos(), 1_500);
        });
    }

    #[test]
    fn cpu_pool_parallelism() {
        let sim = Sim::new();
        let pool = CpuPool::new(2);
        for _ in 0..4 {
            let pool = pool.clone();
            sim.spawn(async move {
                pool.execute(Duration::from_micros(1)).await;
            });
        }
        let end = sim.run();
        // 4 tasks, 2 cores, 1us each -> 2us makespan.
        assert_eq!(end.nanos(), 2_000);
        assert_eq!(pool.ops(), 4);
        assert_eq!(pool.busy_time(), Duration::from_micros(4));
        assert!((pool.utilization(Duration::from_micros(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn cpu_pool_zero_cores_panics() {
        let _ = CpuPool::new(0);
    }
}
