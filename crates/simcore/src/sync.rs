//! Virtual-time-aware synchronization primitives.
//!
//! Everything here is single-threaded (the executor never runs tasks in
//! parallel) but tasks interleave at `.await` points, so these primitives
//! provide the same *logical* coordination as their `tokio` counterparts:
//! [`oneshot`] for request/response completion, [`mpsc`] for service mailboxes
//! and simulated wires, [`Semaphore`] for modeling limited resources such as
//! CPU cores or flow-control credits, and [`Notify`] for edge-triggered
//! signaling.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

/// Single-producer, single-consumer, single-value channel.
pub mod oneshot {
    use super::*;

    struct Slot<T> {
        value: Option<T>,
        waker: Option<Waker>,
        sender_dropped: bool,
        receiver_dropped: bool,
    }

    /// Sending half; consumes itself on send.
    pub struct Sender<T> {
        slot: Rc<RefCell<Slot<T>>>,
    }

    /// Receiving half; a future resolving to `Result<T, Canceled>`.
    pub struct Receiver<T> {
        slot: Rc<RefCell<Slot<T>>>,
    }

    /// Error returned when the sender was dropped without sending.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct Canceled;

    impl std::fmt::Display for Canceled {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot canceled")
        }
    }

    impl std::error::Error for Canceled {}

    /// Create a new oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let slot = Rc::new(RefCell::new(Slot {
            value: None,
            waker: None,
            sender_dropped: false,
            receiver_dropped: false,
        }));
        (Sender { slot: slot.clone() }, Receiver { slot })
    }

    impl<T> Sender<T> {
        /// Send the value, waking the receiver. Returns `Err(value)` if the
        /// receiver has been dropped.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut s = self.slot.borrow_mut();
            if s.receiver_dropped {
                return Err(value);
            }
            s.value = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.slot.borrow_mut();
            s.sender_dropped = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.slot.borrow_mut().receiver_dropped = true;
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, Canceled>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.slot.borrow_mut();
            if let Some(v) = s.value.take() {
                return Poll::Ready(Ok(v));
            }
            if s.sender_dropped {
                return Poll::Ready(Err(Canceled));
            }
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// Multi-producer, single-consumer FIFO channel (unbounded).
///
/// Bounded behaviour, where needed for backpressure, is modeled explicitly
/// with a [`Semaphore`] of credits by the caller — this keeps the channel
/// itself simple and the flow-control policy visible at the call site.
pub mod mpsc {
    use super::*;

    struct Chan<T> {
        queue: VecDeque<T>,
        recv_waker: Option<Waker>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        chan: Rc<RefCell<Chan<T>>>,
    }

    /// Receiving half (unique).
    pub struct Receiver<T> {
        chan: Rc<RefCell<Chan<T>>>,
    }

    /// Error: the receiver was dropped.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "mpsc receiver dropped")
        }
    }

    /// Create a new unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Rc::new(RefCell::new(Chan {
            queue: VecDeque::new(),
            recv_waker: None,
            senders: 1,
            receiver_alive: true,
        }));
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.borrow_mut().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking the receiver if it is waiting.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut c = self.chan.borrow_mut();
            if !c.receiver_alive {
                return Err(SendError(value));
            }
            c.queue.push_back(value);
            if let Some(w) = c.recv_waker.take() {
                w.wake();
            }
            Ok(())
        }

        /// Number of queued messages (for tests / queue-depth metrics).
        pub fn queue_len(&self) -> usize {
            self.chan.borrow().queue.len()
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut c = self.chan.borrow_mut();
            c.senders -= 1;
            if c.senders == 0 {
                if let Some(w) = c.recv_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.borrow_mut().receiver_alive = false;
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value; resolves to `None` once all senders are
        /// dropped and the queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { rx: self }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Option<T> {
            self.chan.borrow_mut().queue.pop_front()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan.borrow().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Future returned by [`Receiver::recv`].
    pub struct Recv<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut c = self.rx.chan.borrow_mut();
            if let Some(v) = c.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if c.senders == 0 {
                return Poll::Ready(None);
            }
            c.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemWaiter {
    n: u64,
    waker: Option<Waker>,
    granted: bool,
    cancelled: bool,
}

struct SemState {
    permits: u64,
    waiters: VecDeque<Rc<RefCell<SemWaiter>>>,
}

impl SemState {
    /// Grant permits to queued waiters in FIFO order.
    fn grant(&mut self) {
        while let Some(front) = self.waiters.front() {
            let mut w = front.borrow_mut();
            if w.cancelled {
                drop(w);
                self.waiters.pop_front();
                continue;
            }
            if self.permits >= w.n {
                self.permits -= w.n;
                w.granted = true;
                if let Some(waker) = w.waker.take() {
                    waker.wake();
                }
                drop(w);
                self.waiters.pop_front();
            } else {
                break;
            }
        }
    }
}

/// A counting semaphore with FIFO fairness.
///
/// Used throughout the simulator to model limited resources: CPU cores on a
/// server, flow-control credits on an RPC session, outstanding-request caps
/// in workload generators.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: u64) -> Semaphore {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.state.borrow().permits
    }

    /// Acquire `n` permits, waiting in FIFO order. The returned guard gives
    /// the permits back when dropped.
    pub fn acquire(&self, n: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
            waiter: None,
        }
    }

    /// Acquire one permit.
    pub fn acquire_one(&self) -> Acquire {
        self.acquire(1)
    }

    /// Add permits (e.g. returning credits), waking eligible waiters.
    pub fn release(&self, n: u64) {
        let mut st = self.state.borrow_mut();
        st.permits += n;
        st.grant();
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self, n: u64) -> Option<Permit> {
        let mut st = self.state.borrow_mut();
        if st.waiters.is_empty() && st.permits >= n {
            st.permits -= n;
            Some(Permit {
                sem: self.clone(),
                n,
            })
        } else {
            None
        }
    }
}

/// RAII guard for acquired permits.
pub struct Permit {
    sem: Semaphore,
    n: u64,
}

impl Permit {
    /// Number of permits held.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Release without waiting for drop (explicit form).
    pub fn release(self) {}

    /// Forget the permits (they are permanently consumed).
    pub fn forget(mut self) {
        self.n = 0;
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.n > 0 {
            self.sem.release(self.n);
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    n: u64,
    waiter: Option<Rc<RefCell<SemWaiter>>>,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let n = self.n;
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.granted {
                drop(wb);
                self.waiter = None;
                return Poll::Ready(Permit {
                    sem: self.sem.clone(),
                    n,
                });
            }
            wb.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut st = self.sem.state.borrow_mut();
        if st.waiters.is_empty() && st.permits >= n {
            st.permits -= n;
            return Poll::Ready(Permit {
                sem: self.sem.clone(),
                n,
            });
        }
        let waiter = Rc::new(RefCell::new(SemWaiter {
            n,
            waker: Some(cx.waker().clone()),
            granted: false,
            cancelled: false,
        }));
        st.waiters.push_back(waiter.clone());
        drop(st);
        self.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.granted {
                // Granted but never observed: return the permits.
                drop(wb);
                self.sem.release(self.n);
            } else {
                wb.cancelled = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

struct NotifyState {
    permits: u64,
    waiters: VecDeque<Waker>,
}

/// Edge-triggered notification, in the style of `tokio::sync::Notify`.
///
/// `notify_one` wakes one waiter, or stores one permit if no one is waiting
/// (so a waiter arriving later does not miss the signal).
#[derive(Clone)]
pub struct Notify {
    state: Rc<RefCell<NotifyState>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Create a new `Notify`.
    pub fn new() -> Notify {
        Notify {
            state: Rc::new(RefCell::new(NotifyState {
                permits: 0,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Wake one waiter (or bank a single permit).
    pub fn notify_one(&self) {
        let mut st = self.state.borrow_mut();
        if let Some(w) = st.waiters.pop_front() {
            w.wake();
        } else {
            st.permits = st.permits.saturating_add(1);
        }
    }

    /// Wake all current waiters (does not bank permits).
    pub fn notify_all(&self) {
        let mut st = self.state.borrow_mut();
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }

    /// Wait for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            consumed_registration: false,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    consumed_registration: bool,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.notify.state.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            return Poll::Ready(());
        }
        if self.consumed_registration {
            // We were woken by notify_one/notify_all.
            return Poll::Ready(());
        }
        st.waiters.push_back(cx.waker().clone());
        drop(st);
        self.consumed_registration = true;
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, spawn, Sim};
    use std::time::Duration;

    #[test]
    fn oneshot_roundtrip() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, rx) = oneshot::channel();
            spawn(async move {
                sleep(Duration::from_nanos(10)).await;
                tx.send(99).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 99);
    }

    #[test]
    fn oneshot_cancel_on_sender_drop() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            let (tx, rx) = oneshot::channel::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(r, Err(oneshot::Canceled));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_fails() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(5));
    }

    #[test]
    fn mpsc_fifo_order() {
        let sim = Sim::new();
        let out = sim.block_on(async {
            let (tx, mut rx) = mpsc::channel();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mpsc_wakes_blocked_receiver() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, mut rx) = mpsc::channel();
            spawn(async move {
                sleep(Duration::from_micros(1)).await;
                tx.send("hello").unwrap();
            });
            rx.recv().await
        });
        assert_eq!(v, Some("hello"));
    }

    #[test]
    fn mpsc_send_after_receiver_drop_errors() {
        let (tx, rx) = mpsc::channel();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn mpsc_none_after_all_senders_drop() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, mut rx) = mpsc::channel::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            rx.recv().await
        });
        assert_eq!(v, None);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let peak = Rc::new(RefCell::new((0u32, 0u32))); // (current, max)
        let sem = Semaphore::new(3);
        for _ in 0..10 {
            let sem = sem.clone();
            let peak = peak.clone();
            sim.spawn(async move {
                let _p = sem.acquire_one().await;
                {
                    let mut pk = peak.borrow_mut();
                    pk.0 += 1;
                    pk.1 = pk.1.max(pk.0);
                }
                sleep(Duration::from_micros(1)).await;
                peak.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        assert_eq!(peak.borrow().1, 3);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn semaphore_fifo_fairness() {
        let sim = Sim::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let sem = Semaphore::new(1);
        for i in 0..5u32 {
            let sem = sem.clone();
            let order = order.clone();
            sim.spawn(async move {
                // Stagger arrival to make the expected order unambiguous.
                sleep(Duration::from_nanos(i as u64)).await;
                let _p = sem.acquire_one().await;
                sleep(Duration::from_micros(1)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn semaphore_multi_permit_acquire() {
        let sim = Sim::new();
        let sem = Semaphore::new(4);
        let sem2 = sem.clone();
        let done = sim.spawn(async move {
            let p = sem2.acquire(3).await;
            assert_eq!(sem2.available(), 1);
            drop(p);
            let _q = sem2.acquire(4).await;
            assert_eq!(sem2.available(), 0);
        });
        sim.run();
        assert!(done.is_finished());
        assert_eq!(sem.available(), 4);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(2);
        let p = sem.try_acquire(2).unwrap();
        assert!(sem.try_acquire(1).is_none());
        drop(p);
        assert!(sem.try_acquire(1).is_some());
    }

    #[test]
    fn semaphore_permit_forget_consumes() {
        let sem = Semaphore::new(2);
        sem.try_acquire(1).unwrap().forget();
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn notify_banks_one_permit() {
        let sim = Sim::new();
        let done = sim.block_on(async {
            let n = Notify::new();
            n.notify_one(); // no waiter yet: banked
            n.notified().await; // consumes the banked permit
            true
        });
        assert!(done);
    }

    #[test]
    fn notify_wakes_waiter() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let n = Notify::new();
            let n2 = n.clone();
            let h = spawn(async move {
                n2.notified().await;
                7
            });
            sleep(Duration::from_nanos(5)).await;
            n.notify_one();
            h.await
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let sim = Sim::new();
        let count = Rc::new(RefCell::new(0));
        let n = Notify::new();
        for _ in 0..4 {
            let n = n.clone();
            let count = count.clone();
            sim.spawn(async move {
                n.notified().await;
                *count.borrow_mut() += 1;
            });
        }
        let n2 = n.clone();
        sim.spawn(async move {
            sleep(Duration::from_nanos(1)).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(*count.borrow(), 4);
    }
}
