//! A deterministic, single-threaded, virtual-time async executor.
//!
//! [`Sim`] owns a virtual clock and a task queue. Tasks are ordinary Rust
//! futures (not required to be `Send`) that suspend on virtual-time timers
//! ([`sleep`]) and on the synchronization primitives in [`crate::sync`].
//! Time only advances when every runnable task is blocked, at which point the
//! clock jumps to the earliest pending timer — the classic discrete-event
//! simulation loop.
//!
//! Determinism: runnable tasks execute in FIFO wake order, timers fire in
//! `(deadline, registration-sequence)` order, and there is no real-time or
//! OS-thread nondeterminism anywhere. Two runs of the same simulation produce
//! bit-identical results.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

use crate::time::SimTime;

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Task identifier, unique within one [`Sim`].
///
/// Encodes a slot index plus a generation: slots are recycled after a task
/// completes, but the generation is bumped on every free, so identifiers held
/// by stale wakers or ready-queue entries can never reach a *different* task
/// that happens to reuse the slot. (The generation wraps at `u32::MAX`; a
/// collision would need the same slot to be recycled 2^32 times while a stale
/// waker for its first tenant is still live, which no simulation here
/// approaches.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId {
    idx: u32,
    gen: u32,
}

/// A pending timer. Ordered by `(deadline, registration sequence)`; carries
/// the registering task's waker so firing is a plain `wake()` with no task
/// lookup.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for TimerEntry {}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Task {
    /// `None` while the future is out being polled.
    future: Option<LocalFuture>,
    /// Whether the task is already in the ready queue (dedup).
    queued: bool,
    /// The task's waker, created once at spawn. Handing it to a poll is a
    /// refcount bump; the seed executor allocated a fresh `Rc` per poll.
    waker: Waker,
}

/// One slab slot: a generation counter plus the task occupying it (if any).
struct Slot {
    gen: u32,
    task: Option<Task>,
}

struct State {
    now: SimTime,
    seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    ready: VecDeque<TaskId>,
    /// Task slab indexed by `TaskId::idx`.
    slots: Vec<Slot>,
    /// Indices of vacant slots, reused LIFO.
    free: Vec<u32>,
    /// Number of occupied slots (`live_tasks`).
    live: usize,
    /// Scratch buffer for draining same-instant timer batches; kept here so
    /// its capacity is reused across batches instead of reallocated.
    fired_scratch: Vec<Waker>,
    running: bool,
    polls: u64,
}

pub(crate) struct Inner {
    state: RefCell<State>,
    /// The task whose future is currently being polled (if any). Kept
    /// outside `state` so it stays readable while the poll holds the
    /// future out of the slab.
    current: Cell<Option<TaskId>>,
}

impl Inner {
    fn schedule(&self, id: TaskId) {
        let mut st = self.state.borrow_mut();
        let Some(slot) = st.slots.get_mut(id.idx as usize) else {
            return;
        };
        if slot.gen != id.gen {
            return; // Stale wake: the slot has been recycled.
        }
        if let Some(task) = slot.task.as_mut() {
            if !task.queued {
                task.queued = true;
                st.ready.push_back(id);
            }
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    pub(crate) fn add_timer(&self, at: SimTime, waker: Waker) {
        let mut st = self.state.borrow_mut();
        let seq = st.seq;
        st.seq += 1;
        st.timers.push(Reverse(TimerEntry { at, seq, waker }));
    }

    fn spawn_boxed(self: &Rc<Self>, future: LocalFuture) -> TaskId {
        let mut st = self.state.borrow_mut();
        let idx = match st.free.pop() {
            Some(idx) => idx,
            None => {
                assert!(st.slots.len() < u32::MAX as usize, "task slab exhausted");
                st.slots.push(Slot { gen: 0, task: None });
                (st.slots.len() - 1) as u32
            }
        };
        let id = TaskId {
            idx,
            gen: st.slots[idx as usize].gen,
        };
        let waker = make_waker(self, id);
        st.slots[idx as usize].task = Some(Task {
            future: Some(future),
            queued: true,
            waker,
        });
        st.live += 1;
        st.ready.push_back(id);
        id
    }
}

// ---------------------------------------------------------------------------
// Waker plumbing.
//
// The executor is strictly single-threaded, so the waker is backed by an `Rc`
// rather than an `Arc`. This is sound for this crate because no future ever
// moves a `Waker` across threads: every primitive in `simcore` (and every
// crate built on it) is `!Send` by construction.
// ---------------------------------------------------------------------------

struct WakerData {
    inner: Weak<Inner>,
    task: TaskId,
}

impl WakerData {
    fn wake(&self) {
        if let Some(inner) = self.inner.upgrade() {
            inner.schedule(self.task);
        }
    }
}

const VTABLE: RawWakerVTable = RawWakerVTable::new(clone_raw, wake_raw, wake_by_ref_raw, drop_raw);

unsafe fn clone_raw(data: *const ()) -> RawWaker {
    Rc::increment_strong_count(data as *const WakerData);
    RawWaker::new(data, &VTABLE)
}

unsafe fn wake_raw(data: *const ()) {
    let rc = Rc::from_raw(data as *const WakerData);
    rc.wake();
}

unsafe fn wake_by_ref_raw(data: *const ()) {
    let d = &*(data as *const WakerData);
    d.wake();
}

unsafe fn drop_raw(data: *const ()) {
    drop(Rc::from_raw(data as *const WakerData));
}

fn make_waker(inner: &Rc<Inner>, task: TaskId) -> Waker {
    let data = Rc::new(WakerData {
        inner: Rc::downgrade(inner),
        task,
    });
    let raw = RawWaker::new(Rc::into_raw(data) as *const (), &VTABLE);
    // SAFETY: the vtable functions uphold the RawWaker contract for an
    // Rc-backed waker that is never sent across threads (see module note).
    unsafe { Waker::from_raw(raw) }
}

// ---------------------------------------------------------------------------
// Current-simulation thread local.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Rc<Inner>>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_inner() -> Rc<Inner> {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .cloned()
            .expect("simcore: not inside a Sim run loop (no current simulation)")
    })
}

struct EnterGuard;

impl EnterGuard {
    fn new(inner: Rc<Inner>) -> EnterGuard {
        CURRENT.with(|c| c.borrow_mut().push(inner));
        EnterGuard
    }
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

// ---------------------------------------------------------------------------
// Public executor API.
// ---------------------------------------------------------------------------

/// The simulation executor: a virtual clock plus a cooperative task scheduler.
///
/// Cloning a `Sim` is cheap and yields another handle onto the same
/// simulation.
///
/// ```
/// use simcore::{Sim, sleep, now};
/// use std::time::Duration;
///
/// let sim = Sim::new();
/// let out = sim.block_on(async {
///     sleep(Duration::from_micros(3)).await;
///     now().nanos()
/// });
/// assert_eq!(out, 3_000);
/// ```
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a new simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Sim {
        Sim {
            inner: Rc::new(Inner {
                state: RefCell::new(State {
                    now: SimTime::ZERO,
                    seq: 0,
                    timers: BinaryHeap::new(),
                    ready: VecDeque::new(),
                    slots: Vec::new(),
                    free: Vec::new(),
                    live: 0,
                    fired_scratch: Vec::new(),
                    running: false,
                    polls: 0,
                }),
                current: Cell::new(None),
            }),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// Total number of future polls performed (a determinism fingerprint).
    pub fn poll_count(&self) -> u64 {
        self.inner.state.borrow().polls
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.state.borrow().live
    }

    /// Spawn a task onto the simulation, returning a handle to its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let slot: Rc<RefCell<JoinState<F::Output>>> = Rc::new(RefCell::new(JoinState::default()));
        let slot2 = slot.clone();
        self.inner.spawn_boxed(Box::pin(async move {
            let value = future.await;
            let mut s = slot2.borrow_mut();
            s.value = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }));
        JoinHandle { slot }
    }

    /// Run the simulation until no task is runnable and no timer is pending.
    ///
    /// Returns the final virtual time. Tasks that are permanently blocked
    /// (e.g. service loops waiting on channels) simply remain blocked; use
    /// [`Sim::live_tasks`] to inspect them.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX);
        self.now()
    }

    /// Run the simulation, processing every event up to and including
    /// `limit`, then set the clock to `limit` (if it got that far).
    ///
    /// Boundary semantics (pinned by `simcore/tests/run_boundary.rs`):
    /// timers scheduled *exactly at* `limit` fire within this call, the
    /// clock always lands on `limit` afterwards (even if no event reached
    /// it), and re-entering the run loop from inside a task panics.
    pub fn run_until(&self, limit: SimTime) {
        self.run_bounded(limit, true);
    }

    /// Run the simulation, processing every event *strictly before*
    /// `limit`, then set the clock to `limit`. Timers scheduled exactly at
    /// `limit` are left pending and fire first in the next run call.
    ///
    /// This is the window primitive of the partitioned engine
    /// ([`crate::par`]): a conservative time window `[start, limit)` must
    /// exclude its right edge so that events injected *at* `limit` by the
    /// cross-partition exchange still see the canonical injection order.
    pub fn run_before(&self, limit: SimTime) {
        self.run_bounded(limit, false);
    }

    fn run_bounded(&self, limit: SimTime, inclusive: bool) {
        let _guard = self.enter();
        loop {
            // Drain all currently-runnable tasks at the current instant.
            while self.step_one() {}

            // Advance to the next timer, if within the limit.
            let next_at = {
                let st = self.inner.state.borrow();
                st.timers.peek().map(|Reverse(e)| e.at)
            };
            match next_at {
                Some(at) if (inclusive && at <= limit) || (!inclusive && at < limit) => {
                    let mut st = self.inner.state.borrow_mut();
                    st.now = st.now.max(at);
                    // Fire every timer scheduled for exactly `at`, reusing the
                    // scratch buffer's capacity across batches. The buffer is
                    // moved out so `schedule` (via wake) can re-borrow state.
                    let mut fired = std::mem::take(&mut st.fired_scratch);
                    while let Some(Reverse(e)) = st.timers.peek() {
                        if e.at > at {
                            break;
                        }
                        let Reverse(e) = st.timers.pop().expect("peeked");
                        fired.push(e.waker);
                    }
                    drop(st);
                    for w in fired.drain(..) {
                        w.wake();
                    }
                    self.inner.state.borrow_mut().fired_scratch = fired;
                }
                _ => break,
            }
        }
        if limit != SimTime::MAX {
            let mut st = self.inner.state.borrow_mut();
            st.now = st.now.max(limit);
        }
    }

    /// Run for `d` of virtual time past the current instant.
    pub fn run_for(&self, d: Duration) {
        let limit = self.now() + d;
        self.run_until(limit);
    }

    /// The virtual time of the earliest pending event: the current instant
    /// if any task is runnable, else the earliest pending timer, else
    /// `None` (the simulation is quiescent — permanently blocked service
    /// tasks may still be [`Sim::live_tasks`]).
    ///
    /// Used by the partitioned engine ([`crate::par`]) to compute the next
    /// conservative window; stale ready-queue entries for completed tasks
    /// are conservatively reported as runnable (the subsequent run simply
    /// skips them).
    pub fn next_event_time(&self) -> Option<SimTime> {
        let st = self.inner.state.borrow();
        if !st.ready.is_empty() {
            return Some(st.now);
        }
        st.timers.peek().map(|Reverse(e)| e.at)
    }

    /// Run `f` with this simulation installed as the thread's current
    /// simulation, without running any task. Lets setup code outside a task
    /// call context-dependent free functions ([`spawn`], [`now`], library
    /// constructors that spawn service loops) before the run loop starts.
    ///
    /// Unlike [`Sim::run_until`], `scope` may be entered while a run loop
    /// of *another* simulation is on the stack (it nests), but not while
    /// this simulation itself is running (ordinary task code already has
    /// the context).
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let _tls = EnterGuard::new(self.inner.clone());
        f()
    }

    /// Spawn `future`, run the simulation until it completes, and return its
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs out of events before the future
    /// completes (i.e. the future deadlocked on something that will never
    /// wake it).
    pub fn block_on<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(future);
        self.run();
        handle
            .try_take()
            .expect("simcore: block_on future never completed (deadlock in simulation)")
    }

    fn enter(&self) -> RunGuard {
        {
            let mut st = self.inner.state.borrow_mut();
            assert!(!st.running, "simcore: Sim::run re-entered");
            st.running = true;
        }
        RunGuard {
            _tls: EnterGuard::new(self.inner.clone()),
            inner: self.inner.clone(),
        }
    }

    /// Poll one ready task. Returns false if the ready queue is empty.
    fn step_one(&self) -> bool {
        let (id, mut fut, waker) = {
            let mut st = self.inner.state.borrow_mut();
            let id = loop {
                match st.ready.pop_front() {
                    Some(id) => {
                        let Some(slot) = st.slots.get_mut(id.idx as usize) else {
                            continue;
                        };
                        if slot.gen != id.gen {
                            continue; // Stale entry: slot recycled since queueing.
                        }
                        let Some(task) = slot.task.as_mut() else {
                            continue; // Stale entry: task completed.
                        };
                        task.queued = false;
                        if task.future.is_some() {
                            break id;
                        }
                        // Future is momentarily out being polled; requeue.
                        task.queued = true;
                        st.ready.push_back(id);
                        continue;
                    }
                    None => return false,
                }
            };
            let task = st.slots[id.idx as usize]
                .task
                .as_mut()
                .expect("task just matched");
            let fut = task.future.take().expect("task future present");
            // Refcount bump on the cached waker, not a fresh allocation.
            let waker = task.waker.clone();
            st.polls += 1;
            (id, fut, waker)
        };

        let mut cx = Context::from_waker(&waker);
        // Published so `current_task()` can identify the polling task; a
        // nested `Sim` run inside a poll saves and restores it.
        let prev = self.inner.current.replace(Some(id));
        let poll = fut.as_mut().poll(&mut cx);
        self.inner.current.set(prev);

        let mut st = self.inner.state.borrow_mut();
        match poll {
            Poll::Ready(()) => {
                let slot = &mut st.slots[id.idx as usize];
                slot.task = None;
                slot.gen = slot.gen.wrapping_add(1);
                st.free.push(id.idx);
                st.live -= 1;
            }
            Poll::Pending => {
                let slot = &mut st.slots[id.idx as usize];
                if slot.gen == id.gen {
                    if let Some(task) = slot.task.as_mut() {
                        task.future = Some(fut);
                    }
                }
            }
        }
        true
    }
}

/// Composite guard: clears both the TLS stack and the `running` flag.
struct RunGuard {
    _tls: EnterGuard,
    inner: Rc<Inner>,
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        self.inner.state.borrow_mut().running = false;
    }
}

// ---------------------------------------------------------------------------
// JoinHandle.
// ---------------------------------------------------------------------------

struct JoinState<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

impl<T> Default for JoinState<T> {
    fn default() -> Self {
        JoinState {
            value: None,
            waker: None,
        }
    }
}

/// Handle to a spawned task's output. Await it inside the simulation, or use
/// [`JoinHandle::try_take`] after the run loop returns.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().value.take()
    }

    /// Whether the task has completed (output may already be taken).
    pub fn is_finished(&self) -> bool {
        let s = self.slot.borrow();
        s.value.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.slot.borrow_mut();
        if let Some(v) = s.value.take() {
            Poll::Ready(v)
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Free functions usable inside simulation tasks.
// ---------------------------------------------------------------------------

/// Current virtual time. Must be called from inside a simulation task (or
/// while a `Sim` run loop is on the stack).
pub fn now() -> SimTime {
    current_inner().now()
}

/// Current virtual time, or `None` when no simulation run loop is on the
/// stack. Unlike [`now`], never panics — for instrumentation that may run
/// during teardown.
pub fn try_now() -> Option<SimTime> {
    CURRENT.with(|c| c.borrow().last().map(|inner| inner.now()))
}

/// Identity of the task currently being polled, or `None` when called
/// outside a task poll (including outside any simulation). Unlike
/// [`now`], this never panics, so instrumentation layers can call it
/// unconditionally.
pub fn current_task() -> Option<TaskId> {
    CURRENT.with(|c| c.borrow().last().and_then(|inner| inner.current.get()))
}

/// Spawn a task onto the current simulation.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let sim = Sim {
        inner: current_inner(),
    };
    sim.spawn(future)
}

/// Sleep until the virtual clock reaches `deadline`.
pub fn sleep_until(deadline: SimTime) -> Sleep {
    Sleep {
        deadline,
        registered: false,
    }
}

/// Sleep for `d` of virtual time.
pub fn sleep(d: Duration) -> Sleep {
    Sleep {
        deadline: now() + d,
        registered: false,
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let inner = current_inner();
        if inner.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            // Arm the timer with the polling task's waker: firing it later is
            // a direct wake with no thread-local lookup or task-table probe.
            inner.add_timer(self.deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

/// Yield to other runnable tasks once, without advancing the clock.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new();
        assert_eq!(sim.block_on(async { 42 }), 42);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let t = sim.block_on(async {
            sleep(Duration::from_micros(5)).await;
            sleep(Duration::from_micros(7)).await;
            now()
        });
        assert_eq!(t, SimTime::from_micros(12));
        assert_eq!(sim.now(), SimTime::from_micros(12));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let order: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for (idx, delay) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let order = order.clone();
            sim.spawn(async move {
                sleep(Duration::from_nanos(delay)).await;
                order.borrow_mut().push((idx, now().nanos()));
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &[(1, 10), (2, 20), (0, 30)]);
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for idx in 0..5u32 {
            let order = order.clone();
            sim.spawn(async move {
                sleep(Duration::from_nanos(100)).await;
                order.borrow_mut().push(idx);
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_stops_at_limit() {
        let sim = Sim::new();
        let fired = Rc::new(Cell::new(false));
        let f2 = fired.clone();
        sim.spawn(async move {
            sleep(Duration::from_micros(10)).await;
            f2.set(true);
        });
        sim.run_until(SimTime::from_micros(5));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_micros(5));
        sim.run_until(SimTime::from_micros(20));
        assert!(fired.get());
        assert_eq!(sim.now(), SimTime::from_micros(20));
    }

    #[test]
    fn spawn_from_inside_task() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_nanos(5)).await;
                7
            });
            h.await + 1
        });
        assert_eq!(v, 8);
    }

    #[test]
    fn join_handle_try_take() {
        let sim = Sim::new();
        let h = sim.spawn(async { "done" });
        assert!(!h.is_finished());
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some("done"));
        assert_eq!(h.try_take(), None);
    }

    #[test]
    fn yield_now_interleaves_without_time() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
            yield_now().await;
            l2.borrow_mut().push("b2");
        });
        sim.run();
        assert_eq!(&*log.borrow(), &["a1", "b1", "a2", "b2"]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn determinism_fingerprint_is_stable() {
        fn run_once() -> (u64, u64) {
            let sim = Sim::new();
            for i in 0..20u64 {
                sim.spawn(async move {
                    for j in 0..5u64 {
                        sleep(Duration::from_nanos(i * 13 + j * 7 + 1)).await;
                    }
                });
            }
            sim.run();
            (sim.poll_count(), sim.now().nanos())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn live_tasks_reports_blocked_services() {
        let sim = Sim::new();
        // A service that waits forever on a timerless future.
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    #[should_panic(expected = "never completed")]
    fn block_on_deadlock_panics() {
        let sim = Sim::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn current_task_identifies_the_polling_task() {
        assert_eq!(current_task(), None, "outside any simulation");
        let sim = Sim::new();
        let ids: Rc<RefCell<Vec<Option<TaskId>>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let ids = ids.clone();
            sim.spawn(async move {
                let before = current_task();
                sleep(Duration::from_nanos(1)).await;
                assert_eq!(current_task(), before, "stable across suspension");
                ids.borrow_mut().push(before);
            });
        }
        sim.run();
        let ids = ids.borrow();
        assert_eq!(ids.len(), 2);
        assert!(ids[0].is_some() && ids[1].is_some());
        assert_ne!(ids[0], ids[1], "distinct tasks get distinct identities");
        assert_eq!(current_task(), None, "cleared after the run loop");
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let t = sim.block_on(async {
            sleep(Duration::ZERO).await;
            now()
        });
        assert_eq!(t, SimTime::ZERO);
    }
}
