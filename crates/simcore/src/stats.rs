//! Measurement primitives: counters and a log-bucketed latency histogram.
//!
//! The [`Histogram`] is an HdrHistogram-style log-linear histogram: values
//! are bucketed into 64 linear sub-buckets per power of two, giving a
//! worst-case quantile error under ~1.6% across the full `u64` range with a
//! small fixed memory footprint. This is how every latency figure in the
//! paper reproduction (average, p99, p99.5, p99.9) is computed.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A shared monotonically-increasing counter.
#[derive(Clone, Default)]
pub struct Counter {
    v: Rc<Cell<u64>>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`. Saturates at `u64::MAX` rather than wrapping: a pegged
    /// counter is obviously wrong in a report, a silently wrapped one is
    /// quietly wrong.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.set(self.v.get().saturating_add(n));
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.get()
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.v.set(0);
    }
}

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Log-linear histogram over `u64` values (typically latencies in ns).
#[derive(Clone)]
pub struct Histogram {
    inner: Rc<RefCell<HistogramInner>>,
}

struct HistogramInner {
    // buckets[b][s]: values with floor(log2(v)) related to b, linear slot s.
    buckets: Vec<[u64; SUB_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            inner: Rc::new(RefCell::new(HistogramInner {
                buckets: vec![[0; SUB_BUCKETS]; 64],
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            })),
        }
    }

    /// Index of the (bucket, sub-bucket) pair for `value`.
    ///
    /// Values below `SUB_BUCKETS` land in bucket 0 exactly; otherwise the top
    /// `SUB_BUCKET_BITS + 1` significant bits select the slot, so each bucket
    /// spans one power of two with `SUB_BUCKETS` linear sub-buckets.
    fn index(value: u64) -> (usize, usize) {
        if value < SUB_BUCKETS as u64 {
            return (0, value as usize);
        }
        let msb = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
        let bucket = (msb - SUB_BUCKET_BITS + 1) as usize;
        let shifted = (value >> (msb + 1 - (SUB_BUCKET_BITS + 1))) as usize;
        (bucket, shifted - SUB_BUCKETS)
    }

    /// Upper edge of the sub-bucket (the largest value it can hold).
    fn value_at(bucket: usize, sub: usize) -> u64 {
        if bucket == 0 {
            return sub as u64;
        }
        (((sub + SUB_BUCKETS + 1) as u64) << (bucket - 1)) - 1
    }

    /// Lower edge of the sub-bucket (the smallest value it can hold).
    fn lower_edge(bucket: usize, sub: usize) -> u64 {
        if bucket == 0 {
            return sub as u64;
        }
        ((sub + SUB_BUCKETS) as u64) << (bucket - 1)
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let (b, s) = Self::index(value);
        let mut h = self.inner.borrow_mut();
        h.buckets[b][s] += 1;
        h.count += 1;
        h.sum += value as u128;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.borrow().count
    }

    /// Number of recorded values ≤ `value` (e.g. requests inside an SLO
    /// budget). Exact at sub-bucket granularity; a sub-bucket straddling
    /// `value` contributes a linearly interpolated share, mirroring
    /// [`Histogram::quantile`], so the absolute error is bounded by one
    /// sub-bucket width (~1.6% relative).
    pub fn count_below(&self, value: u64) -> u64 {
        let h = self.inner.borrow();
        let mut below = 0u64;
        for (b, bucket) in h.buckets.iter().enumerate() {
            for (s, &c) in bucket.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let low = Self::lower_edge(b, s);
                let up = Self::value_at(b, s);
                if up <= value {
                    below += c;
                } else if low > value {
                    // Sub-buckets are visited in increasing value order.
                    return below;
                } else {
                    let span = (up - low + 1) as u128;
                    let part = (value - low + 1) as u128;
                    below += ((c as u128 * part) / span) as u64;
                    return below;
                }
            }
        }
        below
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        let h = self.inner.borrow();
        if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        }
    }

    /// Minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        let h = self.inner.borrow();
        if h.count == 0 {
            0
        } else {
            h.min
        }
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.inner.borrow().max
    }

    /// Quantile `q` in [0, 1], linearly interpolated inside the resolved
    /// sub-bucket by rank, so the estimate tracks where the target rank
    /// falls between the bucket's edges instead of snapping to its upper
    /// edge. Absolute error is bounded by one sub-bucket width (~1.6%
    /// relative, two-sided).
    pub fn quantile(&self, q: f64) -> u64 {
        let h = self.inner.borrow();
        if h.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * h.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in h.buckets.iter().enumerate() {
            for (s, &c) in bucket.iter().enumerate() {
                seen += c;
                if seen >= target {
                    let low = Self::lower_edge(b, s);
                    let up = Self::value_at(b, s);
                    // 1-based rank of the target within this sub-bucket.
                    let pos = target - (seen - c);
                    let est = low + (((up - low) as u128 * pos as u128) / c as u128) as u64;
                    return est.clamp(h.min, h.max);
                }
            }
        }
        h.max
    }

    /// Fold `other`'s recorded values into `self` (e.g. aggregating
    /// per-node latency distributions into a cluster-wide percentile).
    /// Bucket-wise addition: the result is identical to having recorded
    /// every value into one histogram. `other` is left untouched.
    pub fn merge(&self, other: &Histogram) {
        if Rc::ptr_eq(&self.inner, &other.inner) {
            // Merging a histogram into itself doubles every count.
            let mut h = self.inner.borrow_mut();
            for bucket in h.buckets.iter_mut() {
                for c in bucket.iter_mut() {
                    *c = c.saturating_mul(2);
                }
            }
            h.count = h.count.saturating_mul(2);
            h.sum = h.sum.saturating_mul(2);
            return;
        }
        let o = other.inner.borrow();
        let mut h = self.inner.borrow_mut();
        for (dst, src) in h.buckets.iter_mut().zip(o.buckets.iter()) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = d.saturating_add(*s);
            }
        }
        h.count = h.count.saturating_add(o.count);
        h.sum = h.sum.saturating_add(o.sum);
        h.min = h.min.min(o.min);
        h.max = h.max.max(o.max);
    }

    /// Shorthand for common percentiles.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// 99.5th percentile.
    pub fn p995(&self) -> u64 {
        self.quantile(0.995)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Clear all recorded values.
    pub fn reset(&self) {
        let mut h = self.inner.borrow_mut();
        for b in h.buckets.iter_mut() {
            b.fill(0);
        }
        h.count = 0;
        h.sum = 0;
        h.min = u64::MAX;
        h.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        let c2 = c.clone();
        c2.add(4);
        assert_eq!(c.get(), 10, "clones share state");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // Small values (< 64) are recorded exactly.
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn histogram_count_below() {
        let h = Histogram::new();
        assert_eq!(h.count_below(100), 0, "empty histogram");
        for v in 0..64u64 {
            h.record(v);
        }
        // Small values are exact: count_below(v) == v + 1.
        assert_eq!(h.count_below(0), 1);
        assert_eq!(h.count_below(31), 32);
        assert_eq!(h.count_below(63), 64);
        assert_eq!(h.count_below(1_000_000), 64);
        // Large values resolve within one sub-bucket (~1.6% relative).
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 1000);
        }
        let got = h.count_below(500_000) as f64;
        assert!(
            (got - 501.0).abs() <= 1000.0 * 0.02,
            "count_below(500k) = {got}, want ~501"
        );
    }

    #[test]
    fn histogram_roundtrip_indexing() {
        // value_at(index(v)) must be within the sub-bucket resolution of v.
        for &v in &[
            1u64,
            63,
            64,
            65,
            100,
            127,
            128,
            1000,
            4096,
            65535,
            1_000_000,
            123_456_789,
            u64::from(u32::MAX),
            1 << 40,
        ] {
            let (b, s) = Histogram::index(v);
            assert!(s < SUB_BUCKETS, "sub index in range for {v}");
            let rep = Histogram::value_at(b, s);
            assert!(rep >= v, "representative {rep} >= value {v}");
            // Relative error bounded by one sub-bucket width.
            assert!(
                (rep - v) as f64 <= v as f64 / 32.0 + 1.0,
                "rep {rep} too far from {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_uniform_data() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 = {p99}");
        assert!(h.p999() >= h.p99());
        assert!(h.p995() >= h.p99());
        assert!((h.mean() - 500_050.0).abs() < 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_reset() {
        let h = Histogram::new();
        h.record(12345);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "overflow pegs at MAX, never wraps");
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_merge_matches_sequential_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 100, 5_000, 1 << 33] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 100, 999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_merge_with_empty_and_self() {
        let h = Histogram::new();
        h.record(42);
        h.merge(&Histogram::new());
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 42);
        // A clone shares storage with the original: merging it is a
        // self-merge and must not deadlock on the RefCell.
        let alias = h.clone();
        h.merge(&alias);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 42.0);
    }

    #[test]
    fn histogram_quantile_interpolates_within_sub_bucket() {
        // 1000 and 1007 share one sub-bucket (bucket 4, width 8): low
        // ranks must resolve near the lower edge, high ranks near the
        // upper edge, instead of everything snapping to the upper edge.
        let (b, s) = Histogram::index(1000);
        assert_eq!((b, s), Histogram::index(1007));
        let low = Histogram::lower_edge(b, s);
        let up = Histogram::value_at(b, s);
        assert_eq!((low, up), (1000, 1007));
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1000);
            h.record(1007);
        }
        for q in [0.01, 0.5, 1.0] {
            let est = h.quantile(q);
            assert!(
                (low..=up).contains(&est),
                "q={q}: est {est} outside [{low}, {up}]"
            );
        }
        assert_eq!(h.quantile(0.01), 1000, "first rank sits at the low edge");
        assert_eq!(h.quantile(1.0), 1007, "last rank sits at the high edge");
        // A single-valued distribution is reported exactly at any rank.
        let one = Histogram::new();
        for _ in 0..100 {
            one.record(1003);
        }
        assert_eq!(one.quantile(0.01), 1003);
        assert_eq!(one.quantile(0.99), 1003);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
        assert!(vals[6] <= h.max());
    }
}
