//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate underneath the whole DmRPC reproduction: a single-threaded
//! async executor driven by a **virtual clock**. Simulated components
//! (networks, RPC stacks, disaggregated-memory servers, microservices) are
//! ordinary Rust futures; waiting is expressed with [`sleep`] and the
//! primitives in [`sync`], and *cost models* are expressed with the
//! rate-limited resources in [`resource`].
//!
//! Why a simulator? The paper's testbed (8× Xeon servers, 100 GbE ConnectX-5
//! NICs, an emulated CXL pool) is hardware we cannot run. All of the paper's
//! effects, however, are functions of *bytes moved per hop* and fixed
//! per-operation costs — exactly what a discrete-event model charges. The
//! reproduction therefore runs real data-plane logic (real pages, real
//! copy-on-write, real refcounts) while time is virtual and fully
//! deterministic.
//!
//! ## Quick start
//!
//! ```
//! use simcore::{Sim, spawn, sleep, now};
//! use std::time::Duration;
//!
//! let sim = Sim::new();
//! let total = sim.block_on(async {
//!     let worker = spawn(async {
//!         sleep(Duration::from_micros(10)).await;
//!         21
//!     });
//!     let other = spawn(async {
//!         sleep(Duration::from_micros(5)).await;
//!         21
//!     });
//!     worker.await + other.await
//! });
//! assert_eq!(total, 42);
//! assert_eq!(sim.now().nanos(), 10_000); // virtual, not wall-clock
//! ```

#![warn(missing_docs)]

mod executor;
pub mod par;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
mod timeutil;

pub use executor::{
    current_task, now, sleep, sleep_until, spawn, try_now, yield_now, JoinHandle, Sim, TaskId,
};
pub use resource::{CpuPool, RateResource};
pub use rng::{SimRng, Zipf};
pub use stats::{Counter, Histogram};
pub use time::{transfer_time, SimTime};
pub use timeutil::{interval, timeout, Elapsed, Interval, Timeout};

/// Convenience re-export of `std::time::Duration`, the interval type used
/// throughout the simulator.
pub use std::time::Duration;
