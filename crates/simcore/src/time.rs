//! Virtual time for the discrete-event simulation.
//!
//! All simulated components share a single virtual clock owned by the
//! [`crate::Sim`] executor. Time is represented as nanoseconds since the
//! start of the simulation in a [`SimTime`], and intervals use
//! [`std::time::Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is a plain 64-bit nanosecond counter: it is `Copy`, totally
/// ordered, and saturates on overflow (a simulation running for 584 years of
/// virtual time is considered a bug elsewhere).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for rate computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, or zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_nanos(rhs)))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// Convert a [`Duration`] to saturating nanoseconds.
#[inline]
pub fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Duration corresponding to transferring `bytes` at `bytes_per_sec`.
///
/// Used by rate-limited resources (NICs, memory controllers). Rounds up to a
/// whole nanosecond so repeated small transfers still consume time.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Duration {
    if bytes == 0 || bytes_per_sec <= 0.0 {
        return Duration::ZERO;
    }
    let ns = (bytes as f64) * 1e9 / bytes_per_sec;
    Duration::from_nanos(ns.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).nanos(), 4_000);
        assert_eq!(SimTime::from_nanos(5).nanos(), 5);
        assert_eq!(SimTime::ZERO.nanos(), 0);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_micros(1) + Duration::from_nanos(500);
        assert_eq!(t.nanos(), 1_500);
    }

    #[test]
    fn add_saturates() {
        let t = SimTime::MAX + Duration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a - b, Duration::from_micros(6));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_micros(4);
        let b = SimTime::from_micros(10);
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
        assert_eq!(b.saturating_duration_since(a), Duration::from_micros(6));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(
            SimTime::from_nanos(7).max(SimTime::from_nanos(3)),
            SimTime::from_nanos(7)
        );
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 1 GB/s = 1ns exactly.
        assert_eq!(transfer_time(1, 1e9), Duration::from_nanos(1));
        // 100 Gbit/s = 12.5 GB/s; 4096 bytes -> 327.68ns -> 328ns.
        assert_eq!(transfer_time(4096, 12.5e9), Duration::from_nanos(328));
        assert_eq!(transfer_time(0, 12.5e9), Duration::ZERO);
        assert_eq!(transfer_time(10, 0.0), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000000s");
    }

    #[test]
    fn as_secs_f64() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
