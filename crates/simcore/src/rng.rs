//! Deterministic random-number generation and workload distributions.
//!
//! Every stochastic choice in the simulator (packet loss, workload
//! interarrival times, request mixes, Zipf-distributed object popularity)
//! flows through a seeded [`SimRng`] so runs are reproducible bit-for-bit.
//!
//! The generator is SplitMix64: tiny, fast, and statistically strong enough
//! for simulation workloads.

use std::cell::Cell;
use std::rc::Rc;

/// A small, cloneable, deterministic PRNG (SplitMix64).
///
/// Clones share state, which is usually what a simulation component wants
/// (one stream per subsystem); use [`SimRng::fork`] for an independent
/// stream.
#[derive(Clone)]
pub struct SimRng {
    state: Rc<Cell<u64>>,
}

impl SimRng {
    /// Create from a seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: Rc::new(Cell::new(seed.wrapping_add(0x9E3779B97F4A7C15))),
        }
    }

    /// Derive an independent generator (stable function of current state).
    pub fn fork(&self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&self) -> u64 {
        let mut z = self.state.get().wrapping_add(0x9E3779B97F4A7C15);
        self.state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn gen_range(&self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for simulation workloads and keeps the generator allocation-free).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn gen_range_in(&self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given `mean` (for Poisson
    /// arrival processes in open-loop load generators).
    pub fn gen_exp(&self, mean: f64) -> f64 {
        let u = 1.0 - self.gen_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Fill `buf` with deterministic pseudo-random bytes.
    pub fn fill_bytes(&self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Pick an index according to `weights` (e.g. the 60/30/10 request mix).
    pub fn pick_weighted(&self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted: zero total weight");
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// Zipf-distributed sampler over `{0, .., n-1}` with exponent `theta`
/// (models skewed object popularity, e.g. social-network post reads).
pub struct Zipf {
    rng: SimRng,
    /// Cumulative probabilities.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew `theta` (0 = uniform,
    /// ~0.99 = YCSB-style heavy skew).
    pub fn new(rng: SimRng, n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { rng, cdf }
    }

    /// Sample an item index.
    pub fn sample(&self) -> usize {
        let u = self.rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = SimRng::new(42);
        let b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clones_share_state_forks_do_not() {
        let a = SimRng::new(7);
        let c = a.clone();
        let f = a.fork();
        let x = a.next_u64();
        let y = c.next_u64();
        assert_ne!(x, y, "clone advanced the shared stream");
        let _ = f.next_u64(); // independent stream; just exercise it
    }

    #[test]
    fn gen_range_bounds() {
        let r = SimRng::new(1);
        for _ in 0..10_000 {
            let v = r.gen_range(17);
            assert!(v < 17);
        }
        for _ in 0..10_000 {
            let v = r.gen_range_in(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let r = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let r = SimRng::new(9);
        let mut sum = 0.0;
        let n = 200_000;
        for _ in 0..n {
            let v = r.gen_exp(250.0);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let r = SimRng::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn fill_bytes_deterministic_and_covers_tail() {
        let a = SimRng::new(5);
        let b = SimRng::new(5);
        let mut x = [0u8; 13];
        let mut y = [0u8; 13];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert!(x.iter().any(|&v| v != 0));
    }

    #[test]
    fn pick_weighted_follows_mix() {
        let r = SimRng::new(123);
        let weights = [0.6, 0.3, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert!((counts[0] as f64 / 1e5 - 0.6).abs() < 0.01);
        assert!((counts[1] as f64 / 1e5 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 1e5 - 0.1).abs() < 0.01);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(SimRng::new(77), 1000, 0.99);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let i = z.sample();
            assert!(i < 1000);
            counts[i] += 1;
        }
        // Head should dominate the tail under heavy skew.
        assert!(
            counts[0] > counts[500] * 10,
            "head {} tail {}",
            counts[0],
            counts[500]
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(SimRng::new(13), 10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 1e4 - 1.0).abs() < 0.1, "{counts:?}");
        }
    }
}
