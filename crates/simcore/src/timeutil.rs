//! Time-based combinators: [`timeout`] and [`Interval`].

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::{now, sleep_until, Sleep};
use crate::time::SimTime;

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Await `fut`, but give up after `dur` of virtual time.
///
/// ```
/// use simcore::{Sim, timeout, sleep};
/// use std::time::Duration;
///
/// let sim = Sim::new();
/// let (fast, slow) = sim.block_on(async {
///     let fast = timeout(Duration::from_micros(10), async { 1 }).await;
///     let slow = timeout(Duration::from_micros(10), sleep(Duration::from_secs(1))).await;
///     (fast, slow)
/// });
/// assert_eq!(fast, Ok(1));
/// assert!(slow.is_err());
/// ```
pub fn timeout<F: Future>(dur: Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: sleep_until(now() + dur),
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: standard structural pinning; neither field is moved out.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = unsafe { Pin::new_unchecked(&mut this.sleep) };
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A fixed-period ticker (no tick catch-up: the next tick is scheduled from
/// the current tick's deadline, drift-free).
pub struct Interval {
    next: SimTime,
    period: Duration,
}

/// Create an [`Interval`] whose first tick completes after `period`.
pub fn interval(period: Duration) -> Interval {
    assert!(!period.is_zero(), "interval period must be positive");
    Interval {
        next: now() + period,
        period,
    }
}

impl Interval {
    /// Wait for the next tick; returns the tick's scheduled time.
    pub async fn tick(&mut self) -> SimTime {
        let at = self.next;
        sleep_until(at).await;
        self.next = at + self.period;
        at
    }

    /// The configured period.
    pub fn period(&self) -> Duration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, Sim};

    #[test]
    fn timeout_passes_through_fast_futures() {
        let sim = Sim::new();
        let (r, at) = sim.block_on(async {
            let r = timeout(Duration::from_micros(100), async {
                sleep(Duration::from_micros(10)).await;
                7
            })
            .await;
            (r, crate::now().nanos())
        });
        assert_eq!(r, Ok(7));
        assert_eq!(at, 10_000, "completes at the future's time");
    }

    #[test]
    fn timeout_fires_on_slow_futures() {
        let sim = Sim::new();
        let (r, at) = sim.block_on(async {
            let r = timeout(Duration::from_micros(10), sleep(Duration::from_secs(5))).await;
            (r, crate::now().nanos())
        });
        assert_eq!(r, Err(Elapsed));
        assert_eq!(at, 10_000, "gives up exactly at the deadline");
    }

    #[test]
    fn interval_ticks_drift_free() {
        let sim = Sim::new();
        let ticks = sim.block_on(async {
            let mut iv = interval(Duration::from_micros(10));
            let mut ticks = Vec::new();
            for _ in 0..4 {
                let at = iv.tick().await;
                ticks.push(at.nanos());
                // Simulate slow tick work (less than a period).
                sleep(Duration::from_micros(3)).await;
            }
            ticks
        });
        assert_eq!(ticks, vec![10_000, 20_000, 30_000, 40_000]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let sim = Sim::new();
        sim.block_on(async {
            let _ = interval(Duration::ZERO);
        });
    }
}
