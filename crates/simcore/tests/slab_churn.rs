//! Slab-recycling safety: task slots are reused after completion, so a waker
//! (or ready-queue entry) held over from a dead task must never reach the new
//! tenant of its slot. The generation counter in `TaskId` is what prevents
//! that; these tests drive spawn/complete churn hard enough to force heavy
//! slot reuse and then fire stale wakers at recycled slots.

use proptest::prelude::*;
use simcore::Sim;
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A future that stashes its task's waker on first poll and stays pending
/// until `release` is set, so tests can hold wakers across task lifetimes.
struct StashWaker {
    stash: Rc<RefCell<Option<Waker>>>,
    release: Rc<Cell<bool>>,
}

impl Future for StashWaker {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.release.get() {
            return Poll::Ready(());
        }
        *self.stash.borrow_mut() = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[test]
fn stale_waker_does_not_wake_slot_reuser() {
    let sim = Sim::new();

    // Task A stashes its waker, then is released and completes.
    let stash = Rc::new(RefCell::new(None));
    let release = Rc::new(Cell::new(false));
    sim.spawn(StashWaker {
        stash: stash.clone(),
        release: release.clone(),
    });
    sim.run();
    let stale = stash.borrow_mut().take().expect("waker stashed");
    release.set(true);
    stale.wake_by_ref(); // Legitimate wake: completes A, freeing its slot.
    sim.run();
    assert_eq!(sim.live_tasks(), 0);

    // Task B reuses A's slot (single-slot slab at this point) and blocks.
    let polls_of_b = Rc::new(Cell::new(0u32));
    let pb = polls_of_b.clone();
    let b_stash = Rc::new(RefCell::new(None));
    let b_release = Rc::new(Cell::new(false));
    let counted = {
        let b_stash = b_stash.clone();
        let b_release = b_release.clone();
        async move {
            pb.set(pb.get() + 1);
            StashWaker {
                stash: b_stash,
                release: b_release,
            }
            .await;
            pb.set(pb.get() + 1);
        }
    };
    sim.spawn(counted);
    sim.run();
    assert_eq!(polls_of_b.get(), 1, "B polled once then blocked");

    // Firing A's stale waker again must not poll B, even though B now
    // occupies A's old slot.
    let polls_before = sim.poll_count();
    stale.wake();
    sim.run();
    assert_eq!(
        sim.poll_count(),
        polls_before,
        "stale waker reached the slot's new tenant"
    );
    assert_eq!(polls_of_b.get(), 1);

    // B's own waker still works.
    b_release.set(true);
    b_stash.borrow_mut().take().expect("B stashed").wake();
    sim.run();
    assert_eq!(polls_of_b.get(), 2);
    assert_eq!(sim.live_tasks(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of completions and slot-reusing respawns:
    /// firing every dead generation's waker must never poll a live task, and
    /// live-task accounting must stay exact.
    #[test]
    fn churn_never_resurrects_stale_ids(
        rounds in 1usize..12,
        width in 1usize..8,
        fire_between in any::<bool>(),
    ) {
        let sim = Sim::new();
        let mut dead_wakers: Vec<Waker> = Vec::new();
        for _round in 0..rounds {
            // Spawn a wave of tasks that block and stash their wakers.
            let mut wave = Vec::new();
            for _ in 0..width {
                let stash = Rc::new(RefCell::new(None));
                let release = Rc::new(Cell::new(false));
                sim.spawn(StashWaker { stash: stash.clone(), release: release.clone() });
                wave.push((stash, release));
            }
            sim.run();
            prop_assert_eq!(sim.live_tasks(), width);

            // Poking every prior generation's waker must not poll anything.
            if fire_between {
                let before = sim.poll_count();
                for w in &dead_wakers {
                    w.wake_by_ref();
                }
                sim.run();
                prop_assert_eq!(sim.poll_count(), before);
            }

            // Complete the wave, retiring its wakers into the dead pool.
            for (stash, release) in wave {
                release.set(true);
                let w = stash.borrow_mut().take().expect("stashed");
                w.wake_by_ref();
                dead_wakers.push(w);
            }
            sim.run();
            prop_assert_eq!(sim.live_tasks(), 0);
        }

        // Final barrage: every waker from every generation at once.
        let before = sim.poll_count();
        for w in &dead_wakers {
            w.wake_by_ref();
        }
        sim.run();
        prop_assert_eq!(sim.poll_count(), before);
    }
}
