//! Property tests for the partitioned engine: randomized topologies and
//! cross-partition schedules must produce byte-identical outcomes at
//! every thread count (ISSUE 6 satellite). The serial schedule
//! (`threads = 1`) is the reference; 2 and 4 threads must reproduce its
//! fingerprint, delivery hashes, and delivery counts exactly.

use proptest::prelude::*;
use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};
use simcore::{Duration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// Conservative window: every cross-partition send is scheduled at least
/// this far in the future.
const LOOKAHEAD: Duration = Duration::from_micros(5);

/// Order-sensitive mixer: delivery order and virtual delivery times feed
/// the hash, so any schedule divergence shows up as a different digest.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(27)
        .wrapping_add(0x632B_E5AB)
}

/// One randomized scenario. `sends` is a flat schedule of
/// `(src_hint, dst_hint, at_us, payload)` tuples; hints are reduced
/// modulo the topology so the same schedule reruns at any thread count.
/// Returns the engine fingerprint plus each partition's
/// `(delivery_hash, delivered, sent)` result.
fn run_schedule(
    parts: u32,
    sends: &[(u32, u32, u64, u64)],
    threads: usize,
) -> (Vec<u64>, Vec<(u64, u64, u64)>) {
    let builders: Vec<PartitionBuilder<u64, (u64, u64, u64)>> = (0..parts)
        .map(|me| {
            let sends = sends.to_vec();
            let b: PartitionBuilder<u64, (u64, u64, u64)> = Box::new(move |ctx| {
                let state = Rc::new(Cell::new((0u64, 0u64)));
                let st = state.clone();
                let sim = ctx.sim().clone();
                ctx.on_deliver(move |v: u64| {
                    let (h, n) = st.get();
                    st.set((mix(mix(h, v), sim.now().nanos()), n + 1));
                });
                let sender = ctx.sender();
                let mut sent = 0u64;
                for &(src_hint, dst_hint, at_us, payload) in &sends {
                    if src_hint % parts != me {
                        continue;
                    }
                    sent += 1;
                    // Never self-send: offset 1..parts from `me`.
                    let dst = (me + 1 + dst_hint % (parts - 1).max(1)) % parts;
                    let sender = sender.clone();
                    ctx.sim().spawn(async move {
                        simcore::sleep_until(SimTime::from_nanos(at_us * 1_000)).await;
                        // Deterministic extra delay on top of the minimum
                        // lookahead, derived from the payload.
                        let extra = Duration::from_nanos(payload % 7_000);
                        let at = simcore::now() + LOOKAHEAD + extra;
                        sender.send(dst, at, payload);
                    });
                }
                // Local-only background work so partitions have uneven
                // poll counts that a schedule divergence would disturb.
                ctx.sim().spawn(async move {
                    for _ in 0..=me {
                        simcore::sleep(Duration::from_micros(3)).await;
                    }
                });
                Box::new(move || {
                    let (h, n) = state.get();
                    (h, n, sent)
                })
            });
            b
        })
        .collect();
    let out = run_partitioned(
        builders,
        ParConfig {
            lookahead: LOOKAHEAD,
            threads,
        },
    );
    let results = out.partitions.iter().map(|p| p.result).collect();
    (out.fingerprint(), results)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any randomized topology and schedule yields the serial outcome at
    /// 2 and 4 threads: identical fingerprints (polls, end times,
    /// windows, exchanged events) and identical per-partition delivery
    /// hashes, which encode both delivery order and virtual times.
    #[test]
    fn fingerprints_match_serial_at_any_thread_count(
        parts in 2u32..6,
        sends in proptest::collection::vec(
            (0u32..16, 0u32..16, 1u64..200, 0u64..u64::MAX),
            1..40,
        ),
    ) {
        let (fp1, res1) = run_schedule(parts, &sends, 1);
        let delivered: u64 = res1.iter().map(|r| r.1).sum();
        let sent: u64 = res1.iter().map(|r| r.2).sum();
        prop_assert_eq!(delivered, sent, "every send is delivered exactly once");
        prop_assert_eq!(sent, sends.len() as u64);
        for threads in [2usize, 4] {
            let (fp, res) = run_schedule(parts, &sends, threads);
            prop_assert_eq!(&fp, &fp1, "fingerprint diverged at {} threads", threads);
            prop_assert_eq!(&res, &res1, "results diverged at {} threads", threads);
        }
    }
}
