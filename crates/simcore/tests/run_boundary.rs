//! Regression tests pinning the `run_until`/`run_before`/`run_for`
//! boundary semantics that the partitioned engine's window barrier leans
//! on (ISSUE 6 satellite): timers exactly at the limit, the final clock
//! value, `next_event_time`, and run-loop re-entrancy.

use simcore::{Duration, Sim, SimTime};
use std::cell::Cell;
use std::rc::Rc;

fn at_micros(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

/// Spawn a task recording into `hits` when its timer at `us` fires.
fn mark_at(sim: &Sim, us: u64, hits: &Rc<Cell<u64>>) {
    let hits = hits.clone();
    sim.spawn(async move {
        simcore::sleep_until(at_micros(us)).await;
        hits.set(hits.get() + 1);
    });
}

#[test]
fn run_until_includes_events_exactly_at_the_limit() {
    let sim = Sim::new();
    let hits = Rc::new(Cell::new(0));
    mark_at(&sim, 5, &hits);
    mark_at(&sim, 10, &hits); // exactly at the limit
    mark_at(&sim, 11, &hits); // past the limit
    sim.run_until(at_micros(10));
    assert_eq!(hits.get(), 2, "the event at the limit fires");
    assert_eq!(sim.now(), at_micros(10));
    sim.run();
    assert_eq!(hits.get(), 3);
}

#[test]
fn run_before_excludes_events_exactly_at_the_limit() {
    let sim = Sim::new();
    let hits = Rc::new(Cell::new(0));
    mark_at(&sim, 5, &hits);
    mark_at(&sim, 10, &hits); // exactly at the limit: must NOT fire
    sim.run_before(at_micros(10));
    assert_eq!(hits.get(), 1, "the event at the limit is left pending");
    assert_eq!(sim.now(), at_micros(10), "clock still lands on the limit");
    // The deferred event is the next thing to run, at its original time.
    assert_eq!(sim.next_event_time(), Some(at_micros(10)));
    sim.run_before(at_micros(20));
    assert_eq!(hits.get(), 2);
}

#[test]
fn clock_lands_on_the_limit_even_without_events() {
    let sim = Sim::new();
    sim.run_until(at_micros(7));
    assert_eq!(sim.now(), at_micros(7));
    sim.run_before(at_micros(9));
    assert_eq!(sim.now(), at_micros(9));
    // run() with no events at all leaves the clock untouched.
    let idle = Sim::new();
    assert_eq!(idle.run(), SimTime::ZERO);
}

#[test]
fn run_for_accumulates_from_the_current_instant() {
    let sim = Sim::new();
    let hits = Rc::new(Cell::new(0));
    mark_at(&sim, 4, &hits);
    mark_at(&sim, 8, &hits);
    sim.run_for(Duration::from_micros(4));
    assert_eq!((hits.get(), sim.now()), (1, at_micros(4)));
    sim.run_for(Duration::from_micros(4));
    assert_eq!(
        (hits.get(), sim.now()),
        (2, at_micros(8)),
        "4+4 = 8, inclusive"
    );
}

#[test]
fn next_event_time_tracks_ready_then_timers_then_quiescence() {
    let sim = Sim::new();
    assert_eq!(sim.next_event_time(), None, "empty sim is quiescent");
    let hits = Rc::new(Cell::new(0));
    mark_at(&sim, 6, &hits);
    // The freshly spawned task is ready at the current instant.
    assert_eq!(sim.next_event_time(), Some(SimTime::ZERO));
    sim.run_before(at_micros(3));
    // Only the timer remains.
    assert_eq!(sim.next_event_time(), Some(at_micros(6)));
    sim.run();
    assert_eq!(sim.next_event_time(), None, "quiescent after the timer");
    // A permanently blocked task does not count as a pending event.
    let (_tx, mut rx) = simcore::sync::mpsc::channel::<u8>();
    sim.spawn(async move {
        rx.recv().await;
    });
    sim.run();
    assert_eq!(sim.next_event_time(), None);
    assert_eq!(sim.live_tasks(), 1, "...but it is still live");
}

#[test]
#[should_panic(expected = "re-entered")]
fn reentering_the_run_loop_from_a_task_panics() {
    let sim = Sim::new();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.run_until(at_micros(1));
    });
    sim.run();
}

#[test]
fn scope_nests_setup_without_running() {
    let sim = Sim::new();
    let hits = Rc::new(Cell::new(0));
    let h2 = hits.clone();
    sim.scope(|| {
        // Free-function spawn resolves to this sim inside the scope.
        simcore::spawn(async move {
            simcore::sleep(Duration::from_micros(1)).await;
            h2.set(1);
        });
        assert_eq!(simcore::now(), SimTime::ZERO);
    });
    assert_eq!(hits.get(), 0, "scope itself runs nothing");
    sim.run();
    assert_eq!(hits.get(), 1);
}
