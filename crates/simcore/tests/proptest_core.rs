//! Property tests for simcore's measurement and synchronization primitives.

use proptest::prelude::*;
use simcore::{Histogram, Sim, SimRng};
use std::rc::Rc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles are within the documented ~1.6% + 1 relative
    /// error bound of the true quantile (two-sided: interpolation inside
    /// the resolved sub-bucket can land on either side of the truth, but
    /// never outside the sub-bucket that holds it).
    #[test]
    fn histogram_quantile_error_bound(
        mut values in proptest::collection::vec(0u64..10_000_000_000, 10..500),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in qs {
            let est = h.quantile(q);
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let bound = truth as f64 / 32.0 + 1.0;
            prop_assert!(
                (est as f64 - truth as f64).abs() <= bound,
                "quantile({q}) = {est}, true {truth}, off by more than {bound}"
            );
        }
        // Mean is exact.
        let mean_true = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean_true).abs() < 1e-6 * mean_true.max(1.0));
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), *values.last().unwrap());
    }

    /// Merging per-node histograms is equivalent to recording every value
    /// into a single histogram: identical counts, extrema, mean, and
    /// quantiles at any rank.
    #[test]
    fn histogram_merge_equals_sequential_record(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000_000_000, 0..200),
            1..6,
        ),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let merged = Histogram::new();
        let sequential = Histogram::new();
        for part in &parts {
            let node = Histogram::new();
            for &v in part {
                node.record(v);
                sequential.record(v);
            }
            merged.merge(&node);
        }
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.min(), sequential.min());
        prop_assert_eq!(merged.max(), sequential.max());
        prop_assert_eq!(merged.mean(), sequential.mean());
        for q in qs {
            prop_assert_eq!(merged.quantile(q), sequential.quantile(q), "q = {}", q);
        }
    }

    /// Sleeps complete in exactly deadline order regardless of spawn order.
    #[test]
    fn sleeps_complete_in_deadline_order(delays in proptest::collection::vec(0u64..1_000_000, 1..40)) {
        let sim = Sim::new();
        let order: Rc<std::cell::RefCell<Vec<(u64, usize)>>> = Rc::new(std::cell::RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let order = order.clone();
            sim.spawn(async move {
                simcore::sleep(Duration::from_nanos(d)).await;
                order.borrow_mut().push((simcore::now().nanos(), i));
            });
        }
        sim.run();
        let fired = order.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        // Completion times are the requested delays, in sorted order; ties
        // broken by spawn index.
        let mut expect: Vec<(u64, usize)> = delays.iter().copied().zip(0..).collect();
        expect.sort();
        prop_assert_eq!(&fired[..], &expect[..]);
    }

    /// The RNG's weighted pick covers exactly the declared support.
    #[test]
    fn pick_weighted_in_range(weights in proptest::collection::vec(0.01f64..10.0, 1..6), seed in any::<u64>()) {
        let rng = SimRng::new(seed);
        for _ in 0..100 {
            let i = rng.pick_weighted(&weights);
            prop_assert!(i < weights.len());
        }
    }

    /// Semaphore never over-admits under random acquire/release patterns.
    #[test]
    fn semaphore_never_over_admits(
        permits in 1u64..5,
        tasks in 1usize..30,
        seed in any::<u64>(),
    ) {
        let sim = Sim::new();
        let sem = simcore::sync::Semaphore::new(permits);
        let active = Rc::new(std::cell::Cell::new(0u64));
        let violated = Rc::new(std::cell::Cell::new(false));
        let rng = SimRng::new(seed);
        for _ in 0..tasks {
            let sem = sem.clone();
            let active = active.clone();
            let violated = violated.clone();
            let hold = rng.gen_range(500) + 1;
            let start = rng.gen_range(1000);
            sim.spawn(async move {
                simcore::sleep(Duration::from_nanos(start)).await;
                let _p = sem.acquire_one().await;
                active.set(active.get() + 1);
                if active.get() > permits {
                    violated.set(true);
                }
                simcore::sleep(Duration::from_nanos(hold)).await;
                active.set(active.get() - 1);
            });
        }
        sim.run();
        prop_assert!(!violated.get(), "semaphore admitted more than {permits}");
        prop_assert_eq!(sem.available(), permits, "all permits returned");
    }
}
