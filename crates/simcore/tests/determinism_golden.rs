//! Golden determinism fingerprints for the executor.
//!
//! These tests pin the exact `(poll_count, final_time)` of fixed workloads.
//! The fingerprints were captured on the original HashMap-based scheduler and
//! must survive any executor-internals rewrite bit-for-bit: every published
//! figure in `results/` depends on the engine replaying the same event order.
//!
//! If a change legitimately alters scheduling semantics (not just internals),
//! the new values must be re-recorded here *and* every `results/*.csv`
//! regenerated in the same commit, with the change called out in DESIGN.md.

use simcore::sync::{mpsc, oneshot, Notify, Semaphore};
use simcore::{Sim, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

/// A mixed workload touching every wakeup path the executor has: timers
/// (including colliding deadlines), yield_now, mpsc, oneshot, semaphores,
/// notify, timeouts, nested spawn, and cross-task join handles.
fn mixed_workload() -> (u64, u64, u64) {
    let sim = Sim::new();
    let checksum = Rc::new(Cell::new(0u64));

    // 8 producers -> 1 consumer over an mpsc channel, with staggered and
    // deliberately colliding sleep deadlines plus periodic yields.
    let (tx, mut rx) = mpsc::channel::<u64>();
    for p in 0..8u64 {
        let tx = tx.clone();
        sim.spawn(async move {
            for i in 0..24u64 {
                // p=0 and p=4 collide on every deadline; others interleave.
                let ns = (p % 4) * 50 + i * 100 + 1;
                simcore::sleep(Duration::from_nanos(ns)).await;
                if i % 3 == 0 {
                    simcore::yield_now().await;
                }
                let _ = tx.send(p * 1_000 + i);
            }
        });
    }
    drop(tx);
    {
        let checksum = checksum.clone();
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                checksum.set(checksum.get().wrapping_mul(31).wrapping_add(v));
            }
        });
    }

    // Semaphore contention: 12 workers over 3 permits, nested spawns inside.
    let sem = Rc::new(Semaphore::new(3));
    for w in 0..12u64 {
        let sem = sem.clone();
        let checksum = checksum.clone();
        sim.spawn(async move {
            let permit = sem.acquire_one().await;
            simcore::sleep(Duration::from_nanos(70 + w * 11)).await;
            let inner = simcore::spawn(async move {
                simcore::yield_now().await;
                w * 7
            });
            checksum.set(checksum.get() ^ inner.await);
            permit.release();
        });
    }

    // Notify fan-out: one notifier, 5 waiters woken one by one.
    let notify = Rc::new(Notify::new());
    for _ in 0..5 {
        let notify = notify.clone();
        let checksum = checksum.clone();
        sim.spawn(async move {
            notify.notified().await;
            checksum.set(checksum.get().rotate_left(3) ^ 0x9E37);
        });
    }
    {
        let notify = notify.clone();
        sim.spawn(async move {
            for _ in 0..5 {
                simcore::sleep(Duration::from_nanos(333)).await;
                notify.notify_one();
            }
        });
    }

    // Oneshot + timeout: one arrives in time, one times out.
    let (otx, orx) = oneshot::channel::<u64>();
    sim.spawn(async move {
        simcore::sleep(Duration::from_nanos(500)).await;
        let _ = otx.send(42);
    });
    {
        let checksum = checksum.clone();
        sim.spawn(async move {
            match simcore::timeout(Duration::from_micros(1), orx).await {
                Ok(Ok(v)) => checksum.set(checksum.get() + v),
                _ => checksum.set(checksum.get() + 1_000_000),
            }
        });
    }
    let (ltx, lrx) = oneshot::channel::<u64>();
    sim.spawn(async move {
        simcore::sleep(Duration::from_millis(10)).await;
        let _ = ltx.send(7);
    });
    {
        let checksum = checksum.clone();
        sim.spawn(async move {
            match simcore::timeout(Duration::from_micros(2), lrx).await {
                Ok(_) => checksum.set(checksum.get() + 2_000_000),
                Err(_) => checksum.set(checksum.get() + 3_000_000),
            }
        });
    }

    let end = sim.run();
    (sim.poll_count(), end.nanos(), checksum.get())
}

/// Captured on the seed executor (HashMap scheduler, per-poll waker alloc).
/// See module docs before ever changing these numbers.
const GOLDEN_POLLS: u64 = 454;
const GOLDEN_END_NS: u64 = 10_000_000;
const GOLDEN_CHECKSUM: u64 = 6_102_637_803_945_526_047;

#[test]
fn mixed_workload_matches_golden_fingerprint() {
    let (polls, end_ns, checksum) = mixed_workload();
    assert_eq!(
        (polls, end_ns, checksum),
        (GOLDEN_POLLS, GOLDEN_END_NS, GOLDEN_CHECKSUM),
        "executor fingerprint drifted: scheduling order is no longer \
         reproducing the seed executor's event order"
    );
}

#[test]
fn mixed_workload_is_self_consistent() {
    // Independent of the golden values: two runs in one process must agree.
    assert_eq!(mixed_workload(), mixed_workload());
}

/// A miniature chaos schedule built from executor primitives only: a fault
/// driver forked from the seed rng toggles an outage flag on random windows
/// while workers with randomized think times retry around it. This is the
/// same shape as the full `bench::chaos` harness (seeded rng -> fault
/// windows -> retries), pinned here at the executor level so a determinism
/// regression is caught without the network stack in the loop.
fn chaos_schedule(seed: u64) -> (u64, u64, u64) {
    let sim = Sim::new();
    let rng = simcore::SimRng::new(seed);
    let checksum = Rc::new(Cell::new(0u64));
    let outage = Rc::new(Cell::new(false));
    let stop = Rc::new(Cell::new(false));

    // Fault driver: random outage windows separated by random gaps.
    {
        let rng = rng.fork();
        let outage = outage.clone();
        let stop = stop.clone();
        sim.spawn(async move {
            while !stop.get() {
                simcore::sleep(Duration::from_nanos(rng.gen_range_in(200, 900))).await;
                outage.set(true);
                simcore::sleep(Duration::from_nanos(rng.gen_range_in(100, 500))).await;
                outage.set(false);
            }
        });
    }

    // Workers: randomized think time, an "RPC" that fails during outages
    // and succeeds otherwise after a randomized service time, with one
    // retry after a backoff. Results fold into an order-sensitive checksum.
    let (tx, mut rx) = mpsc::channel::<u64>();
    for w in 0..6u64 {
        let rng = rng.fork();
        let outage = outage.clone();
        let tx = tx.clone();
        sim.spawn(async move {
            for i in 0..30u64 {
                simcore::sleep(Duration::from_nanos(rng.gen_range_in(50, 400))).await;
                let mut value = w * 1_000 + i;
                for attempt in 0..2u64 {
                    simcore::sleep(Duration::from_nanos(rng.gen_range_in(20, 120))).await;
                    if !outage.get() {
                        value = value.wrapping_add(attempt << 32);
                        break;
                    }
                    // Backoff with jitter before the retry.
                    simcore::sleep(Duration::from_nanos(100 + rng.gen_range(100))).await;
                    value |= 1 << 63; // mark as faulted at least once
                }
                let _ = tx.send(value);
            }
        });
    }
    drop(tx);
    {
        let checksum = checksum.clone();
        let stop = stop.clone();
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                checksum.set(checksum.get().wrapping_mul(31).wrapping_add(v));
            }
            stop.set(true);
        });
    }

    let end = sim.run();
    (sim.poll_count(), end.nanos(), checksum.get())
}

/// Captured alongside the chaos harness (PR: fault-injection plane). Same
/// re-recording rules as the mixed-workload golden above.
const CHAOS_GOLDEN: (u64, u64, u64) = (738, 14_667, 1_943_921_390_664_385_614);

#[test]
fn chaos_schedule_matches_golden_fingerprint() {
    assert_eq!(
        chaos_schedule(0xC4A05),
        CHAOS_GOLDEN,
        "chaos-schedule fingerprint drifted: seeded fault windows no longer \
         replay the same executor event order"
    );
}

#[test]
fn chaos_schedule_reproducible_and_seed_sensitive() {
    assert_eq!(chaos_schedule(7), chaos_schedule(7));
    assert_ne!(chaos_schedule(7), chaos_schedule(8), "seed has no effect");
}

#[test]
fn run_until_stops_at_virtual_limit() {
    let sim = Sim::new();
    sim.spawn(async {
        loop {
            simcore::sleep(Duration::from_nanos(100)).await;
        }
    });
    sim.run_until(SimTime::from_nanos(1_000));
    assert_eq!(sim.now(), SimTime::from_nanos(1_000));
}
