//! Edge-case tests for the dmrpc public API: mismatched backends, double
//! release, zero-sized values, threshold boundaries, and DmAddr arithmetic.

use std::rc::Rc;

use bytes::Bytes;
use dmcxl::{CxlFabric, CxlHostConfig};
use dmnet::{start_pool, DmNetClient, DmServerConfig};
use dmrpc::{DmAddr, DmError, DmHandle, DmRpc, Value, DEFAULT_THRESHOLD};
use memsim::ModelParams;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

fn net_rig() -> (Sim, Network) {
    (Sim::new(), Network::new(FabricConfig::default(), 7))
}

#[test]
fn mismatched_backend_refs_rejected() {
    let (sim, net) = net_rig();
    sim.block_on(async move {
        let dm_node = net.add_node("dm", NicConfig::default());
        let c_node = net.add_node("c", NicConfig::default());
        let coord = net.add_node("coord", NicConfig::default());
        let params = ModelParams::new();
        let pool = start_pool(&net, &[dm_node], &params, DmServerConfig::default());
        let fabric = CxlFabric::new(&net, coord, 256, params, CxlHostConfig::default());

        let rpc = RpcBuilder::new(&net, c_node, 100).build();
        let net_dm = DmHandle::Net(Rc::new(
            DmNetClient::connect(rpc.clone(), vec![pool[0].addr()])
                .await
                .unwrap(),
        ));
        let cxl_dm = DmHandle::Cxl(fabric.new_host(rpc));

        // A ref minted by one backend must be rejected by the other.
        let net_ref = net_dm.put(&Bytes::from(vec![1u8; 8192])).await.unwrap();
        let cxl_ref = cxl_dm.put(&Bytes::from(vec![2u8; 8192])).await.unwrap();
        assert_eq!(
            cxl_dm.map_ref(&net_ref).await.unwrap_err(),
            DmError::InvalidRef
        );
        assert_eq!(
            net_dm.map_ref(&cxl_ref).await.unwrap_err(),
            DmError::InvalidRef
        );
        // Cross-backend addresses too.
        let net_addr = net_dm.alloc(4096).await.unwrap();
        assert!(matches!(net_addr, DmAddr::Net(_)));
        assert_eq!(
            cxl_dm.read(net_addr, 1).await.unwrap_err(),
            DmError::InvalidAddress
        );
        net_dm.release_ref(&net_ref).await.unwrap();
        cxl_dm.release_ref(&cxl_ref).await.unwrap();
    });
}

#[test]
fn double_release_is_an_error_not_corruption() {
    let (sim, net) = net_rig();
    sim.block_on(async move {
        let dm_node = net.add_node("dm", NicConfig::default());
        let c_node = net.add_node("c", NicConfig::default());
        let params = ModelParams::new();
        let pool = start_pool(&net, &[dm_node], &params, DmServerConfig::default());
        let rpc = RpcBuilder::new(&net, c_node, 100).build();
        let dm = DmHandle::Net(Rc::new(
            DmNetClient::connect(rpc, vec![pool[0].addr()])
                .await
                .unwrap(),
        ));
        let r = dm.put(&Bytes::from(vec![1u8; 8192])).await.unwrap();
        dm.release_ref(&r).await.unwrap();
        assert_eq!(dm.release_ref(&r).await.unwrap_err(), DmError::InvalidRef);
        // Reading a released ref is an error, never stale data.
        assert_eq!(dm.get_all(&r).await.unwrap_err(), DmError::InvalidRef);
        pool[0].with_page_manager(|pm| pm.check_invariants());
    });
}

#[test]
fn threshold_boundary_is_exact() {
    let (sim, net) = net_rig();
    sim.block_on(async move {
        let dm_node = net.add_node("dm", NicConfig::default());
        let c_node = net.add_node("c", NicConfig::default());
        let params = ModelParams::new();
        let pool = start_pool(&net, &[dm_node], &params, DmServerConfig::default());
        let rpc = RpcBuilder::new(&net, c_node, 100).build();
        let dm = DmNetClient::connect(rpc.clone(), vec![pool[0].addr()])
            .await
            .unwrap();
        let ep = DmRpc::new(rpc, DmHandle::Net(Rc::new(dm)));
        let just_under = ep
            .make_value(Bytes::from(vec![1u8; DEFAULT_THRESHOLD as usize - 1]))
            .await
            .unwrap();
        let exactly = ep
            .make_value(Bytes::from(vec![1u8; DEFAULT_THRESHOLD as usize]))
            .await
            .unwrap();
        assert!(!just_under.is_by_ref(), "size < threshold stays inline");
        assert!(exactly.is_by_ref(), "size == threshold goes by ref");
        ep.release(&exactly).await.unwrap();
    });
}

#[test]
fn empty_value_stays_inline_and_roundtrips() {
    let (sim, net) = net_rig();
    sim.block_on(async move {
        let c_node = net.add_node("c", NicConfig::default());
        let ep = DmRpc::baseline(RpcBuilder::new(&net, c_node, 100).build());
        let v = ep.make_value(Bytes::new()).await.unwrap();
        assert!(v.is_empty());
        assert_eq!(ep.fetch(&v).await.unwrap(), Bytes::new());
        assert_eq!(ep.overwrite_fraction(&v, 1.0).await.unwrap(), 0);
    });
}

#[test]
fn dm_addr_offset_arithmetic() {
    let net_addr = DmAddr::Net(dmcommon::RemoteAddr {
        server: dmcommon::DmServerId(0),
        pid: dmcommon::GlobalPid(1),
        va: 0x1000,
    });
    match net_addr.offset(0x234) {
        DmAddr::Net(a) => assert_eq!(a.va, 0x1234),
        _ => panic!("variant changed"),
    }
    let cxl_addr = DmAddr::Cxl(0x2000);
    match cxl_addr.offset(8) {
        DmAddr::Cxl(va) => assert_eq!(va, 0x2008),
        _ => panic!("variant changed"),
    }
}

#[test]
fn fetch_byref_without_dm_backend_fails_cleanly() {
    let (sim, net) = net_rig();
    sim.block_on(async move {
        let c_node = net.add_node("c", NicConfig::default());
        let ep = DmRpc::baseline(RpcBuilder::new(&net, c_node, 100).build());
        let bogus = Value::ByRef(dmcommon::Ref::Net {
            server: dmcommon::DmServerId(0),
            key: 1,
            len: 4096,
        });
        assert_eq!(ep.fetch(&bogus).await.unwrap_err(), DmError::InvalidRef);
        assert_eq!(ep.release(&bogus).await.unwrap_err(), DmError::InvalidRef);
    });
}
