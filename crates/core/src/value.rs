//! [`Value`]: the size-aware RPC argument (paper §IV-B "Size-aware
//! transfer").
//!
//! Small arguments are passed **by value** (inline in the RPC message, like
//! any traditional RPC); large arguments are passed **by reference** as a
//! [`dmcommon::Ref`] into disaggregated memory. "DmRPC would automatically
//! choose the appropriate mode based on the parameter object size, while
//! users are not aware of the two different modes."

use bytes::{Bytes, BytesMut};
use dmcommon::{DmError, DmResult, Ref};

/// An RPC argument: either inline bytes or a DM reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Pass-by-value payload (small objects).
    Inline(Bytes),
    /// Pass-by-reference token (large objects live in DM).
    ByRef(Ref),
}

impl Value {
    /// Logical length of the argument in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Value::Inline(b) => b.len() as u64,
            Value::ByRef(r) => r.len(),
        }
    }

    /// Whether the argument is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes this argument occupies on the wire when forwarded — the whole
    /// point of pass-by-reference is that this stays tiny for `ByRef`.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Value::Inline(b) => 1 + b.len(),
            Value::ByRef(r) => 1 + r.wire_bytes(),
        }
    }

    /// Whether this is a reference.
    pub fn is_by_ref(&self) -> bool {
        matches!(self, Value::ByRef(_))
    }

    /// Encode for transport.
    pub fn encode(&self) -> Bytes {
        match self {
            Value::Inline(b) => {
                let mut out = BytesMut::with_capacity(1 + b.len());
                out.extend_from_slice(&[0u8]);
                out.extend_from_slice(b);
                out.freeze()
            }
            Value::ByRef(r) => {
                let enc = r.encode();
                let mut out = BytesMut::with_capacity(1 + enc.len());
                out.extend_from_slice(&[1u8]);
                out.extend_from_slice(&enc);
                out.freeze()
            }
        }
    }

    /// Decode from transport.
    pub fn decode(b: &Bytes) -> DmResult<Value> {
        match b.first() {
            Some(0) => Ok(Value::Inline(b.slice(1..))),
            Some(1) => Ok(Value::ByRef(Ref::decode(&b[1..])?)),
            _ => Err(DmError::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcommon::DmServerId;

    #[test]
    fn inline_roundtrip() {
        let v = Value::Inline(Bytes::from_static(b"small payload"));
        let enc = v.encode();
        assert_eq!(Value::decode(&enc).unwrap(), v);
        assert_eq!(v.len(), 13);
        assert_eq!(v.wire_bytes(), 14);
        assert!(!v.is_by_ref());
    }

    #[test]
    fn byref_roundtrip_and_stays_small() {
        let v = Value::ByRef(Ref::Net {
            server: DmServerId(1),
            key: 7,
            len: 1 << 20,
        });
        let enc = v.encode();
        assert_eq!(Value::decode(&enc).unwrap(), v);
        assert_eq!(v.len(), 1 << 20);
        assert!(
            v.wire_bytes() < 32,
            "1 MiB argument forwards as a few bytes"
        );
        assert!(v.is_by_ref());
    }

    #[test]
    fn cxl_ref_roundtrip() {
        let v = Value::ByRef(Ref::Cxl {
            len: 8192,
            pages: vec![4, 9],
        });
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(Value::decode(&Bytes::new()).is_err());
        assert!(Value::decode(&Bytes::from_static(&[9, 9])).is_err());
        assert!(Value::decode(&Bytes::from_static(&[1, 200])).is_err());
    }

    #[test]
    fn empty_inline() {
        let v = Value::Inline(Bytes::new());
        assert!(v.is_empty());
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }
}
