//! [`DmHandle`]: one interface over both DM backends.
//!
//! The paper's two DM implementations differ only in how data is moved —
//! explicit `rread`/`rwrite` messages for DmRPC-net versus `load`/`store`
//! instructions for DmRPC-CXL (Table II). `DmHandle` erases that difference
//! for the DmRPC layer and the applications.

use std::rc::Rc;

use bytes::Bytes;
use dmcommon::{DmError, DmResult, Ref, RemoteAddr};
use dmcxl::CxlHost;
use dmnet::DmNetClient;

/// An address in whichever backend is in use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmAddr {
    /// Network backend address.
    Net(RemoteAddr),
    /// CXL virtual address of the calling process.
    Cxl(u64),
}

impl DmAddr {
    /// Offset the address by `delta` bytes.
    pub fn offset(&self, delta: u64) -> DmAddr {
        match self {
            DmAddr::Net(a) => DmAddr::Net(a.offset(delta)),
            DmAddr::Cxl(va) => DmAddr::Cxl(va + delta),
        }
    }
}

/// Backend-erased handle to disaggregated memory for one process.
#[derive(Clone)]
pub enum DmHandle {
    /// Network-attached DM (DmRPC-net).
    Net(Rc<DmNetClient>),
    /// CXL G-FAM DM (DmRPC-CXL).
    Cxl(Rc<CxlHost>),
}

impl DmHandle {
    /// The network backend's client, if this is a DmRPC-net handle.
    /// Benches read its wire counters and cache statistics; tests use it
    /// to flush the client cache before asserting server-side state.
    pub fn net_client(&self) -> Option<&Rc<DmNetClient>> {
        match self {
            DmHandle::Net(c) => Some(c),
            DmHandle::Cxl(_) => None,
        }
    }

    /// Allocate `len` bytes of DM.
    pub async fn alloc(&self, len: u64) -> DmResult<DmAddr> {
        match self {
            DmHandle::Net(c) => Ok(DmAddr::Net(c.ralloc(len).await?)),
            DmHandle::Cxl(h) => Ok(DmAddr::Cxl(h.alloc(len)?)),
        }
    }

    /// Free a region.
    pub async fn free(&self, addr: DmAddr) -> DmResult<()> {
        match (self, addr) {
            (DmHandle::Net(c), DmAddr::Net(a)) => c.rfree(a).await,
            (DmHandle::Cxl(h), DmAddr::Cxl(va)) => h.free(va),
            _ => Err(DmError::InvalidAddress),
        }
    }

    /// Write `data` at `addr` (rwrite / store).
    pub async fn write(&self, addr: DmAddr, data: &Bytes) -> DmResult<()> {
        match (self, addr) {
            (DmHandle::Net(c), DmAddr::Net(a)) => c.rwrite(a, data).await,
            (DmHandle::Cxl(h), DmAddr::Cxl(va)) => h.store(va, data).await,
            _ => Err(DmError::InvalidAddress),
        }
    }

    /// Read `len` bytes at `addr` (rread / load).
    pub async fn read(&self, addr: DmAddr, len: u64) -> DmResult<Bytes> {
        match (self, addr) {
            (DmHandle::Net(c), DmAddr::Net(a)) => c.rread(a, len).await,
            (DmHandle::Cxl(h), DmAddr::Cxl(va)) => h.load(va, len).await,
            _ => Err(DmError::InvalidAddress),
        }
    }

    /// Create a shareable reference over `[addr, addr+len)`.
    pub async fn create_ref(&self, addr: DmAddr, len: u64) -> DmResult<Ref> {
        match (self, addr) {
            (DmHandle::Net(c), DmAddr::Net(a)) => c.create_ref(a, len).await,
            (DmHandle::Cxl(h), DmAddr::Cxl(va)) => h.create_ref(va, len).await,
            _ => Err(DmError::InvalidAddress),
        }
    }

    /// Map a reference into this process's DM address space.
    pub async fn map_ref(&self, r: &Ref) -> DmResult<DmAddr> {
        match self {
            DmHandle::Net(c) => Ok(DmAddr::Net(c.map_ref(r).await?)),
            DmHandle::Cxl(h) => Ok(DmAddr::Cxl(h.map_ref(r).await?)),
        }
    }

    /// Release a reference's pin.
    pub async fn release_ref(&self, r: &Ref) -> DmResult<()> {
        match self {
            DmHandle::Net(c) => c.release_ref(r).await,
            DmHandle::Cxl(h) => h.release_ref(r).await,
        }
    }

    /// Store `data` into DM and return a shareable [`Ref`], using each
    /// backend's fastest path. The creator's own mapping is released
    /// immediately (asynchronously for the network backend): the `Ref`
    /// keeps the pages alive, matching Listing 1's `rfree` after the call.
    pub async fn put(&self, data: &Bytes) -> DmResult<Ref> {
        match self {
            DmHandle::Net(c) => c.put_ref(data).await,
            DmHandle::Cxl(h) => {
                let va = h.alloc(data.len() as u64)?;
                h.store(va, data).await?;
                let r = h.create_ref(va, data.len() as u64).await?;
                h.free(va)?;
                Ok(r)
            }
        }
    }

    /// Migrate a globally-keyed reference to DM server `dst` (the sharded
    /// network backend only — see DESIGN.md §13). The CXL backend has one
    /// flat G-FAM pool, so there is nowhere to migrate to.
    pub async fn migrate(&self, r: &Ref, dst: dmcommon::DmServerId) -> DmResult<()> {
        match self {
            DmHandle::Net(c) => c.migrate_ref(r, dst).await,
            DmHandle::Cxl(_) => Err(DmError::InvalidRef),
        }
    }

    /// Materialize a reference's full contents, using each backend's
    /// fastest path (one-RTT `read_ref` for net; map + load + unmap for
    /// CXL, all local operations).
    pub async fn get_all(&self, r: &Ref) -> DmResult<Bytes> {
        match self {
            DmHandle::Net(c) => c.read_ref(r, 0, r.len()).await,
            DmHandle::Cxl(h) => {
                let va = h.map_ref(r).await?;
                let data = h.load(va, r.len()).await?;
                h.free(va)?;
                Ok(data)
            }
        }
    }
}
