//! # dmrpc — Disaggregated-Memory-aware Datacenter RPC
//!
//! Reproduction of **"DmRPC: Disaggregated Memory-aware Datacenter RPC for
//! Data-intensive Applications"** (ICDE 2024). DmRPC layers *pass-by-
//! reference* semantics over a datacenter RPC:
//!
//! * large arguments live in **disaggregated memory** and travel through
//!   RPC chains as tiny [`Ref`] tokens ([`Value::ByRef`]), eliminating the
//!   redundant per-hop data movement of pass-by-value RPC;
//! * a page-granularity **copy-on-write** layer in the DM backend keeps
//!   microservices decoupled: logically, every service owns a private copy,
//!   but bytes are only copied when (and where) someone writes;
//! * **size-aware transfer** keeps small arguments inline, so DM management
//!   overhead is never paid where it cannot win.
//!
//! Two DM backends are supported behind [`DmHandle`]: network-attached
//! ([`dmnet`]) and CXL G-FAM ([`dmcxl`]). With [`Transfer::PassByValue`]
//! the same API degrades to the eRPC baseline, which is how the paper's
//! comparisons are run.
//!
//! ## Quick start
//!
//! ```no_run
//! use std::rc::Rc;
//! use bytes::Bytes;
//! use dmrpc::{DmRpc, Transfer, Value};
//!
//! async fn example(client: Rc<DmRpc>, worker: simnet::Addr) {
//!     // 1 MiB argument: stored in DM once, forwarded as a ~18-byte Ref.
//!     let arg = client.make_value(Bytes::from(vec![7u8; 1 << 20])).await.unwrap();
//!     let reply = client.call(worker, 1, &arg).await.unwrap();
//!     let result = client.fetch(&reply).await.unwrap();
//!     client.release(&arg).await.unwrap();
//!     assert!(!result.is_empty());
//! }
//! ```

#![warn(missing_docs)]

mod handle;
mod value;

pub use dmcommon::{CopyMode, DmError, DmResult, Ref, PAGE_SIZE};
pub use handle::{DmAddr, DmHandle};
pub use value::Value;

use std::rc::Rc;

use bytes::Bytes;
use rpclib::Rpc;
use simnet::Addr;

/// Default pass-by-reference threshold: one page. Arguments of at least
/// this size go to DM; smaller ones ride inline (paper §IV-B).
pub const DEFAULT_THRESHOLD: u64 = PAGE_SIZE as u64;

/// How large arguments are transferred.
#[derive(Clone)]
pub enum Transfer {
    /// Always inline — the eRPC pass-by-value baseline.
    PassByValue,
    /// Pass-by-reference through disaggregated memory for large arguments.
    Dm(DmHandle),
}

/// The DmRPC endpoint for one microservice process: an RPC endpoint plus a
/// transfer policy.
pub struct DmRpc {
    rpc: Rc<Rpc>,
    transfer: Transfer,
    threshold: u64,
}

impl DmRpc {
    /// Wrap `rpc` with pass-by-value semantics (the baseline).
    pub fn baseline(rpc: Rc<Rpc>) -> Rc<DmRpc> {
        Rc::new(DmRpc {
            rpc,
            transfer: Transfer::PassByValue,
            threshold: u64::MAX,
        })
    }

    /// Wrap `rpc` with DM-backed pass-by-reference for arguments of at
    /// least [`DEFAULT_THRESHOLD`] bytes.
    pub fn new(rpc: Rc<Rpc>, dm: DmHandle) -> Rc<DmRpc> {
        Self::with_threshold(rpc, dm, DEFAULT_THRESHOLD)
    }

    /// Like [`DmRpc::new`] with an explicit size threshold (the size-aware
    /// transfer ablation).
    pub fn with_threshold(rpc: Rc<Rpc>, dm: DmHandle, threshold: u64) -> Rc<DmRpc> {
        Rc::new(DmRpc {
            rpc,
            transfer: Transfer::Dm(dm),
            threshold,
        })
    }

    /// The underlying RPC endpoint (handler registration, address).
    pub fn rpc(&self) -> &Rc<Rpc> {
        &self.rpc
    }

    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr()
    }

    /// The DM handle, if pass-by-reference is enabled.
    pub fn dm(&self) -> Option<&DmHandle> {
        match &self.transfer {
            Transfer::PassByValue => None,
            Transfer::Dm(h) => Some(h),
        }
    }

    /// Turn raw bytes into an RPC argument, automatically choosing inline
    /// vs DM-reference by size (paper §IV-B, Listing 1 lines 2–6).
    ///
    /// For the by-reference path the creator's own mapping is freed right
    /// away — the `Ref` keeps the pages alive — matching Listing 1's
    /// `rfree` after the call.
    pub async fn make_value(&self, data: Bytes) -> DmResult<Value> {
        match &self.transfer {
            Transfer::PassByValue => Ok(Value::Inline(data)),
            Transfer::Dm(_) if (data.len() as u64) < self.threshold => Ok(Value::Inline(data)),
            Transfer::Dm(dm) => Ok(Value::ByRef(dm.put(&data).await?)),
        }
    }

    /// Materialize an argument's bytes locally (Listing 1's
    /// `map_ref` + `rread`). For `ByRef`, the temporary mapping is freed
    /// after reading.
    pub async fn fetch(&self, v: &Value) -> DmResult<Bytes> {
        match v {
            Value::Inline(b) => Ok(b.clone()),
            Value::ByRef(r) => {
                let dm = self.dm().ok_or(DmError::InvalidRef)?;
                dm.get_all(r).await
            }
        }
    }

    /// Map a by-reference argument for fine-grained access. Returns `None`
    /// for inline values (the bytes are already local).
    pub async fn map_value(&self, v: &Value) -> DmResult<Option<MappedValue>> {
        match v {
            Value::Inline(_) => Ok(None),
            Value::ByRef(r) => {
                let dm = self.dm().ok_or(DmError::InvalidRef)?.clone();
                let addr = dm.map_ref(r).await?;
                Ok(Some(MappedValue {
                    dm,
                    addr,
                    len: r.len(),
                }))
            }
        }
    }

    /// Overwrite the leading `frac` (0.0–1.0) of a shared argument —
    /// exercising COW from the receiver side (the Fig. 8 write-percentage
    /// micro-benchmark). Returns bytes written.
    pub async fn overwrite_fraction(&self, v: &Value, frac: f64) -> DmResult<u64> {
        let n = ((v.len() as f64) * frac.clamp(0.0, 1.0)).round() as u64;
        if n == 0 {
            return Ok(0);
        }
        match self.map_value(v).await? {
            None => Ok(n), // inline: the caller's local buffer, no DM work
            Some(m) => {
                m.write(0, &Bytes::from(vec![0xD7u8; n as usize])).await?;
                m.close().await?;
                Ok(n)
            }
        }
    }

    /// Release a by-reference argument's pin on its DM pages. No-op for
    /// inline values.
    pub async fn release(&self, v: &Value) -> DmResult<()> {
        match v {
            Value::Inline(_) => Ok(()),
            Value::ByRef(r) => {
                let dm = self.dm().ok_or(DmError::InvalidRef)?;
                dm.release_ref(r).await
            }
        }
    }

    /// Release a by-reference argument without waiting for the round trip
    /// (fire-and-forget; the common pattern at the end of a request).
    pub fn release_async(self: &Rc<Self>, v: Value) {
        if let Value::ByRef(_) = &v {
            let me = self.clone();
            // Carry the caller's trace context into the detached task so
            // the release (direct or via the coalescer) stays attributed
            // to the request that dropped the ref.
            let ctx = telemetry::current_ctx();
            simcore::spawn(async move {
                let _ctx = ctx.and_then(telemetry::set_ctx);
                let _ = me.release(&v).await;
            });
        }
    }

    /// Call a remote handler with an argument, returning its result value.
    pub async fn call(&self, dst: Addr, req_type: u8, v: &Value) -> DmResult<Value> {
        let resp = self
            .rpc
            .call(dst, req_type, v.encode())
            .await
            .map_err(|_| DmError::Transport)?;
        Value::decode(&resp)
    }
}

/// A mapped by-reference argument: fine-grained reads and writes against
/// the process's own (COW-isolated) view.
pub struct MappedValue {
    dm: DmHandle,
    addr: DmAddr,
    len: u64,
}

impl MappedValue {
    /// Region length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read `len` bytes at `off`.
    pub async fn read(&self, off: u64, len: u64) -> DmResult<Bytes> {
        if off + len > self.len {
            return Err(DmError::OutOfBounds);
        }
        self.dm.read(self.addr.offset(off), len).await
    }

    /// Write bytes at `off` (triggers COW on shared pages).
    pub async fn write(&self, off: u64, data: &Bytes) -> DmResult<()> {
        if off + data.len() as u64 > self.len {
            return Err(DmError::OutOfBounds);
        }
        self.dm.write(self.addr.offset(off), data).await
    }

    /// Unmap the region.
    pub async fn close(self) -> DmResult<()> {
        self.dm.free(self.addr).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcxl::{CxlFabric, CxlHostConfig};
    use dmnet::{start_pool, DmNetClient, DmServerConfig};
    use memsim::ModelParams;
    use rpclib::RpcBuilder;
    use simcore::Sim;
    use simnet::{FabricConfig, Network, NicConfig, NodeId};

    struct Rig {
        sim: Sim,
        net: Network,
        params: ModelParams,
        nodes: Vec<NodeId>,
    }

    fn rig(n: usize) -> Rig {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 21);
        let nodes = (0..n)
            .map(|i| net.add_node(format!("n{i}"), NicConfig::default()))
            .collect();
        Rig {
            sim,
            net,
            params: ModelParams::new(),
            nodes,
        }
    }

    async fn net_endpoint(net: &Network, node: NodeId, port: u16, pool: Vec<Addr>) -> Rc<DmRpc> {
        let rpc = RpcBuilder::new(net, node, port).build();
        let dm = DmNetClient::connect(rpc.clone(), pool).await.unwrap();
        DmRpc::new(rpc, DmHandle::Net(Rc::new(dm)))
    }

    #[test]
    fn size_aware_transfer_chooses_mode() {
        let r = rig(2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (n0, n1) = (r.nodes[0], r.nodes[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[n1], &params, DmServerConfig::default());
            let ep = net_endpoint(&net, n0, 100, vec![servers[0].addr()]).await;
            let small = ep.make_value(Bytes::from(vec![1u8; 100])).await.unwrap();
            assert!(!small.is_by_ref(), "sub-page payload stays inline");
            let large = ep.make_value(Bytes::from(vec![1u8; 8192])).await.unwrap();
            assert!(large.is_by_ref(), "multi-page payload goes by reference");
            assert!(large.wire_bytes() < 32);
            assert_eq!(
                ep.fetch(&large).await.unwrap(),
                Bytes::from(vec![1u8; 8192])
            );
            ep.release(&large).await.unwrap();
        });
    }

    #[test]
    fn baseline_never_uses_dm() {
        let r = rig(1);
        let net = r.net.clone();
        let n0 = r.nodes[0];
        r.sim.block_on(async move {
            let ep = DmRpc::baseline(RpcBuilder::new(&net, n0, 100).build());
            let v = ep
                .make_value(Bytes::from(vec![9u8; 1 << 20]))
                .await
                .unwrap();
            assert!(!v.is_by_ref());
            assert_eq!(ep.fetch(&v).await.unwrap().len(), 1 << 20);
            assert!(ep.dm().is_none());
        });
    }

    #[test]
    fn rpc_chain_forwards_ref_and_last_hop_reads_net() {
        let r = rig(4); // client, forwarder, worker, dm
        let (net, params) = (r.net.clone(), r.params.clone());
        let (c, f, w, d) = (r.nodes[0], r.nodes[1], r.nodes[2], r.nodes[3]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[d], &params, DmServerConfig::default());
            let pool = vec![servers[0].addr()];

            // Worker: materializes the argument and sums it.
            let worker = net_endpoint(&net, w, 100, pool.clone()).await;
            let worker_addr = worker.addr();
            {
                let wk = worker.clone();
                worker.rpc().register(1, move |ctx| {
                    let wk = wk.clone();
                    async move {
                        let v = Value::decode(&ctx.payload).unwrap();
                        let data = wk.fetch(&v).await.unwrap();
                        let sum: u64 = data.iter().map(|&b| b as u64).sum();
                        let out = wk
                            .make_value(Bytes::from(sum.to_le_bytes().to_vec()))
                            .await
                            .unwrap();
                        out.encode()
                    }
                });
            }

            // Forwarder: passes the value through without touching it.
            let fwd = net_endpoint(&net, f, 100, pool.clone()).await;
            let fwd_addr = fwd.addr();
            {
                let fw = fwd.clone();
                fwd.rpc().register(1, move |ctx| {
                    let fw = fw.clone();
                    async move {
                        // Forward the encoded value verbatim — pass by ref.
                        let resp = fw.rpc().call(worker_addr, 1, ctx.payload).await.unwrap();
                        resp
                    }
                });
            }

            let client = net_endpoint(&net, c, 100, pool).await;
            let payload = Bytes::from(vec![2u8; 64 * 1024]);
            let v = client.make_value(payload).await.unwrap();
            assert!(v.is_by_ref());
            let reply = client.call(fwd_addr, 1, &v).await.unwrap();
            let sum_bytes = client.fetch(&reply).await.unwrap();
            let sum = u64::from_le_bytes(sum_bytes[..8].try_into().unwrap());
            assert_eq!(sum, 2 * 64 * 1024);
            client.release(&v).await.unwrap();

            // The forwarder never moved the 64 KiB: its NIC saw only
            // control traffic.
            let fwd_bytes = net.node_rx_bytes(f) + net.node_tx_bytes(f);
            assert!(
                fwd_bytes < 2000,
                "forwarder moved {fwd_bytes} bytes; pass-by-ref should be tiny"
            );
        });
    }

    #[test]
    fn cxl_backend_value_roundtrip_and_cow() {
        let r = rig(3); // coord, producer, consumer
        let (net, params) = (r.net.clone(), r.params.clone());
        let (cd, p, c) = (r.nodes[0], r.nodes[1], r.nodes[2]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cd, 4096, params, CxlHostConfig::default());
            let prod_rpc = RpcBuilder::new(&net, p, 100).build();
            let prod = DmRpc::new(prod_rpc.clone(), DmHandle::Cxl(fabric.new_host(prod_rpc)));
            let cons_rpc = RpcBuilder::new(&net, c, 100).build();
            let cons = DmRpc::new(cons_rpc.clone(), DmHandle::Cxl(fabric.new_host(cons_rpc)));

            let data = Bytes::from(
                (0..32 * 1024u32)
                    .map(|i| (i % 241) as u8)
                    .collect::<Vec<_>>(),
            );
            let v = prod.make_value(data.clone()).await.unwrap();
            assert!(v.is_by_ref());

            // Consumer reads through its own mapping.
            assert_eq!(cons.fetch(&v).await.unwrap(), data);

            // Consumer writes 50%: COW; producer's view (via a fresh map of
            // the same ref) still sees the original.
            cons.overwrite_fraction(&v, 0.5).await.unwrap();
            assert_eq!(prod.fetch(&v).await.unwrap(), data);

            prod.release(&v).await.unwrap();
        });
    }

    #[test]
    fn mapped_value_fine_grained_access() {
        let r = rig(2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (n0, n1) = (r.nodes[0], r.nodes[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[n1], &params, DmServerConfig::default());
            let ep = net_endpoint(&net, n0, 100, vec![servers[0].addr()]).await;
            let v = ep.make_value(Bytes::from(vec![7u8; 16384])).await.unwrap();
            let m = ep.map_value(&v).await.unwrap().unwrap();
            assert_eq!(m.len(), 16384);
            assert_eq!(&m.read(4096, 4).await.unwrap()[..], &[7, 7, 7, 7]);
            m.write(4096, &Bytes::from_static(&[1, 2])).await.unwrap();
            assert_eq!(&m.read(4095, 4).await.unwrap()[..], &[7, 1, 2, 7]);
            assert!(m.read(16383, 2).await.is_err());
            m.close().await.unwrap();
            // The ref itself is unchanged.
            assert_eq!(ep.fetch(&v).await.unwrap(), Bytes::from(vec![7u8; 16384]));
            ep.release(&v).await.unwrap();
        });
    }

    #[test]
    fn inline_map_value_returns_none() {
        let r = rig(1);
        let net = r.net.clone();
        let n0 = r.nodes[0];
        r.sim.block_on(async move {
            let ep = DmRpc::baseline(RpcBuilder::new(&net, n0, 100).build());
            let v = ep.make_value(Bytes::from_static(b"tiny")).await.unwrap();
            assert!(ep.map_value(&v).await.unwrap().is_none());
            assert_eq!(ep.overwrite_fraction(&v, 1.0).await.unwrap(), 4);
            ep.release(&v).await.unwrap();
        });
    }

    #[test]
    fn threshold_is_configurable() {
        let r = rig(2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (n0, n1) = (r.nodes[0], r.nodes[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[n1], &params, DmServerConfig::default());
            let rpc = RpcBuilder::new(&net, n0, 100).build();
            let dm = DmNetClient::connect(rpc.clone(), vec![servers[0].addr()])
                .await
                .unwrap();
            let ep = DmRpc::with_threshold(rpc, DmHandle::Net(Rc::new(dm)), 256);
            let v = ep.make_value(Bytes::from(vec![1u8; 300])).await.unwrap();
            assert!(v.is_by_ref(), "custom threshold moves small objects to DM");
            ep.release(&v).await.unwrap();
        });
    }
}
