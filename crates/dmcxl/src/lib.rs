//! # dmcxl — CXL G-FAM disaggregated memory (DmRPC-CXL's DM layer)
//!
//! Implements the paper's §V-B design on an emulated CXL 3.0 fabric:
//!
//! * [`gfam::GFam`] — the Global Fabric-Attached Memory device: one DPA
//!   space of real pages plus fabric-atomic per-page refcounts, shared by
//!   every host, with a configurable access latency (default 265 ns = FPGA
//!   CXL measurement × switch latency, sweepable for Fig. 12);
//! * [`coordinator::Coordinator`] — the page-ownership service; hosts
//!   reserve and return free pages in batches over a reliable protocol;
//! * [`host::CxlHost`] — the per-process DM layer: VMA tree, page table
//!   with permission flags, owned-free-page FIFO, and the **distributed
//!   copy-on-write** driven by page faults and fabric atomics.
//!
//! The paper itself emulates CXL with cross-socket accesses and uncore
//! frequency scaling; here the same latency model is applied to a real
//! G-FAM data structure (see DESIGN.md §2).

#![warn(missing_docs)]

pub mod coordinator;
pub mod gfam;
pub mod host;
pub mod ldfam;

use std::rc::Rc;

pub use coordinator::Coordinator;
pub use gfam::GFam;
pub use host::{CxlHost, CxlHostConfig, CxlHostStats};
pub use ldfam::{LdFam, LogicalDevice};

use memsim::ModelParams;
use rpclib::Rpc;
use simnet::{Network, NodeId};

/// Convenience bundle: one G-FAM device + one coordinator, from which hosts
/// are minted. Mirrors the paper's single-fabric deployments.
pub struct CxlFabric {
    gfam: Rc<GFam>,
    coordinator: Rc<Coordinator>,
    host_config: CxlHostConfig,
}

impl CxlFabric {
    /// Create the fabric: the G-FAM device plus a coordinator service on
    /// `coord_node`.
    pub fn new(
        net: &Network,
        coord_node: NodeId,
        capacity_pages: usize,
        params: ModelParams,
        host_config: CxlHostConfig,
    ) -> CxlFabric {
        CxlFabric {
            gfam: GFam::new(capacity_pages, params),
            coordinator: Coordinator::start(net, coord_node, capacity_pages),
            host_config,
        }
    }

    /// The shared device.
    pub fn gfam(&self) -> &Rc<GFam> {
        &self.gfam
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Rc<Coordinator> {
        &self.coordinator
    }

    /// Mint the DM layer for one process, using its RPC endpoint for the
    /// ownership protocol.
    pub fn new_host(&self, rpc: Rc<Rpc>) -> Rc<CxlHost> {
        CxlHost::new(
            self.gfam.clone(),
            rpc,
            self.coordinator.addr(),
            self.host_config,
        )
    }
}

/// Check fabric-wide conservation invariants. `live_refs` is the number of
/// outstanding (created, not released) reference pins per page, supplied by
/// the test harness.
///
/// Panics with a description on violation.
pub fn check_fabric_invariants(
    gfam: &GFam,
    coordinator: &Coordinator,
    hosts: &[Rc<CxlHost>],
    live_refs: &[(u32, u32)],
) {
    let cap = gfam.capacity_pages();
    let mut free_owner = vec![0u32; cap];
    // The coordinator exposes only a count; host FIFOs expose contents.
    let coord_free = coordinator.free_pages();
    let mut host_free = 0usize;
    for h in hosts {
        for p in h.free_snapshot() {
            free_owner[p as usize] += 1;
            host_free += 1;
        }
    }
    // 1. No page owned free by two hosts; free pages have rc == 0.
    for (p, &n) in free_owner.iter().enumerate() {
        assert!(n <= 1, "page {p} in {n} host free lists");
        if n == 1 {
            assert_eq!(gfam.rc_peek(p as u32), 0, "free page {p} has rc != 0");
        }
    }
    // 2. rc(p) == #PTEs(p) + #live ref pins(p).
    let mut expected = vec![0u32; cap];
    for h in hosts {
        for (_vpn, ppn, _w) in h.pte_snapshot() {
            expected[ppn as usize] += 1;
        }
    }
    for &(ppn, pins) in live_refs {
        expected[ppn as usize] += pins;
    }
    for (p, &exp) in expected.iter().enumerate() {
        assert_eq!(
            gfam.rc_peek(p as u32),
            exp,
            "page {p}: rc {} != PTEs+refs {}",
            gfam.rc_peek(p as u32),
            exp
        );
    }
    // 3. Conservation: free everywhere + in-use == capacity.
    let in_use = (0..cap).filter(|&p| gfam.rc_peek(p as u32) > 0).count();
    assert_eq!(
        coord_free + host_free + in_use,
        cap,
        "page conservation violated"
    );
}

#[cfg(test)]
mod e2e_tests {
    use std::time::Duration;

    use dmcommon::{CopyMode, DmError, Ref, PAGE_SIZE};
    use memsim::ModelParams;
    use rpclib::RpcBuilder;
    use simcore::Sim;
    use simnet::{FabricConfig, Network, NicConfig, NodeId};

    use super::*;

    const PS: u64 = PAGE_SIZE as u64;

    struct Rig {
        sim: Sim,
        net: Network,
        params: ModelParams,
        coord_node: NodeId,
        compute: Vec<NodeId>,
    }

    fn rig(n_compute: usize) -> Rig {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 5);
        let coord_node = net.add_node("coord", NicConfig::default());
        let compute = (0..n_compute)
            .map(|i| net.add_node(format!("c{i}"), NicConfig::default()))
            .collect();
        Rig {
            sim,
            net,
            params: ModelParams::new(),
            coord_node,
            compute,
        }
    }

    #[test]
    fn store_load_roundtrip_with_lazy_faulting() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 1024, params, CxlHostConfig::default());
            let rpc = RpcBuilder::new(&net, c0, 100).build();
            let host = fabric.new_host(rpc);

            let va = host.alloc(3 * PS).unwrap();
            // Load before any store: zeros, no faults.
            let z = host.load(va, 100).await.unwrap();
            assert!(z.iter().all(|&b| b == 0));
            assert_eq!(host.stats().faults.get(), 0);

            let data: Vec<u8> = (0..3 * PS).map(|i| (i % 249) as u8).collect();
            host.store(va, &data).await.unwrap();
            assert_eq!(host.stats().faults.get(), 3, "one fault per page");
            let back = host.load(va, 3 * PS).await.unwrap();
            assert_eq!(&back[..], &data[..]);

            // Second store: no more faults (case 3, writable).
            host.store(va + 10, b"xyz").await.unwrap();
            assert_eq!(host.stats().faults.get(), 3);

            host.free(va).unwrap();
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &[host], &[]);
        });
    }

    #[test]
    fn distributed_cow_between_hosts() {
        let r = rig(2);
        let (net, params, cn) = (r.net.clone(), r.params.clone(), r.coord_node);
        let (c0, c1) = (r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 1024, params, CxlHostConfig::default());
            let producer = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let consumer = fabric.new_host(RpcBuilder::new(&net, c1, 100).build());

            let va = producer.alloc(2 * PS).unwrap();
            let original = vec![0x5Au8; 2 * PAGE_SIZE];
            producer.store(va, &original).await.unwrap();
            let r = producer.create_ref(va, 2 * PS).await.unwrap();
            let Ref::Cxl { ref pages, .. } = r else {
                panic!()
            };
            assert_eq!(pages.len(), 2);

            // Consumer on another host maps and reads — zero copies.
            let cva = consumer.map_ref(&r).await.unwrap();
            let got = consumer.load(cva, 2 * PS).await.unwrap();
            assert_eq!(&got[..], &original[..]);
            assert_eq!(consumer.stats().cow_copies.get(), 0);

            // Consumer writes one byte in page 1: exactly one COW copy.
            consumer.store(cva + PS + 3, &[0xA5]).await.unwrap();
            assert_eq!(consumer.stats().cow_copies.get(), 1);
            // Producer still sees the original (read-only after create_ref).
            let pview = producer.load(va, 2 * PS).await.unwrap();
            assert_eq!(&pview[..], &original[..]);
            // Consumer sees its own modification merged with shared page 0.
            let cview = consumer.load(cva, 2 * PS).await.unwrap();
            assert_eq!(cview[PAGE_SIZE + 3], 0xA5);
            assert_eq!(&cview[..PAGE_SIZE], &original[..PAGE_SIZE]);

            // Creator write also COWs (its PTE went read-only).
            producer.store(va, &[1]).await.unwrap();
            assert_eq!(producer.stats().cow_copies.get(), 1);

            // Tear down: frees + release, then full conservation.
            producer.free(va).unwrap();
            consumer.free(cva).unwrap();
            producer.release_ref(&r).await.unwrap();
            check_fabric_invariants(
                fabric.gfam(),
                fabric.coordinator(),
                &[producer, consumer],
                &[],
            );
        });
    }

    #[test]
    fn sole_owner_write_flips_permission_without_copy() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 256, params, CxlHostConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(PS).unwrap();
            host.store(va, b"data").await.unwrap();
            let r = host.create_ref(va, PS).await.unwrap();
            // Release the ref: the creator is sole owner again (rc back to 1)
            host.release_ref(&r).await.unwrap();
            host.store(va, b"more").await.unwrap();
            assert_eq!(host.stats().cow_copies.get(), 0, "no copy for sole owner");
            host.free(va).unwrap();
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &[host], &[]);
        });
    }

    #[test]
    fn eager_copy_ablation_copies_at_create_ref() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let cfg = CxlHostConfig {
                copy_mode: CopyMode::Eager,
                ..Default::default()
            };
            let fabric = CxlFabric::new(&net, cn, 1024, params, cfg);
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(8 * PS).unwrap();
            host.store(va, &vec![9u8; 8 * PAGE_SIZE]).await.unwrap();
            let traffic0 = fabric.gfam().traffic_bytes();
            let t0 = simcore::now();
            let r = host.create_ref(va, 8 * PS).await.unwrap();
            let eager_time = simcore::now() - t0;
            let eager_traffic = fabric.gfam().traffic_bytes() - traffic0;
            assert!(eager_traffic >= 2 * 8 * PS, "traffic {eager_traffic}");
            assert!(eager_time > Duration::from_micros(2), "time {eager_time:?}");
            // Creator stays writable: no COW on subsequent writes.
            host.store(va, &[1]).await.unwrap();
            assert_eq!(host.stats().cow_copies.get(), 0);
            // The copy is a faithful snapshot.
            let other = fabric.new_host(RpcBuilder::new(&net, c0, 101).build());
            let ova = other.map_ref(&r).await.unwrap();
            let snap = other.load(ova, 8).await.unwrap();
            assert_eq!(&snap[..], &[9u8; 8]);
        });
    }

    #[test]
    fn ownership_batching_amortizes_coordinator_rpcs() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let cfg = CxlHostConfig {
                request_batch: 64,
                low_watermark: 8,
                ..Default::default()
            };
            let fabric = CxlFabric::new(&net, cn, 4096, params, cfg);
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(100 * PS).unwrap();
            host.store(va, &vec![1u8; 100 * PAGE_SIZE]).await.unwrap();
            // Let background refills settle.
            simcore::sleep(Duration::from_millis(1)).await;
            let rpcs = host.stats().coord_rpcs.get();
            assert!(
                rpcs <= 5,
                "100 faults should need only a few batched grants, got {rpcs}"
            );
        });
    }

    #[test]
    fn pages_returned_above_high_watermark() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let cfg = CxlHostConfig {
                request_batch: 32,
                low_watermark: 4,
                high_watermark: 16,
                ..Default::default()
            };
            let fabric = CxlFabric::new(&net, cn, 512, params, cfg);
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(64 * PS).unwrap();
            host.store(va, &vec![1u8; 64 * PAGE_SIZE]).await.unwrap();
            host.free(va).unwrap();
            simcore::sleep(Duration::from_millis(1)).await;
            assert!(
                host.owned_free_pages() <= 16 + 32,
                "host hoards {} pages",
                host.owned_free_pages()
            );
            assert!(
                fabric.coordinator().return_rpcs() > 0,
                "no returns happened"
            );
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &[host], &[]);
        });
    }

    #[test]
    fn out_of_fabric_memory() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 8, params, CxlHostConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(16 * PS).unwrap();
            let r = host.store(va, &vec![1u8; 16 * PAGE_SIZE]).await;
            assert_eq!(r.unwrap_err(), DmError::OutOfMemory);
        });
    }

    #[test]
    fn load_store_bounds_checked() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 64, params, CxlHostConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(PS).unwrap();
            assert_eq!(
                host.store(va + PS - 1, &[1, 2]).await.unwrap_err(),
                DmError::OutOfBounds
            );
            assert_eq!(
                host.load(va, PS + 1).await.unwrap_err(),
                DmError::OutOfBounds
            );
            assert_eq!(
                host.load(0x100, 1).await.unwrap_err(),
                DmError::InvalidAddress
            );
        });
    }

    #[test]
    fn cxl_access_latency_knob_changes_op_time() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        let p2 = params.clone();
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 256, params, CxlHostConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(PS).unwrap();
            host.store(va, &vec![1u8; PAGE_SIZE]).await.unwrap();

            let t0 = simcore::now();
            host.load(va, PS).await.unwrap();
            let fast = simcore::now() - t0;

            p2.set_cxl_latency(Duration::from_nanos(400));
            let t1 = simcore::now();
            host.load(va, PS).await.unwrap();
            let slow = simcore::now() - t1;
            assert_eq!(
                (slow - fast),
                Duration::from_nanos(400 - 265),
                "latency knob delta"
            );
        });
    }

    #[test]
    fn concurrent_store_faults_on_one_page_are_serialized() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            // Tiny owned-page reserve so every fault's take_page awaits a
            // coordinator round trip — maximizing the race window.
            let cfg = CxlHostConfig {
                request_batch: 1,
                low_watermark: 0,
                high_watermark: 1024,
                ..Default::default()
            };
            let fabric = CxlFabric::new(&net, cn, 512, params, cfg);
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(PS).unwrap();
            host.store(va, &vec![7u8; PAGE_SIZE]).await.unwrap();
            let r = host.create_ref(va, PS).await.unwrap();

            // Many tasks write disjoint bytes of the SAME shared page at the
            // same instant: exactly one COW must happen, and every write
            // must land on the surviving private page.
            let mut handles = Vec::new();
            for i in 0..8u64 {
                let host = host.clone();
                handles.push(simcore::spawn(async move {
                    host.store(va + i, &[i as u8]).await.unwrap();
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(host.stats().cow_copies.get(), 1, "exactly one COW");
            let view = host.load(va, 8).await.unwrap();
            assert_eq!(&view[..], &[0, 1, 2, 3, 4, 5, 6, 7], "no lost writes");
            // The ref still serves the original.
            let other = fabric.new_host(RpcBuilder::new(&net, c0, 101).build());
            let ova = other.map_ref(&r).await.unwrap();
            assert_eq!(&other.load(ova, 8).await.unwrap()[..], &[7u8; 8]);

            other.free(ova).unwrap();
            host.free(va).unwrap();
            host.release_ref(&r).await.unwrap();
            simcore::sleep(Duration::from_millis(1)).await;
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &[host, other], &[]);
        });
    }

    #[test]
    fn ref_with_live_pins_accounted_in_invariants() {
        let r = rig(1);
        let (net, params, cn, c0) = (r.net.clone(), r.params.clone(), r.coord_node, r.compute[0]);
        r.sim.block_on(async move {
            let fabric = CxlFabric::new(&net, cn, 128, params, CxlHostConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, c0, 100).build());
            let va = host.alloc(2 * PS).unwrap();
            host.store(va, &vec![1u8; 2 * PAGE_SIZE]).await.unwrap();
            let r = host.create_ref(va, 2 * PS).await.unwrap();
            let Ref::Cxl { ref pages, .. } = r else {
                panic!()
            };
            let pins: Vec<(u32, u32)> = pages.iter().map(|&p| (p, 1)).collect();
            check_fabric_invariants(
                fabric.gfam(),
                fabric.coordinator(),
                std::slice::from_ref(&host),
                &pins,
            );
            host.release_ref(&r).await.unwrap();
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &[host], &[]);
        });
    }
}
