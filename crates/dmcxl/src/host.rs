//! The per-process DM layer on a compute server (paper §V-B1..3).
//!
//! Each process gets a `CxlHost`: a VMA tree of CXL virtual addresses, a
//! page table with permission flags, a FIFO of owned free CXL physical
//! pages (refilled from / returned to the [`crate::coordinator`] in
//! batches), and the fault-driven **distributed copy-on-write**:
//!
//! * store to an unmapped page → fault: take an owned free page, map
//!   writable, refcount 1;
//! * store to a read-only page with refcount > 1 → COW: copy the page on
//!   the device, retarget the PTE, atomically decrement the old refcount;
//! * store to a read-only page with refcount 1 → just flip the permission
//!   flag (sole owner);
//! * store to a writable page → no fault at all (the common case — this is
//!   why DmRPC-CXL accesses are usually as cheap as plain CXL loads/stores).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::va_tree::VaTree;
use dmcommon::{CopyMode, DmError, DmResult, Ref, PAGE_SIZE};
use rpclib::Rpc;
use simcore::sync::Notify;
use simcore::Counter;
use simnet::Addr;
use telemetry::SpanKind;

use crate::coordinator::{self, encode_request, encode_return};
use crate::gfam::{GFam, Ppn};

/// Host DM-layer tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CxlHostConfig {
    /// Refill from the coordinator when owned free pages drop below this.
    pub low_watermark: usize,
    /// Return pages to the coordinator when owned free pages exceed this.
    pub high_watermark: usize,
    /// Pages requested per coordinator round-trip.
    pub request_batch: usize,
    /// COW (DmRPC) or eager copy at `create_ref` (the `-copy` ablation).
    pub copy_mode: CopyMode,
    /// Kernel page-fault handling CPU cost.
    pub fault_cpu: Duration,
    /// CPU cost per PTE update.
    pub pte_cpu: Duration,
}

impl Default for CxlHostConfig {
    fn default() -> Self {
        CxlHostConfig {
            low_watermark: 16,
            high_watermark: 512,
            request_batch: 64,
            copy_mode: CopyMode::CopyOnWrite,
            fault_cpu: Duration::from_nanos(400),
            pte_cpu: Duration::from_nanos(30),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Pte {
    ppn: Ppn,
    writable: bool,
}

/// Host-side statistics.
#[derive(Clone, Default)]
pub struct CxlHostStats {
    /// Page faults taken (first-touch mappings).
    pub faults: Counter,
    /// COW page copies performed.
    pub cow_copies: Counter,
    /// Coordinator round-trips for page ownership.
    pub coord_rpcs: Counter,
}

/// One process's DM layer on a compute server.
pub struct CxlHost {
    gfam: Rc<GFam>,
    rpc: Rc<Rpc>,
    coord: Addr,
    vma: RefCell<VaTree>,
    page_table: RefCell<HashMap<u64, Pte>>,
    free: RefCell<VecDeque<Ppn>>,
    config: CxlHostConfig,
    stats: CxlHostStats,
    refilling: Cell<bool>,
    /// Per-VPN fault serialization: the kernel handles one fault per page
    /// at a time. Fault paths contain awaits (coordinator refills, device
    /// copies), so without this two tasks of the same process could both
    /// COW one page and double-release the original.
    faulting: RefCell<std::collections::HashSet<u64>>,
    fault_done: Notify,
}

impl CxlHost {
    /// Create the DM layer for one process. `rpc` is the process's RPC
    /// endpoint (used only for the coordinator ownership protocol).
    pub fn new(
        gfam: Rc<GFam>,
        rpc: Rc<Rpc>,
        coordinator: Addr,
        config: CxlHostConfig,
    ) -> Rc<CxlHost> {
        Rc::new(CxlHost {
            gfam,
            rpc,
            coord: coordinator,
            vma: RefCell::new(VaTree::new()),
            page_table: RefCell::new(HashMap::new()),
            free: RefCell::new(VecDeque::new()),
            config,
            stats: CxlHostStats::default(),
            refilling: Cell::new(false),
            faulting: RefCell::new(std::collections::HashSet::new()),
            fault_done: Notify::new(),
        })
    }

    /// Stats counters.
    pub fn stats(&self) -> &CxlHostStats {
        &self.stats
    }

    /// The shared G-FAM device.
    pub fn gfam(&self) -> &Rc<GFam> {
        &self.gfam
    }

    /// Owned free pages (tests).
    pub fn owned_free_pages(&self) -> usize {
        self.free.borrow().len()
    }

    /// Live PTEs, as `(vpn, ppn, writable)` (invariant checks).
    pub fn pte_snapshot(&self) -> Vec<(u64, u32, bool)> {
        self.page_table
            .borrow()
            .iter()
            .map(|(&vpn, pte)| (vpn, pte.ppn, pte.writable))
            .collect()
    }

    /// Snapshot of owned free pages (invariant checks).
    pub fn free_snapshot(&self) -> Vec<Ppn> {
        self.free.borrow().iter().copied().collect()
    }

    fn node_id(&self) -> u32 {
        self.rpc.addr().node.0
    }

    // -- ownership protocol --------------------------------------------------

    async fn coordinator_request(&self, n: usize) -> DmResult<Vec<Ppn>> {
        self.stats.coord_rpcs.incr();
        // DM-control span over the ownership round trip; the nested
        // `rpc.call` contributes its own client/transport spans.
        let _grant = telemetry::span(SpanKind::DmOp, "cxl.page_grant", self.node_id());
        let resp = self
            .rpc
            .call(
                self.coord,
                coordinator::req::REQUEST_PAGES,
                encode_request(n as u32),
            )
            .await
            .map_err(|_| DmError::Transport)?;
        coordinator::decode_grant(&resp).ok_or(DmError::Malformed)
    }

    async fn take_page(self: &Rc<Self>) -> DmResult<Ppn> {
        loop {
            let popped = self.free.borrow_mut().pop_front();
            if let Some(p) = popped {
                self.maybe_background_refill();
                self.gfam.rc_init(p);
                return Ok(p);
            }
            // Synchronous refill when empty.
            let grant = self.coordinator_request(self.config.request_batch).await?;
            if grant.is_empty() {
                return Err(DmError::OutOfMemory);
            }
            self.free.borrow_mut().extend(grant);
        }
    }

    fn maybe_background_refill(self: &Rc<Self>) {
        if self.free.borrow().len() >= self.config.low_watermark || self.refilling.get() {
            return;
        }
        self.refilling.set(true);
        let host = self.clone();
        simcore::spawn(async move {
            let r = host.coordinator_request(host.config.request_batch).await;
            if let Ok(grant) = r {
                host.free.borrow_mut().extend(grant);
            }
            host.refilling.set(false);
        });
    }

    fn give_back_page(self: &Rc<Self>, p: Ppn) {
        self.gfam.discard_page(p);
        let mut free = self.free.borrow_mut();
        free.push_back(p);
        if free.len() > self.config.high_watermark {
            let surplus = free.len() - self.config.high_watermark / 2;
            let pages: Vec<Ppn> = (0..surplus)
                .map(|_| free.pop_back().expect("surplus <= len"))
                .collect();
            drop(free);
            let host = self.clone();
            simcore::spawn(async move {
                host.stats.coord_rpcs.incr();
                let _ = host
                    .rpc
                    .call(
                        host.coord,
                        coordinator::req::RETURN_PAGES,
                        encode_return(&pages),
                    )
                    .await;
            });
        }
    }

    // -- Table II API --------------------------------------------------------

    /// Allocate `len` bytes of CXL virtual address space (no pages mapped —
    /// paper §V-B2 "At this time, no CXL physical pages are mapped").
    pub fn alloc(&self, len: u64) -> DmResult<u64> {
        self.vma.borrow_mut().alloc(len, PAGE_SIZE as u64)
    }

    /// Release a region (paper §V-B3 "Memory release").
    pub fn free(self: &Rc<Self>, va: u64) -> DmResult<()> {
        let (start, len) = self.vma.borrow().lookup(va)?;
        if start != va {
            return Err(DmError::InvalidAddress);
        }
        for vpn in (start / PAGE_SIZE as u64)..((start + len) / PAGE_SIZE as u64) {
            let pte = self.page_table.borrow_mut().remove(&vpn);
            if let Some(pte) = pte {
                if self.gfam.rc_dec(pte.ppn) == 0 {
                    // Last owner reclaims the page.
                    self.give_back_page(pte.ppn);
                }
            }
        }
        self.vma.borrow_mut().free(start)?;
        Ok(())
    }

    /// Acquire the fault lock for `vpn` (FIFO-ish; re-checks on wake).
    async fn lock_vpn(&self, vpn: u64) {
        loop {
            if self.faulting.borrow_mut().insert(vpn) {
                return;
            }
            self.fault_done.notified().await;
        }
    }

    fn unlock_vpn(&self, vpn: u64) {
        self.faulting.borrow_mut().remove(&vpn);
        self.fault_done.notify_all();
    }

    /// Charge the time of `n` pipelined fabric atomics: one CXL round trip
    /// plus a per-atomic issue cost.
    async fn charge_atomics(&self, n: usize) {
        if n == 0 {
            return;
        }
        let lat = self.gfam.params().latency(memsim::MemClass::Cxl);
        simcore::sleep(lat + Duration::from_nanos(20) * n as u32).await;
    }

    fn check_bounds(&self, va: u64, len: u64) -> DmResult<()> {
        let (start, rlen) = self.vma.borrow().lookup(va)?;
        if va + len > start + rlen {
            return Err(DmError::OutOfBounds);
        }
        Ok(())
    }

    /// `store`: write `data` at `va` through plain CXL stores, taking page
    /// faults as described in paper §V-B3.
    pub async fn store(self: &Rc<Self>, va: u64, data: &[u8]) -> DmResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.check_bounds(va, data.len() as u64)?;
        let mut off = 0usize;
        let mut fault_cpu = Duration::ZERO;
        while off < data.len() {
            let cur = va + off as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let pte = self.page_table.borrow().get(&vpn).copied();
            let ppn = match pte {
                // Case 3 fast path: writable — no fault, no lock.
                Some(pte) if pte.writable => pte.ppn,
                // Cases 1 and 2 take the per-VPN fault lock and re-read the
                // PTE: another task may have resolved the fault while we
                // waited.
                _ => {
                    self.lock_vpn(vpn).await;
                    let r = self.handle_store_fault(vpn).await;
                    self.unlock_vpn(vpn);
                    match r {
                        Ok((ppn, cpu)) => {
                            fault_cpu += cpu;
                            ppn
                        }
                        Err(e) => return Err(e),
                    }
                }
            };
            self.gfam.write_page(ppn, in_page, &data[off..off + n]);
            off += n;
        }
        if !fault_cpu.is_zero() {
            simcore::sleep(fault_cpu).await;
        }
        // The stores themselves stream over the CXL link.
        self.gfam.access(data.len() as u64).await;
        Ok(())
    }

    /// Resolve a store fault on `vpn` (fault lock held). Returns the target
    /// PPN and the CPU time to charge.
    async fn handle_store_fault(self: &Rc<Self>, vpn: u64) -> DmResult<(Ppn, Duration)> {
        let pte = self.page_table.borrow().get(&vpn).copied();
        match pte {
            // Resolved by a concurrent fault while we queued on the lock.
            Some(pte) if pte.writable => Ok((pte.ppn, Duration::ZERO)),
            // Unmapped — take an owned free page.
            None => {
                let p = self.take_page().await?;
                self.gfam.zero_page(p);
                self.page_table.borrow_mut().insert(
                    vpn,
                    Pte {
                        ppn: p,
                        writable: true,
                    },
                );
                self.stats.faults.incr();
                Ok((p, self.config.fault_cpu + self.config.pte_cpu))
            }
            // Read-only page.
            Some(pte) => {
                self.stats.faults.incr();
                let cpu = self.config.fault_cpu + self.config.pte_cpu;
                if self.gfam.rc_get(pte.ppn) > 1 {
                    // COW: allocate, copy on the device, retarget PTE.
                    let newp = self.take_page().await?;
                    let mut cow =
                        telemetry::leaf_span(SpanKind::Cow, "cxl.cow_copy", self.node_id());
                    if let Some(s) = cow.as_mut() {
                        s.attr("bytes_copied", PAGE_SIZE as u64);
                    }
                    self.gfam.copy_page(pte.ppn, newp);
                    self.gfam.access(2 * PAGE_SIZE as u64).await;
                    drop(cow);
                    self.stats.cow_copies.incr();
                    self.page_table.borrow_mut().insert(
                        vpn,
                        Pte {
                            ppn: newp,
                            writable: true,
                        },
                    );
                    if self.gfam.rc_dec(pte.ppn) == 0 {
                        self.give_back_page(pte.ppn);
                    }
                    Ok((newp, cpu))
                } else {
                    // Sole owner: flip the permission flag.
                    self.page_table.borrow_mut().insert(
                        vpn,
                        Pte {
                            ppn: pte.ppn,
                            writable: true,
                        },
                    );
                    Ok((pte.ppn, cpu))
                }
            }
        }
    }

    /// `load`: read `len` bytes at `va` through plain CXL loads (paper
    /// §V-B3: "completely the same as regular memory"). Unmapped pages read
    /// as zeros.
    pub async fn load(self: &Rc<Self>, va: u64, len: u64) -> DmResult<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        self.check_bounds(va, len)?;
        let mut out = vec![0u8; len as usize];
        let mut off = 0usize;
        while off < len as usize {
            let cur = va + off as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len as usize - off);
            if let Some(pte) = self.page_table.borrow().get(&vpn) {
                self.gfam
                    .read_page(pte.ppn, in_page, &mut out[off..off + n]);
            }
            off += n;
        }
        self.gfam.access(len).await;
        Ok(Bytes::from(out))
    }

    /// `create_ref` (paper §V-B3): atomically bump each page's refcount and
    /// mark the creator's PTEs read-only; the Ref carries the physical page
    /// numbers. In the `-copy` ablation the region is copied instead.
    pub async fn create_ref(self: &Rc<Self>, va: u64, len: u64) -> DmResult<Ref> {
        if len == 0 || !va.is_multiple_of(PAGE_SIZE as u64) {
            return Err(DmError::InvalidAddress);
        }
        self.check_bounds(va, len)?;
        let mut op = telemetry::span(SpanKind::DmOp, "cxl.create_ref", self.node_id());
        if let Some(s) = op.as_mut() {
            s.attr("len", len);
        }
        let n_pages = len.div_ceil(PAGE_SIZE as u64);
        let mut pages = Vec::with_capacity(n_pages as usize);
        for i in 0..n_pages {
            let vpn = va / PAGE_SIZE as u64 + i;
            let pte = self.page_table.borrow().get(&vpn).copied();
            let ppn = match pte {
                Some(pte) => pte.ppn,
                None => {
                    // Virgin page inside the ref'd region: materialize it.
                    let p = self.take_page().await?;
                    self.gfam.zero_page(p);
                    self.page_table.borrow_mut().insert(
                        vpn,
                        Pte {
                            ppn: p,
                            writable: true,
                        },
                    );
                    self.stats.faults.incr();
                    p
                }
            };
            pages.push((vpn, ppn));
        }
        let shared: Vec<Ppn> = match self.config.copy_mode {
            CopyMode::CopyOnWrite => {
                let mut out = Vec::with_capacity(pages.len());
                for &(vpn, ppn) in &pages {
                    self.gfam.rc_inc(ppn);
                    // Mark read-only so the next creator write COWs.
                    self.page_table.borrow_mut().insert(
                        vpn,
                        Pte {
                            ppn,
                            writable: false,
                        },
                    );
                    out.push(ppn);
                }
                simcore::sleep(self.config.pte_cpu * pages.len() as u32).await;
                self.charge_atomics(pages.len()).await;
                out
            }
            CopyMode::Eager => {
                let mut out = Vec::with_capacity(pages.len());
                let mut cow = telemetry::leaf_span(SpanKind::Cow, "cxl.eager_copy", self.node_id());
                if let Some(s) = cow.as_mut() {
                    s.attr("bytes_copied", pages.len() as u64 * PAGE_SIZE as u64);
                }
                for &(_vpn, ppn) in &pages {
                    let newp = self.take_page().await?;
                    self.gfam.copy_page(ppn, newp);
                    self.gfam.access(2 * PAGE_SIZE as u64).await;
                    out.push(newp);
                }
                drop(cow);
                out
            }
        };
        Ok(Ref::Cxl { len, pages: shared })
    }

    /// `map_ref` (paper §V-B3): allocate a CXL virtual range and install
    /// read-only PTEs onto the shared physical pages.
    pub async fn map_ref(self: &Rc<Self>, r: &Ref) -> DmResult<u64> {
        let Ref::Cxl { len, pages } = r else {
            return Err(DmError::InvalidRef);
        };
        let _op = telemetry::span(SpanKind::DmOp, "cxl.map_ref", self.node_id());
        let va = self.vma.borrow_mut().alloc(*len, PAGE_SIZE as u64)?;
        for (i, &ppn) in pages.iter().enumerate() {
            self.gfam.rc_inc(ppn);
            self.page_table.borrow_mut().insert(
                va / PAGE_SIZE as u64 + i as u64,
                Pte {
                    ppn,
                    writable: false,
                },
            );
        }
        simcore::sleep(self.config.pte_cpu * pages.len() as u32).await;
        self.charge_atomics(pages.len()).await;
        Ok(va)
    }

    /// Release a reference's pin on its pages (API extension; DESIGN.md §6).
    pub async fn release_ref(self: &Rc<Self>, r: &Ref) -> DmResult<()> {
        let Ref::Cxl { pages, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        let _op = telemetry::span(SpanKind::DmOp, "cxl.release_ref", self.node_id());
        for &ppn in pages {
            if self.gfam.rc_dec(ppn) == 0 {
                self.give_back_page(ppn);
            }
        }
        self.charge_atomics(pages.len()).await;
        Ok(())
    }
}
