//! LD-FAM: Logical-Device Fabric-Attached Memory (paper §II-B2).
//!
//! "LD-FAM partitions a physical CXL memory device into up to 16 logical
//! devices. Each logical device can be exposed to a host with a separate
//! Device Physical Address (DPA)." Unlike G-FAM there is **no shared DPA
//! space**, so LD-FAM gives each host private CXL capacity but cannot host
//! DmRPC's shared `Ref`s — which is exactly why DmRPC-CXL builds on G-FAM.
//! This module exists to make that architectural distinction concrete (and
//! testable).

use std::rc::Rc;

use dmcommon::{DmError, DmResult, PAGE_SIZE};

use crate::gfam::{GFam, Ppn};

/// Maximum logical devices per physical device (CXL spec).
pub const MAX_LOGICAL_DEVICES: usize = 16;

/// A physical CXL memory device carved into logical devices.
pub struct LdFam {
    device: Rc<GFam>,
    /// Page ranges per logical device: `(first_ppn, n_pages)`.
    partitions: Vec<(Ppn, u64)>,
}

impl LdFam {
    /// Partition `device` into `n` equal logical devices.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds [`MAX_LOGICAL_DEVICES`].
    pub fn partition(device: Rc<GFam>, n: usize) -> LdFam {
        assert!(
            (1..=MAX_LOGICAL_DEVICES).contains(&n),
            "LD-FAM supports 1..=16 logical devices"
        );
        let per = (device.capacity_pages() / n) as u64;
        assert!(per > 0, "device too small for {n} partitions");
        let partitions = (0..n).map(|i| (i as Ppn * per as Ppn, per)).collect();
        LdFam { device, partitions }
    }

    /// Number of logical devices.
    pub fn logical_devices(&self) -> usize {
        self.partitions.len()
    }

    /// Expose logical device `ld` to a host. Each logical device may be
    /// attached once per host; the handle addresses it with a private,
    /// zero-based DPA.
    pub fn attach(&self, ld: usize) -> DmResult<LogicalDevice> {
        let &(base, pages) = self.partitions.get(ld).ok_or(DmError::InvalidAddress)?;
        Ok(LogicalDevice {
            device: self.device.clone(),
            base,
            bytes: pages * PAGE_SIZE as u64,
        })
    }
}

/// One host's private view of its logical device: a flat byte range
/// addressed by device-private addresses starting at 0.
pub struct LogicalDevice {
    device: Rc<GFam>,
    base: Ppn,
    bytes: u64,
}

impl LogicalDevice {
    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes
    }

    fn locate(&self, dpa: u64, len: usize) -> DmResult<()> {
        if dpa + len as u64 > self.bytes {
            return Err(DmError::OutOfBounds);
        }
        Ok(())
    }

    /// `store` at a device-private address.
    pub async fn store(&self, dpa: u64, data: &[u8]) -> DmResult<()> {
        self.locate(dpa, data.len())?;
        let mut off = 0usize;
        while off < data.len() {
            let cur = dpa + off as u64;
            let ppn = self.base + (cur / PAGE_SIZE as u64) as Ppn;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            self.device.write_page(ppn, in_page, &data[off..off + n]);
            off += n;
        }
        self.device.access(data.len() as u64).await;
        Ok(())
    }

    /// `load` from a device-private address.
    pub async fn load(&self, dpa: u64, len: u64) -> DmResult<Vec<u8>> {
        self.locate(dpa, len as usize)?;
        let mut out = vec![0u8; len as usize];
        let mut off = 0usize;
        while off < len as usize {
            let cur = dpa + off as u64;
            let ppn = self.base + (cur / PAGE_SIZE as u64) as Ppn;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len as usize - off);
            self.device.read_page(ppn, in_page, &mut out[off..off + n]);
            off += n;
        }
        self.device.access(len).await;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ModelParams;
    use simcore::Sim;

    #[test]
    fn partitions_are_private_and_isolated() {
        let sim = Sim::new();
        sim.block_on(async {
            let device = GFam::new(64, ModelParams::new());
            let ld = LdFam::partition(device, 4);
            assert_eq!(ld.logical_devices(), 4);
            let a = ld.attach(0).unwrap();
            let b = ld.attach(1).unwrap();
            assert_eq!(a.capacity(), 16 * PAGE_SIZE as u64);

            // Host A writes at its DPA 0; host B's DPA 0 is untouched —
            // same physical device, disjoint DPA spaces.
            a.store(0, b"host-a-private").await.unwrap();
            let bview = b.load(0, 14).await.unwrap();
            assert_eq!(bview, vec![0u8; 14], "LD-FAM partitions do not share");
            let aview = a.load(0, 14).await.unwrap();
            assert_eq!(&aview, b"host-a-private");
        });
    }

    #[test]
    fn bounds_enforced_per_partition() {
        let sim = Sim::new();
        sim.block_on(async {
            let device = GFam::new(32, ModelParams::new());
            let ld = LdFam::partition(device, 2);
            let a = ld.attach(0).unwrap();
            let cap = a.capacity();
            // Writing past the partition end must fail, not spill into the
            // neighbor's pages.
            assert_eq!(
                a.store(cap - 1, &[1, 2]).await.unwrap_err(),
                DmError::OutOfBounds
            );
            assert!(ld.attach(2).is_err());
        });
    }

    #[test]
    fn cross_page_access_within_partition() {
        let sim = Sim::new();
        sim.block_on(async {
            let device = GFam::new(32, ModelParams::new());
            let ld = LdFam::partition(device, 2);
            let a = ld.attach(1).unwrap();
            let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
            a.store(100, &data).await.unwrap();
            assert_eq!(a.load(100, 10_000).await.unwrap(), data);
        });
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn too_many_logical_devices_rejected() {
        let device = GFam::new(64, ModelParams::new());
        let _ = LdFam::partition(device, 17);
    }
}
