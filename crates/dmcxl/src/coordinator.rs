//! The coordinator server (paper §V-B1).
//!
//! "There is a coordinator server in the fabric, which is in charge of
//! managing the ownership of all CXL physical pages among all compute
//! servers. It communicates with compute servers using a reliable network
//! protocol." Hosts reserve batches of free pages and return surplus pages
//! when their local FIFO exceeds a high watermark — batching is what makes
//! page-ownership coordination cheap.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use simcore::Counter;
use simnet::{Addr, Network, NodeId};

use crate::gfam::Ppn;

/// RPC request types used by the ownership protocol.
pub mod req {
    /// Request a batch of free pages: body = `n: u32`.
    pub const REQUEST_PAGES: u8 = 30;
    /// Return a batch of free pages: body = `count: u32, ppn...`.
    pub const RETURN_PAGES: u8 = 31;
}

/// Well-known coordinator port.
pub const COORD_PORT: u16 = 7100;

/// The coordinator service.
pub struct Coordinator {
    free: RefCell<VecDeque<Ppn>>,
    rpc: Rc<rpclib::Rpc>,
    grants: Counter,
    returns: Counter,
}

impl Coordinator {
    /// Start the coordinator on `node`, owning all pages `0..capacity`.
    pub fn start(net: &Network, node: NodeId, capacity_pages: usize) -> Rc<Coordinator> {
        let rpc = rpclib::RpcBuilder::new(net, node, COORD_PORT).build();
        let coord = Rc::new(Coordinator {
            free: RefCell::new((0..capacity_pages as Ppn).collect()),
            rpc: rpc.clone(),
            grants: Counter::new(),
            returns: Counter::new(),
        });
        let c = coord.clone();
        rpc.register(req::REQUEST_PAGES, move |ctx| {
            let c = c.clone();
            async move {
                let n = ctx
                    .payload
                    .get(..4)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                    .unwrap_or(0) as usize;
                let mut free = c.free.borrow_mut();
                let take = n.min(free.len());
                let mut out = Vec::with_capacity(4 + 4 * take);
                out.extend_from_slice(&(take as u32).to_le_bytes());
                for _ in 0..take {
                    let p = free.pop_front().expect("len checked");
                    out.extend_from_slice(&p.to_le_bytes());
                }
                c.grants.add(1);
                Bytes::from(out)
            }
        });
        let c = coord.clone();
        rpc.register(req::RETURN_PAGES, move |ctx| {
            let c = c.clone();
            async move {
                if let Some(pages) = decode_pages(&ctx.payload) {
                    let mut free = c.free.borrow_mut();
                    for p in pages {
                        free.push_back(p);
                    }
                }
                c.returns.add(1);
                Bytes::new()
            }
        });
        coord
    }

    /// Tear down: unregister handlers (breaks the `Rc` cycle).
    pub fn shutdown(&self) {
        self.rpc.shutdown();
    }

    /// Chaos hook: crash the coordinator. Page-ownership state survives
    /// (fail-stop); hosts' grant/return RPCs time out until
    /// [`Coordinator::restart`].
    pub fn crash(&self) {
        self.rpc.set_offline(true);
    }

    /// Recover from [`Coordinator::crash`].
    pub fn restart(&self) {
        self.rpc.set_offline(false);
    }

    /// Whether the coordinator is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.rpc.is_offline()
    }

    /// The coordinator's RPC address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr()
    }

    /// Free pages currently owned by the coordinator.
    pub fn free_pages(&self) -> usize {
        self.free.borrow().len()
    }

    /// Number of page-request RPCs served (ownership-batching ablation).
    pub fn grant_rpcs(&self) -> u64 {
        self.grants.get()
    }

    /// Number of page-return RPCs served.
    pub fn return_rpcs(&self) -> u64 {
        self.returns.get()
    }
}

/// Encode a `REQUEST_PAGES` body.
pub fn encode_request(n: u32) -> Bytes {
    Bytes::from(n.to_le_bytes().to_vec())
}

/// Decode a grant response; returns the pages granted.
pub fn decode_grant(body: &Bytes) -> Option<Vec<Ppn>> {
    decode_pages(body)
}

/// Encode a `RETURN_PAGES` body.
pub fn encode_return(pages: &[Ppn]) -> Bytes {
    let mut out = Vec::with_capacity(4 + 4 * pages.len());
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for p in pages {
        out.extend_from_slice(&p.to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_pages(body: &Bytes) -> Option<Vec<Ppn>> {
    let n = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
    if body.len() < 4 + 4 * n {
        return None;
    }
    Some(
        (0..n)
            .map(|i| {
                u32::from_le_bytes(
                    body[4 + 4 * i..8 + 4 * i]
                        .try_into()
                        .expect("bounds checked"),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use simnet::{FabricConfig, NicConfig};

    #[test]
    fn grant_and_return_roundtrip() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 3);
        let cnode = net.add_node("coord", NicConfig::default());
        let hnode = net.add_node("host", NicConfig::default());
        let (free_after_grant, granted, free_final) = sim.block_on(async move {
            let coord = Coordinator::start(&net, cnode, 100);
            let rpc = rpclib::RpcBuilder::new(&net, hnode, 50).build();
            let resp = rpc
                .call(coord.addr(), req::REQUEST_PAGES, encode_request(10))
                .await
                .unwrap();
            let pages = decode_grant(&resp).unwrap();
            let after = coord.free_pages();
            rpc.call(coord.addr(), req::RETURN_PAGES, encode_return(&pages[..4]))
                .await
                .unwrap();
            (after, pages, coord.free_pages())
        });
        assert_eq!(granted.len(), 10);
        assert_eq!(free_after_grant, 90);
        assert_eq!(free_final, 94);
        // Granted pages are unique.
        let mut sorted = granted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn exhaustion_grants_partial_then_zero() {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 3);
        let cnode = net.add_node("coord", NicConfig::default());
        let hnode = net.add_node("host", NicConfig::default());
        sim.block_on(async move {
            let coord = Coordinator::start(&net, cnode, 5);
            let rpc = rpclib::RpcBuilder::new(&net, hnode, 50).build();
            let resp = rpc
                .call(coord.addr(), req::REQUEST_PAGES, encode_request(8))
                .await
                .unwrap();
            assert_eq!(decode_grant(&resp).unwrap().len(), 5);
            let resp = rpc
                .call(coord.addr(), req::REQUEST_PAGES, encode_request(1))
                .await
                .unwrap();
            assert_eq!(decode_grant(&resp).unwrap().len(), 0);
        });
    }
}
