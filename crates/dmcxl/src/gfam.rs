//! The G-FAM device: Global Fabric-Attached Memory (paper §II-B2, §V-B1).
//!
//! One Device-Physical-Address (DPA) space shared by every host on the CXL
//! fabric. The device holds:
//!
//! * the CXL physical pages themselves (real bytes);
//! * the per-page **reference counts**, stored in device memory and updated
//!   with atomic operations ("CXL 3.0 allows each host to perform arbitrary
//!   ISA-supported atomic operations on its connected CXL memory");
//! * a shared bandwidth resource modeling the device + switch data path,
//!   with the latency knob driven by [`memsim::ModelParams`] (Fig. 12).
//!
//! Refcounts use real `AtomicU32`s to mirror the fabric-atomic semantics
//! even though the simulation itself is single-threaded.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use dmcommon::PAGE_SIZE;
use memsim::{MemClass, ModelParams};
use simcore::{Counter, RateResource, SimTime};

/// CXL physical page number (index into the DPA space).
pub type Ppn = u32;

/// The shared G-FAM device. Every host holds an `Rc<GFam>`.
pub struct GFam {
    /// Device pages, materialized lazily on first touch (host-RAM saving;
    /// invisible to the model).
    pages: Vec<RefCell<Option<Box<[u8]>>>>,
    refcounts: Vec<AtomicU32>,
    params: ModelParams,
    /// Device + switch data-path bandwidth, shared by all hosts.
    bw: RateResource,
    traffic: Counter,
    atomics: Counter,
}

impl GFam {
    /// Create a device with `capacity_pages` CXL physical pages.
    pub fn new(capacity_pages: usize, params: ModelParams) -> Rc<GFam> {
        let bw = RateResource::new("gfam", params.cxl_bandwidth(), Duration::ZERO);
        Rc::new(GFam {
            pages: (0..capacity_pages).map(|_| RefCell::new(None)).collect(),
            refcounts: (0..capacity_pages).map(|_| AtomicU32::new(0)).collect(),
            params,
            bw,
            traffic: Counter::new(),
            atomics: Counter::new(),
        })
    }

    /// Number of CXL physical pages.
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// The shared model parameters (CXL latency knob).
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Total bytes moved through the device.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic.get()
    }

    /// Total fabric atomic operations performed.
    pub fn atomic_ops(&self) -> u64 {
        self.atomics.get()
    }

    /// Reset traffic counters (between warmup and measurement).
    pub fn reset_stats(&self) {
        self.traffic.reset();
        self.atomics.reset();
    }

    // -- data path ---------------------------------------------------------

    /// Charge one CXL access of `bytes` (latency + shared device bandwidth)
    /// and wait until it completes. Returns the completion instant.
    pub async fn access(&self, bytes: u64) -> SimTime {
        self.traffic.add(bytes);
        let finish = self.bw.reserve(bytes);
        let done = finish + self.params.latency(MemClass::Cxl);
        simcore::sleep_until(done).await;
        done
    }

    fn ensure(&self, ppn: Ppn) {
        let mut slot = self.pages[ppn as usize].borrow_mut();
        if slot.is_none() {
            *slot = Some(vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
    }

    /// Raw read of device bytes (time must be charged separately via
    /// [`GFam::access`]). Untouched pages read as zeros.
    pub fn read_page(&self, ppn: Ppn, offset: usize, out: &mut [u8]) {
        match self.pages[ppn as usize].borrow().as_deref() {
            Some(p) => out.copy_from_slice(&p[offset..offset + out.len()]),
            None => out.fill(0),
        }
    }

    /// Raw write of device bytes.
    pub fn write_page(&self, ppn: Ppn, offset: usize, data: &[u8]) {
        self.ensure(ppn);
        let mut p = self.pages[ppn as usize].borrow_mut();
        let p = p.as_deref_mut().expect("ensured");
        p[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copy one whole page `src` → `dst` on the device (COW data move).
    pub fn copy_page(&self, src: Ppn, dst: Ppn) {
        assert_ne!(src, dst);
        self.ensure(src);
        self.ensure(dst);
        let s = self.pages[src as usize].borrow();
        let mut d = self.pages[dst as usize].borrow_mut();
        d.as_deref_mut()
            .expect("ensured")
            .copy_from_slice(s.as_deref().expect("ensured"));
    }

    /// Drop a page's backing storage (called when the page returns to a
    /// free list; it reads as zeros until re-materialized).
    pub fn discard_page(&self, ppn: Ppn) {
        *self.pages[ppn as usize].borrow_mut() = None;
    }

    /// Zero a page (fresh mapping).
    pub fn zero_page(&self, ppn: Ppn) {
        if let Some(p) = self.pages[ppn as usize].borrow_mut().as_deref_mut() {
            p.fill(0);
        }
        // Unmaterialized pages already read as zeros.
    }

    // -- fabric atomics on refcounts ----------------------------------------

    /// Atomically increment a page's refcount; returns the new value.
    pub fn rc_inc(&self, ppn: Ppn) -> u32 {
        self.atomics.incr();
        self.refcounts[ppn as usize].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Atomically decrement a page's refcount; returns the new value.
    pub fn rc_dec(&self, ppn: Ppn) -> u32 {
        self.atomics.incr();
        let prev = self.refcounts[ppn as usize].fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "refcount underflow on CXL page {ppn}");
        prev - 1
    }

    /// Read a page's refcount.
    pub fn rc_get(&self, ppn: Ppn) -> u32 {
        self.atomics.incr();
        self.refcounts[ppn as usize].load(Ordering::Acquire)
    }

    /// Set a freshly-granted page's refcount to 1 (first mapping; paper
    /// §V-B3: "When a CXL physical page is mapped to a CXL virtual address,
    /// its ref count would be initialized to one").
    pub fn rc_init(&self, ppn: Ppn) {
        self.atomics.incr();
        let prev = self.refcounts[ppn as usize].swap(1, Ordering::AcqRel);
        assert_eq!(prev, 0, "initializing refcount of in-use CXL page {ppn}");
    }

    /// Non-counting refcount peek for invariant checks.
    pub fn rc_peek(&self, ppn: Ppn) -> u32 {
        self.refcounts[ppn as usize].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn page_data_roundtrip() {
        let g = GFam::new(4, ModelParams::new());
        g.write_page(1, 100, b"hello");
        let mut buf = [0u8; 5];
        g.read_page(1, 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn copy_and_zero() {
        let g = GFam::new(4, ModelParams::new());
        g.write_page(0, 0, &[7u8; PAGE_SIZE]);
        g.copy_page(0, 2);
        let mut buf = [0u8; 4];
        g.read_page(2, 4000, &mut buf);
        assert_eq!(buf, [7u8; 4]);
        g.zero_page(2);
        g.read_page(2, 4000, &mut buf);
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn refcount_atomics() {
        let g = GFam::new(2, ModelParams::new());
        g.rc_init(0);
        assert_eq!(g.rc_get(0), 1);
        assert_eq!(g.rc_inc(0), 2);
        assert_eq!(g.rc_dec(0), 1);
        assert_eq!(g.rc_dec(0), 0);
        assert!(g.atomic_ops() >= 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn refcount_underflow_panics() {
        let g = GFam::new(1, ModelParams::new());
        g.rc_dec(0);
    }

    #[test]
    fn access_charges_cxl_latency_and_bandwidth() {
        let sim = Sim::new();
        let params = ModelParams::new();
        let g = GFam::new(1, params.clone());
        let g2 = g.clone();
        let t = sim.block_on(async move {
            g2.access(4096).await;
            simcore::now().nanos()
        });
        // 4096B @ 64GB/s = 64ns + 265ns CXL latency.
        assert_eq!(t, 64 + 265);
        assert_eq!(g.traffic_bytes(), 4096);
    }

    #[test]
    fn latency_knob_applies_immediately() {
        let sim = Sim::new();
        let params = ModelParams::new();
        params.set_cxl_latency(Duration::from_nanos(75));
        let g = GFam::new(1, params);
        let t = sim.block_on(async move {
            g.access(0).await;
            simcore::now().nanos()
        });
        assert_eq!(t, 75);
    }

    #[test]
    fn concurrent_hosts_share_device_bandwidth() {
        let sim = Sim::new();
        let g = GFam::new(1, ModelParams::new());
        for _ in 0..2 {
            let g = g.clone();
            sim.spawn(async move {
                g.access(64_000).await; // 1us each at 64GB/s
            });
        }
        let end = sim.run();
        // Serialized on the device: 2us + latency, not 1us + latency.
        assert!(end.nanos() >= 2000 + 265, "end = {end}");
    }
}
