//! Property tests for the CXL G-FAM backend: random multi-host write
//! patterns never violate COW isolation or page-conservation invariants.

use dmcommon::{Ref, PAGE_SIZE};
use dmcxl::{check_fabric_invariants, CxlFabric, CxlHostConfig};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

const PS: u64 = PAGE_SIZE as u64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N hosts map the same ref and write random disjoint-or-overlapping
    /// ranges; each host's view must equal the original snapshot with only
    /// its own writes applied, and the producer's view stays pristine.
    #[test]
    fn cow_isolation_under_random_writes(
        pages in 1u64..6,
        writes in proptest::collection::vec(
            (0usize..3, 0u64..6 * PS, 1usize..3000, any::<u8>()),
            0..20
        ),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 17);
            let coord = net.add_node("coord", NicConfig::default());
            let fabric = CxlFabric::new(
                &net,
                coord,
                2048,
                ModelParams::new(),
                CxlHostConfig::default(),
            );
            let mk = |i: u32| {
                let node = net.add_node(format!("h{i}"), NicConfig::default());
                fabric.new_host(RpcBuilder::new(&net, node, 100).build())
            };
            let producer = mk(0);
            let hosts = [mk(1), mk(2), mk(3)];

            let len = pages * PS;
            let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let va = producer.alloc(len).unwrap();
            producer.store(va, &original).await.unwrap();
            let r = producer.create_ref(va, len).await.unwrap();

            // Each consumer maps the ref and tracks its expected view.
            let mut views = Vec::new();
            let mut vas = Vec::new();
            for h in &hosts {
                vas.push(h.map_ref(&r).await.unwrap());
                views.push(original.clone());
            }

            for (who, off, wlen, fill) in writes {
                let who = who % hosts.len();
                if off + wlen as u64 > len { continue; }
                let buf = vec![fill; wlen];
                hosts[who]
                    .store(vas[who] + off, &buf)
                    .await
                    .unwrap();
                views[who][off as usize..off as usize + wlen].copy_from_slice(&buf);
            }

            // Producer unchanged; every consumer sees exactly its writes.
            let pview = producer.load(va, len).await.unwrap();
            assert_eq!(&pview[..], &original[..], "producer isolation");
            for (i, h) in hosts.iter().enumerate() {
                let got = h.load(vas[i], len).await.unwrap();
                assert_eq!(&got[..], &views[i][..], "host {i} view");
            }

            // Invariants with the live ref accounted.
            let Ref::Cxl { pages: ref ppns, .. } = r else { unreachable!() };
            let pins: Vec<(u32, u32)> = ppns.iter().map(|&p| (p, 1)).collect();
            let all = [
                producer.clone(),
                hosts[0].clone(),
                hosts[1].clone(),
                hosts[2].clone(),
            ];
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &all, &pins);

            // Full teardown reclaims every page.
            producer.free(va).unwrap();
            for (i, h) in hosts.iter().enumerate() {
                h.free(vas[i]).unwrap();
            }
            producer.release_ref(&r).await.unwrap();
            // Let watermark returns drain.
            simcore::sleep(std::time::Duration::from_millis(1)).await;
            check_fabric_invariants(fabric.gfam(), fabric.coordinator(), &all, &[]);
        });
    }

    /// Store/load round trip for arbitrary offsets and lengths.
    #[test]
    fn cxl_store_load_roundtrip(
        region_pages in 1u64..8,
        chunks in proptest::collection::vec((0u64..8 * PS, 1usize..5000, any::<u8>()), 1..12),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 23);
            let coord = net.add_node("coord", NicConfig::default());
            let fabric = CxlFabric::new(
                &net,
                coord,
                1024,
                ModelParams::new(),
                CxlHostConfig::default(),
            );
            let node = net.add_node("h", NicConfig::default());
            let host = fabric.new_host(RpcBuilder::new(&net, node, 100).build());
            let len = region_pages * PS;
            let va = host.alloc(len).unwrap();
            let mut model = vec![0u8; len as usize];
            for (off, wlen, fill) in chunks {
                if off + wlen as u64 > len { continue; }
                let buf = vec![fill; wlen];
                host.store(va + off, &buf).await.unwrap();
                model[off as usize..off as usize + wlen].copy_from_slice(&buf);
            }
            let got = host.load(va, len).await.unwrap();
            assert_eq!(&got[..], &model[..]);
        });
    }
}
