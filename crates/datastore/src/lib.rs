//! # datastore — the distributed in-memory data store baseline (Ray/Spark)
//!
//! Models the data-sharing architecture the paper compares against in §III
//! and Fig. 8: Ray's Plasma object store and Spark's BlockTransferService.
//! Every node runs a *store service*; application processes talk to their
//! **local** store over IPC, and stores fetch objects from each other over
//! the network:
//!
//! * `put`: the caller copies the whole object into its local store
//!   (IPC round-trip + one copy) and gets back an [`ObjectId`];
//! * `get` of a remote object: the local store fetches the **entire**
//!   object from the owner's store over the network, keeps an immutable
//!   copy (first extra copy), then copies it again into the caller's heap
//!   (second extra copy) — "The two copies eliminate the need to handle
//!   data consistency issues";
//! * the fetched copy is cached, but because it is immutable, *every* get
//!   pays the store-to-heap copy, and writers must work on their private
//!   heap copy.
//!
//! [`ray_config`] and [`spark_config`] give the two calibrations (Spark
//! additionally pays per-byte serialization).

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{DmError, DmResult};
use memsim::NodeMemory;
use rpclib::{Rpc, RpcBuilder};
use simnet::{Addr, Network, NodeId};

/// Well-known store-service port.
pub const STORE_PORT: u16 = 7200;

/// RPC request type for store-to-store object fetch.
pub const FETCH: u8 = 40;

/// Cost calibration for a store implementation.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Application ↔ local-store IPC round-trip (gRPC / socket + scheduling).
    pub ipc_rtt: Duration,
    /// Per-byte serialization/deserialization cost (Spark pays this; raw
    /// Plasma buffers do not).
    pub ser_per_byte: Duration,
}

/// Ray / Plasma calibration.
pub fn ray_config() -> StoreConfig {
    StoreConfig {
        ipc_rtt: Duration::from_micros(250),
        ser_per_byte: Duration::ZERO,
    }
}

/// Spark BlockTransferService calibration (slower IPC path + ser/deser).
pub fn spark_config() -> StoreConfig {
    StoreConfig {
        ipc_rtt: Duration::from_micros(500),
        ser_per_byte: Duration::from_nanos(2),
    }
}

/// Names an object in the distributed store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObjectId {
    /// The store service that owns the primary copy.
    pub owner: Addr,
    /// Key within the owner store.
    pub key: u64,
    /// Object length in bytes.
    pub len: u64,
}

impl ObjectId {
    /// Wire encoding (22 bytes).
    pub fn encode(&self) -> [u8; 22] {
        let mut b = [0u8; 22];
        b[0..4].copy_from_slice(&self.owner.node.0.to_le_bytes());
        b[4..6].copy_from_slice(&self.owner.port.to_le_bytes());
        b[6..14].copy_from_slice(&self.key.to_le_bytes());
        b[14..22].copy_from_slice(&self.len.to_le_bytes());
        b
    }

    /// Decode the wire form.
    pub fn decode(b: &[u8]) -> DmResult<ObjectId> {
        if b.len() < 22 {
            return Err(DmError::Malformed);
        }
        Ok(ObjectId {
            owner: Addr {
                node: simnet::NodeId(u32::from_le_bytes(b[0..4].try_into().expect("len ok"))),
                port: u16::from_le_bytes(b[4..6].try_into().expect("len ok")),
            },
            key: u64::from_le_bytes(b[6..14].try_into().expect("len ok")),
            len: u64::from_le_bytes(b[14..22].try_into().expect("len ok")),
        })
    }
}

/// One node's store service plus the local-client interface.
pub struct ObjectStore {
    rpc: Rc<Rpc>,
    mem: NodeMemory,
    config: StoreConfig,
    objects: RefCell<HashMap<u64, Bytes>>,
    /// Immutable copies fetched from remote stores.
    remote_cache: RefCell<HashMap<ObjectId, Bytes>>,
    next_key: Cell<u64>,
}

impl ObjectStore {
    /// Start a store service on `node`.
    pub fn start(
        net: &Network,
        node: NodeId,
        mem: NodeMemory,
        config: StoreConfig,
    ) -> Rc<ObjectStore> {
        let rpc = RpcBuilder::new(net, node, STORE_PORT)
            .mem(mem.clone())
            .build();
        let store = Rc::new(ObjectStore {
            rpc: rpc.clone(),
            mem,
            config,
            objects: RefCell::new(HashMap::new()),
            remote_cache: RefCell::new(HashMap::new()),
            next_key: Cell::new(1),
        });
        let s = store.clone();
        rpc.register(FETCH, move |ctx| {
            let s = s.clone();
            async move {
                let Some(key_bytes) = ctx.payload.get(..8) else {
                    return Bytes::new();
                };
                let key = u64::from_le_bytes(key_bytes.try_into().expect("8 bytes"));
                let obj = s.objects.borrow().get(&key).cloned();
                match obj {
                    Some(data) => {
                        // Reading the object out of the store's memory.
                        s.mem.touch(data.len() as u64).await;
                        data
                    }
                    None => Bytes::new(),
                }
            }
        });
        store
    }

    /// Tear down: unregister handlers (breaks the `Rc` cycle).
    pub fn shutdown(&self) {
        self.rpc.shutdown();
        self.objects.borrow_mut().clear();
        self.remote_cache.borrow_mut().clear();
    }

    /// This store's service address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr()
    }

    /// Objects owned by this store.
    pub fn object_count(&self) -> usize {
        self.objects.borrow().len()
    }

    /// Cached remote copies held by this store.
    pub fn cached_count(&self) -> usize {
        self.remote_cache.borrow().len()
    }

    async fn ipc(&self) {
        simcore::sleep(self.config.ipc_rtt).await;
    }

    async fn serialize(&self, bytes: u64) {
        if !self.config.ser_per_byte.is_zero() {
            simcore::sleep(self.config.ser_per_byte * bytes as u32).await;
        }
    }

    /// `put` from a local application process: copy the object into the
    /// store, return its id.
    pub async fn put(self: &Rc<Self>, data: Bytes) -> DmResult<ObjectId> {
        self.ipc().await;
        self.serialize(data.len() as u64).await;
        self.mem.memcpy(data.len() as u64).await; // heap -> store copy
        let key = self.next_key.get();
        self.next_key.set(key + 1);
        let id = ObjectId {
            owner: self.addr(),
            key,
            len: data.len() as u64,
        };
        self.objects.borrow_mut().insert(key, data);
        Ok(id)
    }

    /// `get` from a local application process: returns a private heap copy
    /// of the object, fetching it from the owner store if needed.
    pub async fn get(self: &Rc<Self>, id: ObjectId) -> DmResult<Bytes> {
        self.ipc().await;
        if id.owner == self.addr() {
            // Local object: one store -> heap copy.
            let data = self
                .objects
                .borrow()
                .get(&id.key)
                .cloned()
                .ok_or(DmError::InvalidRef)?;
            self.mem.memcpy(data.len() as u64).await;
            return Ok(data);
        }
        // Remote object: fetch whole copy into the local store first.
        let cached = self.remote_cache.borrow().get(&id).cloned();
        let stored = match cached {
            Some(c) => c,
            None => {
                let resp = self
                    .rpc
                    .call(id.owner, FETCH, Bytes::from(id.key.to_le_bytes().to_vec()))
                    .await
                    .map_err(|_| DmError::Transport)?;
                if resp.len() as u64 != id.len {
                    return Err(DmError::InvalidRef);
                }
                // Copy #1: network buffer -> local store.
                self.mem.memcpy(resp.len() as u64).await;
                self.remote_cache.borrow_mut().insert(id, resp.clone());
                resp
            }
        };
        // Copy #2: local store -> application heap (always paid; the store
        // copy is immutable).
        self.serialize(stored.len() as u64).await;
        self.mem.memcpy(stored.len() as u64).await;
        Ok(stored)
    }

    /// Delete a locally-owned object.
    pub fn delete(&self, id: ObjectId) {
        self.objects.borrow_mut().remove(&id.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ModelParams;
    use simcore::Sim;
    use simnet::{FabricConfig, NicConfig};

    fn rig() -> (Sim, Network, Vec<NodeId>, ModelParams) {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 31);
        let nodes = (0..2)
            .map(|i| net.add_node(format!("n{i}"), NicConfig::default()))
            .collect();
        (sim, net, nodes, ModelParams::new())
    }

    #[test]
    fn object_id_roundtrip() {
        let id = ObjectId {
            owner: Addr {
                node: simnet::NodeId(3),
                port: 7200,
            },
            key: 99,
            len: 32768,
        };
        assert_eq!(ObjectId::decode(&id.encode()).unwrap(), id);
        assert!(ObjectId::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn local_put_get() {
        let (sim, net, nodes, params) = rig();
        sim.block_on(async move {
            let mem = NodeMemory::with_defaults("n0", params);
            let store = ObjectStore::start(&net, nodes[0], mem.clone(), ray_config());
            let data = Bytes::from(vec![7u8; 32 * 1024]);
            let id = store.put(data.clone()).await.unwrap();
            assert_eq!(id.len, 32 * 1024);
            let back = store.get(id).await.unwrap();
            assert_eq!(back, data);
            // put copy + get copy, both 2x (read+write) in the traffic model.
            assert_eq!(mem.traffic_bytes(), 4 * 32 * 1024);
        });
    }

    #[test]
    fn remote_get_pays_two_copies_and_full_transfer() {
        let (sim, net, nodes, params) = rig();
        let net2 = net.clone();
        sim.block_on(async move {
            let mem_a = NodeMemory::with_defaults("a", params.clone());
            let mem_b = NodeMemory::with_defaults("b", params);
            let a = ObjectStore::start(&net2, nodes[0], mem_a, ray_config());
            let b = ObjectStore::start(&net2, nodes[1], mem_b.clone(), ray_config());
            let data = Bytes::from(
                (0..32 * 1024u32)
                    .map(|i| (i % 253) as u8)
                    .collect::<Vec<_>>(),
            );
            let id = a.put(data.clone()).await.unwrap();

            let t0 = simcore::now();
            let got = b.get(id).await.unwrap();
            let first = simcore::now() - t0;
            assert_eq!(got, data);
            // Copy into b's store + copy to heap (each counts 2x bytes) +
            // the DMA accounting of the fetch response.
            assert!(
                mem_b.traffic_bytes() >= 4 * 32 * 1024,
                "traffic {}",
                mem_b.traffic_bytes()
            );
            assert_eq!(b.cached_count(), 1);

            // Second get: served from the local immutable copy, but still
            // pays IPC + store->heap copy.
            let t1 = simcore::now();
            let again = b.get(id).await.unwrap();
            let second = simcore::now() - t1;
            assert_eq!(again, data);
            assert!(second < first, "cache avoids the network fetch");
            assert!(second >= ray_config().ipc_rtt, "still pays IPC: {second:?}");
        });
    }

    #[test]
    fn get_latency_is_hundreds_of_microseconds_like_ray() {
        let (sim, net, nodes, params) = rig();
        sim.block_on(async move {
            let a = ObjectStore::start(
                &net,
                nodes[0],
                NodeMemory::with_defaults("a", params.clone()),
                ray_config(),
            );
            let b = ObjectStore::start(
                &net,
                nodes[1],
                NodeMemory::with_defaults("b", params),
                ray_config(),
            );
            let id = a.put(Bytes::from(vec![1u8; 32 * 1024])).await.unwrap();
            let t0 = simcore::now();
            b.get(id).await.unwrap();
            let lat = simcore::now() - t0;
            assert!(
                lat > Duration::from_micros(150) && lat < Duration::from_millis(2),
                "Ray-like latency, got {lat:?}"
            );
        });
    }

    #[test]
    fn spark_is_slower_than_ray() {
        let (sim, net, nodes, params) = rig();
        sim.block_on(async move {
            let ray = ObjectStore::start(
                &net,
                nodes[0],
                NodeMemory::with_defaults("ray", params.clone()),
                ray_config(),
            );
            let spark_store = ObjectStore::start(
                &net,
                net.add_node("spark", NicConfig::default()),
                NodeMemory::with_defaults("spark", params),
                spark_config(),
            );
            let data = Bytes::from(vec![5u8; 64 * 1024]);
            let t0 = simcore::now();
            let rid = ray.put(data.clone()).await.unwrap();
            ray.get(rid).await.unwrap();
            let ray_t = simcore::now() - t0;
            let t1 = simcore::now();
            let sid = spark_store.put(data).await.unwrap();
            spark_store.get(sid).await.unwrap();
            let spark_t = simcore::now() - t1;
            assert!(spark_t > ray_t, "spark {spark_t:?} vs ray {ray_t:?}");
        });
    }

    #[test]
    fn missing_object_is_invalid_ref() {
        let (sim, net, nodes, params) = rig();
        sim.block_on(async move {
            let store = ObjectStore::start(
                &net,
                nodes[0],
                NodeMemory::with_defaults("n0", params),
                ray_config(),
            );
            let bogus = ObjectId {
                owner: store.addr(),
                key: 12345,
                len: 10,
            };
            assert_eq!(store.get(bogus).await.unwrap_err(), DmError::InvalidRef);
        });
    }

    #[test]
    fn delete_removes_object() {
        let (sim, net, nodes, params) = rig();
        sim.block_on(async move {
            let store = ObjectStore::start(
                &net,
                nodes[0],
                NodeMemory::with_defaults("n0", params),
                ray_config(),
            );
            let id = store.put(Bytes::from_static(b"gone soon")).await.unwrap();
            store.delete(id);
            assert_eq!(store.object_count(), 0);
            assert!(store.get(id).await.is_err());
        });
    }
}
