//! Deterministic scale-factor population generator.
//!
//! The paper's social-network evaluation (Fig. 11) runs against a fixed
//! 500-user population, which says nothing about the north-star claim of
//! holding an SLO while serving *millions* of users. This crate generates
//! ClickGraph-style synthetic populations parameterised by a single
//! **scale factor**: `users = SF × 1000`, ~[`MEAN_FOLLOWERS`] follows per
//! user, ~[`MEAN_POSTS`] posts per user, and Zipf([`ZIPF_THETA`])
//! request-key skew.
//!
//! Two properties are load-bearing:
//!
//! - **Byte-reproducible at any SF.** Every per-user attribute is derived
//!   by mixing `(seed, stream, user)` through a SplitMix64 finalizer into
//!   an independent [`SimRng`] stream. No global RNG is threaded through
//!   the population, so user `u`'s data is the same whether it is the
//!   first or the millionth user materialised, whether generation runs on
//!   one thread or eight, and whether other users were ever touched.
//! - **Lazy.** A [`Population`] is three words (SF, user count, seed); at
//!   SF = 1000 the full follower graph would be ~400 MB, so nothing is
//!   materialised until a harness asks for a specific user's row.
//!
//! Degree distributions are uniform around their means (follower count in
//! `[50, 150]`, posts in `[25, 75]`); the Zipfian skew applies to *which
//! keys requests target* (via [`Population::sampler`]), matching how the
//! social workload already models hot users, not to the graph shape.

use simcore::rng::{SimRng, Zipf};

/// Users per unit of scale factor: SF = 1 ⇒ 1 000 users, SF = 1000 ⇒ 1 M.
pub const USERS_PER_SF: u32 = 1000;
/// Mean follower count (uniform in `[50, 150]`).
pub const MEAN_FOLLOWERS: u32 = 100;
/// Mean posts per user (uniform in `[25, 75]`).
pub const MEAN_POSTS: u32 = 50;
/// Zipf skew parameter for request hot keys (YCSB-standard 0.99).
pub const ZIPF_THETA: f64 = 0.99;

/// Stream tags keep the per-user attribute draws independent of each
/// other: the follower row and the post count of user `u` come from
/// unrelated SimRng streams even though both derive from `(seed, u)`.
const STREAM_FOLLOWERS: u64 = 0x666F_6C6C;
const STREAM_POSTS: u64 = 0x706F_7374;
const STREAM_SAMPLER: u64 = 0x7A69_7066;

/// SplitMix64 finalizer over `(seed, stream, user)` — the root of every
/// per-user RNG stream. Full-avalanche, so consecutive user ids land in
/// uncorrelated streams.
fn mix(seed: u64, stream: u64, user: u64) -> u64 {
    let mut z = seed ^ stream.rotate_left(32) ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A lazy, byte-reproducible synthetic social population.
///
/// Copyable and thread-safe by construction (it is only a seed plus a
/// size); every accessor recomputes from the mix function, so two
/// `Population` values with equal fields are indistinguishable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Population {
    scale_factor: u32,
    users: u32,
    seed: u64,
}

impl Population {
    /// Population at `scale_factor` (SF × 1000 users) derived from `seed`.
    ///
    /// # Panics
    /// Panics if `scale_factor` is 0.
    pub fn new(scale_factor: u32, seed: u64) -> Population {
        assert!(scale_factor > 0, "scale factor must be >= 1");
        Population {
            scale_factor,
            users: scale_factor * USERS_PER_SF,
            seed,
        }
    }

    /// The scale factor this population was built at.
    pub fn scale_factor(&self) -> u32 {
        self.scale_factor
    }

    /// Total number of users (SF × 1000).
    pub fn users(&self) -> u32 {
        self.users
    }

    /// The seed the population derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The users who follow `user` — i.e. the fan-out targets whose home
    /// timelines receive a copy when `user` composes a post. Uniform
    /// count in `[50, 150]` (mean [`MEAN_FOLLOWERS`]); targets are
    /// uniform over the population with self-follows remapped away.
    ///
    /// # Panics
    /// Panics if `user >= self.users()`.
    pub fn followers(&self, user: u32) -> Vec<u32> {
        assert!(user < self.users, "user {user} out of range");
        let rng = SimRng::new(mix(self.seed, STREAM_FOLLOWERS, user as u64));
        let count = MEAN_FOLLOWERS / 2 + rng.gen_range(MEAN_FOLLOWERS as u64 + 1) as u32;
        (0..count)
            .map(|_| {
                let t = rng.gen_range(self.users as u64) as u32;
                if t == user && self.users > 1 {
                    (t + 1) % self.users
                } else {
                    t
                }
            })
            .collect()
    }

    /// Follower count of `user` without materialising the row.
    pub fn follower_count(&self, user: u32) -> u32 {
        assert!(user < self.users, "user {user} out of range");
        let rng = SimRng::new(mix(self.seed, STREAM_FOLLOWERS, user as u64));
        MEAN_FOLLOWERS / 2 + rng.gen_range(MEAN_FOLLOWERS as u64 + 1) as u32
    }

    /// Number of posts `user` starts with (uniform in `[25, 75]`, mean
    /// [`MEAN_POSTS`]). Harnesses use this to size preload work.
    pub fn posts(&self, user: u32) -> u32 {
        assert!(user < self.users, "user {user} out of range");
        let rng = SimRng::new(mix(self.seed, STREAM_POSTS, user as u64));
        MEAN_POSTS / 2 + rng.gen_range(MEAN_POSTS as u64 + 1) as u32
    }

    /// Zipf([`ZIPF_THETA`]) hot-key sampler over the user id space,
    /// seeded from the population seed. Each call returns an independent
    /// but identically-seeded sampler: two samplers from the same
    /// population draw the same id sequence.
    pub fn sampler(&self) -> Zipf {
        Zipf::new(
            SimRng::new(mix(self.seed, STREAM_SAMPLER, 0)),
            self.users as usize,
            ZIPF_THETA,
        )
    }

    /// FNV-1a fingerprint of one user's full row (follower list + post
    /// count). Pure per-user function, so rows can be fingerprinted in
    /// any order on any number of threads.
    pub fn user_fingerprint(&self, user: u32) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &user.to_le_bytes());
        for f in self.followers(user) {
            h = fnv1a(h, &f.to_le_bytes());
        }
        fnv1a(h, &self.posts(user).to_le_bytes())
    }

    /// FNV-1a digest of the entire population: user fingerprints folded
    /// in id order. This is the golden value CI pins for SF = 1.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.users.to_le_bytes());
        for u in 0..self.users {
            h = fnv1a(h, &self.user_fingerprint(u).to_le_bytes());
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Golden digest for `Population::new(1, 42)`. Pinned so any change to
/// the generation scheme (mix constants, degree bounds, stream tags) is
/// caught as a diff instead of silently invalidating committed sweeps.
pub const GOLDEN_SF1_SEED42: u64 = 0xE004_AFBD_A8D6_A06F;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_digest_sf1() {
        let pop = Population::new(1, 42);
        assert_eq!(
            pop.digest(),
            GOLDEN_SF1_SEED42,
            "SF=1 seed=42 population changed — update GOLDEN_SF1_SEED42 \
             only if the generation scheme changed on purpose (committed \
             sweep CSVs must be regenerated too)"
        );
    }

    #[test]
    fn rows_are_order_and_thread_independent() {
        // Rows are pure functions of (seed, user): materialise them
        // backwards, twice, and across OS threads — identical bytes.
        let pop = Population::new(2, 7);
        let serial: Vec<u64> = (0..pop.users()).map(|u| pop.user_fingerprint(u)).collect();
        let backwards: Vec<u64> = (0..pop.users())
            .rev()
            .map(|u| pop.user_fingerprint(u))
            .collect();
        assert!(serial.iter().eq(backwards.iter().rev()));

        for threads in [2usize, 8] {
            let chunk = pop.users() as usize / threads + 1;
            let parallel: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = (t * chunk).min(pop.users() as usize) as u32;
                        let hi = ((t + 1) * chunk).min(pop.users() as usize) as u32;
                        s.spawn(move || {
                            (lo..hi)
                                .map(|u| pop.user_fingerprint(u))
                                .collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn degree_statistics_match_formulas() {
        let pop = Population::new(1, 3);
        let n = pop.users() as f64;

        let mut fsum = 0.0;
        let (mut fmin, mut fmax) = (u32::MAX, 0u32);
        let mut psum = 0.0;
        for u in 0..pop.users() {
            let fc = pop.follower_count(u);
            assert_eq!(fc as usize, pop.followers(u).len());
            fsum += fc as f64;
            fmin = fmin.min(fc);
            fmax = fmax.max(fc);
            psum += pop.posts(u) as f64;
        }
        // Uniform [50, 150]: mean 100, stderr ≈ 29/sqrt(1000) ≈ 0.92.
        let fmean = fsum / n;
        assert!((fmean - 100.0).abs() < 5.0, "follower mean {fmean}");
        assert!((50..=150).contains(&fmin) && (50..=150).contains(&fmax));
        // Uniform [25, 75]: mean 50.
        let pmean = psum / n;
        assert!((pmean - 50.0).abs() < 3.0, "post mean {pmean}");

        // No self-follows (population > 1 user).
        for u in (0..pop.users()).step_by(97) {
            assert!(pop.followers(u).iter().all(|&f| f != u));
        }
    }

    #[test]
    fn sampler_is_zipf_skewed_and_deterministic() {
        let pop = Population::new(1, 3);
        let z1 = pop.sampler();
        let z2 = pop.sampler();
        let mut counts = vec![0u64; pop.users() as usize];
        for _ in 0..20_000 {
            let a = z1.sample();
            assert_eq!(a, z2.sample(), "samplers from one population agree");
            counts[a] += 1;
        }
        // Zipf(0.99) over 1000 keys: the hottest key takes ~12% of mass.
        let hottest = *counts.iter().max().unwrap();
        assert!(hottest > 1500, "hottest key drew {hottest}/20000");
        assert!(counts.iter().filter(|&&c| c > 0).count() > 100);
    }

    #[test]
    fn scale_factor_scales_users() {
        assert_eq!(Population::new(1, 0).users(), 1000);
        assert_eq!(Population::new(10, 0).users(), 10_000);
        assert_eq!(Population::new(1000, 0).users(), 1_000_000);
        // Shared prefix property: user u's row does not depend on SF.
        let small = Population::new(1, 9);
        let big = Population::new(2, 9);
        // (Rows DO differ across SF because targets are drawn over the
        // whole id space — but the draw count and stream roots agree.)
        assert_eq!(small.posts(5), big.posts(5));
        assert_eq!(small.follower_count(5), big.follower_count(5));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn digest_stable_across_recomputation(sf in 1u32..4, seed in 0u64..1000) {
            let a = Population::new(sf, seed);
            let b = Population::new(sf, seed);
            prop_assert_eq!(a.digest(), b.digest());
        }

        #[test]
        fn different_seeds_differ(seed in 0u64..1000) {
            let a = Population::new(1, seed);
            let b = Population::new(1, seed ^ 0x5A5A);
            prop_assert_ne!(a.digest(), b.digest());
        }
    }
}
