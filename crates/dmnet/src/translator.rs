//! The Address translator (paper §V-A2, software-based translation).
//!
//! "All processes' translation entries are stored in a single in-memory hash
//! table" mapping DM virtual addresses to pinned-page addresses. The second,
//! MMU-based translation is implicit (host virtual → physical) and free in
//! the model. Lookup counters feed the paper's 0.17%-of-access-time
//! measurement (§V-A2).

use std::collections::HashMap;

use dmcommon::GlobalPid;

/// Pinned-page index inside the DM server.
pub type PageIdx = u32;

/// Hash-table translation from `(pid, vpn)` to pinned page.
#[derive(Default)]
pub struct Translator {
    table: HashMap<(u32, u64), PageIdx>,
    lookups: u64,
    misses: u64,
}

impl Translator {
    /// Create an empty translator.
    pub fn new() -> Translator {
        Translator::default()
    }

    /// Translate a virtual page number for a process.
    pub fn lookup(&mut self, pid: GlobalPid, vpn: u64) -> Option<PageIdx> {
        self.lookups += 1;
        let r = self.table.get(&(pid.0, vpn)).copied();
        if r.is_none() {
            self.misses += 1;
        }
        r
    }

    /// Translate without counting (internal bookkeeping paths).
    pub fn peek(&self, pid: GlobalPid, vpn: u64) -> Option<PageIdx> {
        self.table.get(&(pid.0, vpn)).copied()
    }

    /// Insert or replace a translation entry.
    pub fn insert(&mut self, pid: GlobalPid, vpn: u64, page: PageIdx) {
        self.table.insert((pid.0, vpn), page);
    }

    /// Remove a translation entry, returning the page it pointed to.
    pub fn remove(&mut self, pid: GlobalPid, vpn: u64) -> Option<PageIdx> {
        self.table.remove(&(pid.0, vpn))
    }

    /// Total lookups performed (for the translation-overhead experiment).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that missed (page faults handed to the Page manager).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of live entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Iterate over live entries (tests / invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u64), PageIdx)> + '_ {
        self.table.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = Translator::new();
        let pid = GlobalPid(3);
        assert_eq!(t.lookup(pid, 5), None);
        t.insert(pid, 5, 42);
        assert_eq!(t.lookup(pid, 5), Some(42));
        assert_eq!(t.remove(pid, 5), Some(42));
        assert_eq!(t.lookup(pid, 5), None);
        assert_eq!(t.entries(), 0);
    }

    #[test]
    fn processes_are_isolated() {
        let mut t = Translator::new();
        t.insert(GlobalPid(1), 7, 10);
        t.insert(GlobalPid(2), 7, 20);
        assert_eq!(t.lookup(GlobalPid(1), 7), Some(10));
        assert_eq!(t.lookup(GlobalPid(2), 7), Some(20));
    }

    #[test]
    fn counters_track_lookups_and_misses() {
        let mut t = Translator::new();
        t.insert(GlobalPid(1), 1, 1);
        t.lookup(GlobalPid(1), 1);
        t.lookup(GlobalPid(1), 2);
        t.peek(GlobalPid(1), 2); // not counted
        assert_eq!(t.lookups(), 2);
        assert_eq!(t.misses(), 1);
    }
}
