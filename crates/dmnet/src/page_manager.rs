//! The Page manager (paper §V-A1).
//!
//! Owns the pinned memory of one DM server:
//!
//! * a fixed pool of pinned pages managed in a **FIFO** free list;
//! * a 4-byte **reference count** per page ("stored linearly in the
//!   memory");
//! * per-process **VA allocation trees** ([`crate::va_tree::VaTree`]);
//! * the **`Ref` map** from `create_ref` keys to the pinned pages they
//!   share;
//! * the **hash-table translation** ([`crate::translator::Translator`]).
//!
//! Every operation is a pure in-memory state transition on real bytes; each
//! returns an [`OpCost`] describing the work done (pages faulted, bytes
//! copied, translation lookups) so the server layer can charge virtual time
//! and memory bandwidth for it.

use std::collections::{HashMap, VecDeque};

use dmcommon::{CopyMode, DmError, DmResult, GlobalPid, PAGE_SIZE};

use crate::translator::{PageIdx, Translator};
use crate::va_tree::VaTree;

/// Work performed by one Page-manager operation, for cost charging.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OpCost {
    /// Bytes physically copied (COW page copies, eager-copy page copies).
    pub bytes_copied: u64,
    /// Pages newly taken from the free FIFO.
    pub pages_faulted: u64,
    /// Pages whose refcount was touched.
    pub refcount_updates: u64,
}

impl OpCost {
    /// Accumulate another operation's cost (used by composite operations
    /// and the bench harnesses when aggregating per-request work).
    pub fn add(&mut self, other: OpCost) {
        self.bytes_copied += other.bytes_copied;
        self.pages_faulted += other.pages_faulted;
        self.refcount_updates += other.refcount_updates;
    }
}

struct RefEntry {
    pages: Vec<PageIdx>,
    len: u64,
    /// PID that created the ref, for lease-based reclamation: when the
    /// owning process's lease expires its unconsumed refs are released.
    /// `None` for refs with no attributable owner.
    owner: Option<u32>,
}

/// The state of one DM server's Page manager.
pub struct PageManager {
    /// Pinned pages, materialized lazily on first use so huge pools do not
    /// consume host RAM up front (the paper pins eagerly; the distinction
    /// is invisible to the model).
    pages: Vec<Option<Box<[u8]>>>,
    refcounts: Vec<u32>,
    free: VecDeque<PageIdx>,
    translator: Translator,
    processes: HashMap<u32, VaTree>,
    next_pid: u32,
    refs: HashMap<u64, RefEntry>,
    next_key: u64,
    copy_mode: CopyMode,
}

impl PageManager {
    /// Create a Page manager with `capacity_pages` pinned pages.
    pub fn new(capacity_pages: usize, copy_mode: CopyMode) -> PageManager {
        PageManager {
            pages: (0..capacity_pages).map(|_| None).collect(),
            refcounts: vec![0; capacity_pages],
            free: (0..capacity_pages as u32).collect(),
            translator: Translator::new(),
            processes: HashMap::new(),
            next_pid: 1,
            refs: HashMap::new(),
            next_key: 1,
            copy_mode,
        }
    }

    /// The copy policy in effect (COW vs the `-copy` ablation).
    pub fn copy_mode(&self) -> CopyMode {
        self.copy_mode
    }

    /// Free pages remaining.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Total pinned pages.
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// The translator (for overhead statistics).
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Register a new process, assigning its global PID (paper §V-A: "the
    /// global PID is assigned by our software running on DM servers").
    pub fn register_process(&mut self) -> GlobalPid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes.insert(pid, VaTree::new());
        GlobalPid(pid)
    }

    fn tree(&mut self, pid: GlobalPid) -> DmResult<&mut VaTree> {
        self.processes
            .get_mut(&pid.0)
            .ok_or(DmError::InvalidAddress)
    }

    /// Allocate `len` bytes of DM virtual address space. Pages are mapped
    /// lazily on first write (paper §V-A1 `ralloc`).
    pub fn ralloc(&mut self, pid: GlobalPid, len: u64) -> DmResult<u64> {
        self.tree(pid)?.alloc(len, PAGE_SIZE as u64)
    }

    /// Release a region: clear translations, unref pages, free the VA range
    /// (paper §V-A1 `rfree`).
    pub fn rfree(&mut self, pid: GlobalPid, va: u64) -> DmResult<OpCost> {
        let (start, len) = self.tree(pid)?.lookup(va)?;
        if start != va {
            return Err(DmError::InvalidAddress);
        }
        let mut cost = OpCost::default();
        for vpn in (start / PAGE_SIZE as u64)..((start + len) / PAGE_SIZE as u64) {
            if let Some(p) = self.translator.remove(pid, vpn) {
                self.unref(p);
                cost.refcount_updates += 1;
            }
        }
        self.tree(pid)?.free(start)?;
        Ok(cost)
    }

    fn unref(&mut self, p: PageIdx) {
        let rc = &mut self.refcounts[p as usize];
        debug_assert!(*rc > 0, "unref of free page");
        *rc -= 1;
        if *rc == 0 {
            self.free.push_back(p);
            // De-materialize: FIFO rotation would otherwise touch every
            // slot of a large pool and pin host RAM for the whole capacity.
            self.pages[p as usize] = None;
        }
    }

    fn take_free_page(&mut self) -> DmResult<PageIdx> {
        let p = self.free.pop_front().ok_or(DmError::OutOfMemory)?;
        debug_assert_eq!(self.refcounts[p as usize], 0);
        self.refcounts[p as usize] = 1;
        let slot = &mut self.pages[p as usize];
        if slot.is_none() {
            *slot = Some(vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
        Ok(p)
    }

    fn page(&self, p: PageIdx) -> &[u8] {
        self.pages[p as usize]
            .as_deref()
            .expect("page materialized")
    }

    fn page_mut(&mut self, p: PageIdx) -> &mut [u8] {
        self.pages[p as usize]
            .as_deref_mut()
            .expect("page materialized")
    }

    /// Fault-in a zeroed page for `(pid, vpn)`.
    fn fault_in(&mut self, pid: GlobalPid, vpn: u64, cost: &mut OpCost) -> DmResult<PageIdx> {
        let p = self.take_free_page()?;
        self.page_mut(p).fill(0);
        self.translator.insert(pid, vpn, p);
        cost.pages_faulted += 1;
        Ok(p)
    }

    /// Write `data` at `(pid, va)`, faulting pages in and performing
    /// copy-on-write on shared pages (paper §V-A2 "How to serve a write
    /// request").
    pub fn write(&mut self, pid: GlobalPid, va: u64, data: &[u8]) -> DmResult<OpCost> {
        if data.is_empty() {
            return Ok(OpCost::default());
        }
        let (start, rlen) = self.tree(pid)?.lookup(va)?;
        if va + data.len() as u64 > start + rlen {
            return Err(DmError::OutOfBounds);
        }
        let mut cost = OpCost::default();
        let mut off = 0usize;
        while off < data.len() {
            let cur = va + off as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let p = match self.translator.lookup(pid, vpn) {
                None => self.fault_in(pid, vpn, &mut cost)?,
                Some(p) if self.refcounts[p as usize] > 1 => {
                    // Copy-on-write: pop a new page, copy the old content,
                    // retarget the translation, unref the old page.
                    let newp = self.take_free_page()?;
                    let (old_page, new_page) = two_pages(&mut self.pages, p, newp);
                    new_page.copy_from_slice(old_page);
                    cost.bytes_copied += PAGE_SIZE as u64;
                    cost.pages_faulted += 1;
                    self.translator.insert(pid, vpn, newp);
                    self.unref(p);
                    cost.refcount_updates += 1;
                    newp
                }
                Some(p) => p,
            };
            self.page_mut(p)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
        Ok(cost)
    }

    /// Read `len` bytes at `(pid, va)`. Unmapped pages read as zeros
    /// (anonymous-memory semantics). Reads never check refcounts (paper
    /// §V-A2 "How to serve a read request").
    pub fn read(&mut self, pid: GlobalPid, va: u64, len: u64) -> DmResult<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let (start, rlen) = self.tree(pid)?.lookup(va)?;
        if va + len > start + rlen {
            return Err(DmError::OutOfBounds);
        }
        let mut out = vec![0u8; len as usize];
        let mut off = 0usize;
        while off < len as usize {
            let cur = va + off as u64;
            let vpn = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len as usize - off);
            if let Some(p) = self.translator.lookup(pid, vpn) {
                out[off..off + n].copy_from_slice(&self.page(p)[in_page..in_page + n]);
            }
            off += n;
        }
        Ok(out)
    }

    /// Create a shareable reference over `[va, va+len)` (paper §V-A1
    /// `create_ref`). In COW mode this bumps each page's refcount; in the
    /// `-copy` ablation it copies the whole region into fresh pages.
    ///
    /// Returns `(key, cost)`.
    pub fn create_ref(&mut self, pid: GlobalPid, va: u64, len: u64) -> DmResult<(u64, OpCost)> {
        if len == 0 || !va.is_multiple_of(PAGE_SIZE as u64) {
            return Err(DmError::InvalidAddress);
        }
        let (start, rlen) = self.tree(pid)?.lookup(va)?;
        if va + len > start + rlen {
            return Err(DmError::OutOfBounds);
        }
        let mut cost = OpCost::default();
        let n_pages = len.div_ceil(PAGE_SIZE as u64);
        let mut pages = Vec::with_capacity(n_pages as usize);
        for i in 0..n_pages {
            let vpn = va / PAGE_SIZE as u64 + i;
            // A ref must point at concrete pages; fault in still-virgin ones.
            let p = match self.translator.lookup(pid, vpn) {
                Some(p) => p,
                None => self.fault_in(pid, vpn, &mut cost)?,
            };
            pages.push(p);
        }
        let shared = match self.copy_mode {
            CopyMode::CopyOnWrite => {
                for &p in &pages {
                    self.refcounts[p as usize] += 1;
                    cost.refcount_updates += 1;
                }
                pages
            }
            CopyMode::Eager => {
                let mut copies = Vec::with_capacity(pages.len());
                for &p in &pages {
                    let newp = self.take_free_page()?;
                    let (src, dst) = two_pages(&mut self.pages, p, newp);
                    dst.copy_from_slice(src);
                    cost.bytes_copied += PAGE_SIZE as u64;
                    cost.pages_faulted += 1;
                    copies.push(newp);
                }
                copies
            }
        };
        let key = self.next_key;
        self.next_key += 1;
        self.refs.insert(
            key,
            RefEntry {
                pages: shared,
                len,
                owner: Some(pid.0),
            },
        );
        Ok((key, cost))
    }

    /// Map a reference into `pid`'s address space (paper §V-A1 `map_ref`).
    /// Returns `(va, len, cost)`.
    pub fn map_ref(&mut self, pid: GlobalPid, key: u64) -> DmResult<(u64, u64, OpCost)> {
        let (pages, len) = {
            let e = self.refs.get(&key).ok_or(DmError::InvalidRef)?;
            (e.pages.clone(), e.len)
        };
        let va = self.tree(pid)?.alloc(len, PAGE_SIZE as u64)?;
        let mut cost = OpCost::default();
        for (i, &p) in pages.iter().enumerate() {
            self.translator
                .insert(pid, va / PAGE_SIZE as u64 + i as u64, p);
            self.refcounts[p as usize] += 1;
            cost.refcount_updates += 1;
        }
        Ok((va, len, cost))
    }

    /// Drop a reference, unpinning its pages (extension to the paper's API:
    /// the `Ref` itself holds one refcount per page, which must eventually
    /// be released — see DESIGN.md §6).
    pub fn release_ref(&mut self, key: u64) -> DmResult<OpCost> {
        let e = self.refs.remove(&key).ok_or(DmError::InvalidRef)?;
        let mut cost = OpCost::default();
        for p in e.pages {
            self.unref(p);
            cost.refcount_updates += 1;
        }
        Ok(cost)
    }

    /// One-shot publish: write `data` into fresh pages owned directly by a
    /// new reference (no creator VA mapping at all — the `PUT_REF` fast
    /// path). `owner` attributes the ref for lease-based reclamation.
    /// Returns `(key, cost)`.
    pub fn put_ref(&mut self, data: &[u8], owner: Option<GlobalPid>) -> DmResult<(u64, OpCost)> {
        if data.is_empty() {
            return Err(DmError::InvalidAddress);
        }
        let n_pages = (data.len() as u64).div_ceil(PAGE_SIZE as u64) as usize;
        let mut cost = OpCost::default();
        let mut pages = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let p = self.take_free_page()?;
            cost.pages_faulted += 1;
            let lo = i * PAGE_SIZE;
            let hi = ((i + 1) * PAGE_SIZE).min(data.len());
            let page = self.page_mut(p);
            page[..hi - lo].copy_from_slice(&data[lo..hi]);
            if hi - lo < PAGE_SIZE {
                page[hi - lo..].fill(0);
            }
            pages.push(p);
        }
        let key = self.next_key;
        self.next_key += 1;
        self.refs.insert(
            key,
            RefEntry {
                pages,
                len: data.len() as u64,
                owner: owner.map(|p| p.0),
            },
        );
        Ok((key, cost))
    }

    /// Read `len` bytes at `off` within a reference's pages, without
    /// installing a mapping (the `READ_REF` fast path).
    pub fn read_ref(&mut self, key: u64, off: u64, len: u64) -> DmResult<Vec<u8>> {
        let (pages, rlen) = {
            let e = self.refs.get(&key).ok_or(DmError::InvalidRef)?;
            (e.pages.clone(), e.len)
        };
        if off + len > rlen {
            return Err(DmError::OutOfBounds);
        }
        let mut out = vec![0u8; len as usize];
        let mut done = 0usize;
        while done < len as usize {
            let cur = off + done as u64;
            let pi = (cur / PAGE_SIZE as u64) as usize;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len as usize - done);
            let p = pages[pi];
            out[done..done + n].copy_from_slice(&self.page(p)[in_page..in_page + n]);
            done += n;
        }
        Ok(out)
    }

    /// Reclaim everything a (crashed) process pinned: every translation of
    /// `pid` is removed and its page unreferenced, every ref the process
    /// created and never handed off is released, and the VA tree is
    /// discarded. This is the lease-expiry path — the server calls it when
    /// a client stops renewing — and it must restore refcount conservation
    /// exactly as if the process had politely `rfree`d and `release_ref`d
    /// everything.
    pub fn release_process(&mut self, pid: GlobalPid) -> DmResult<OpCost> {
        if self.processes.remove(&pid.0).is_none() {
            return Err(DmError::InvalidAddress);
        }
        let mut cost = OpCost::default();
        // Drop the process's mappings (the fallback when the VaTree is gone:
        // enumerate the translation table rather than walking regions).
        // Sorted: pages drain into the free FIFO in an order determined by
        // logical state alone, so WAL replay of a `ReleaseProcess` record
        // reproduces the live FIFO exactly (hash-map iteration order is
        // per-instance and would diverge between live and recovered PMs).
        let mut vpns: Vec<u64> = self
            .translator
            .iter()
            .filter(|&((p, _), _)| p == pid.0)
            .map(|((_, vpn), _)| vpn)
            .collect();
        vpns.sort_unstable();
        for vpn in vpns {
            if let Some(p) = self.translator.remove(pid, vpn) {
                self.unref(p);
                cost.refcount_updates += 1;
            }
        }
        // Release refs it created that nobody consumed yet (sorted for the
        // same replay-determinism reason as the mappings above).
        let mut keys: Vec<u64> = self
            .refs
            .iter()
            .filter(|(_, e)| e.owner == Some(pid.0))
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        for key in keys {
            cost.add(self.release_ref(key)?);
        }
        Ok(cost)
    }

    /// Length of the region a ref covers.
    pub fn ref_len(&self, key: u64) -> DmResult<u64> {
        self.refs
            .get(&key)
            .map(|e| e.len)
            .ok_or(DmError::InvalidRef)
    }

    /// PID a ref is attributed to for lease reclamation (`None` for
    /// unowned refs). Migration forwards the attribution to the target
    /// server.
    pub fn ref_owner(&self, key: u64) -> DmResult<Option<GlobalPid>> {
        self.refs
            .get(&key)
            .map(|e| e.owner.map(GlobalPid))
            .ok_or(DmError::InvalidRef)
    }

    /// Keys of every live ref attributed to `pid`, sorted (the coherence
    /// plane enumerates a dying process's refs for targeted invalidation
    /// and needs a deterministic order).
    pub fn keys_owned_by(&self, pid: GlobalPid) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .refs
            .iter()
            .filter(|&(_, e)| e.owner == Some(pid.0))
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Verify internal invariants; panics with a description on violation.
    /// Used by unit and property tests.
    pub fn check_invariants(&self) {
        let cap = self.pages.len();
        // 1. Free pages have rc == 0 and appear exactly once in the FIFO.
        let mut seen = vec![false; cap];
        for &p in &self.free {
            assert!(!seen[p as usize], "page {p} twice in free FIFO");
            seen[p as usize] = true;
            assert_eq!(self.refcounts[p as usize], 0, "free page {p} has rc != 0");
        }
        // 2. Non-free pages have rc > 0.
        for (p, &rc) in self.refcounts.iter().enumerate() {
            if !seen[p] {
                assert!(rc > 0, "lost page {p}: rc == 0 but not in free FIFO");
            }
        }
        // 3. Refcount conservation: rc(p) == #translations(p) + #refs(p).
        let mut expected = vec![0u32; cap];
        for (_, p) in self.translator.iter() {
            expected[p as usize] += 1;
        }
        for e in self.refs.values() {
            for &p in &e.pages {
                expected[p as usize] += 1;
            }
        }
        for (p, (&rc, &exp)) in self.refcounts.iter().zip(&expected).enumerate() {
            assert_eq!(rc, exp, "page {p}: rc {rc} != mappings+refs {exp}");
        }
    }

    /// Append a canonical snapshot of the full state to `out` (the durable
    /// tier's checkpoint payload, DESIGN.md §12). Canonical means two
    /// managers with equal logical state produce identical bytes: hash-map
    /// backed collections are emitted in sorted order, while the free FIFO
    /// is emitted in queue order because its order *is* logical state
    /// (future allocations pop from the front). The translator's
    /// lookup/miss statistics are volatile and excluded.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        out.push(match self.copy_mode {
            CopyMode::CopyOnWrite => 0,
            CopyMode::Eager => 1,
        });
        out.extend_from_slice(&self.next_pid.to_le_bytes());
        out.extend_from_slice(&self.next_key.to_le_bytes());
        out.extend_from_slice(&(self.free.len() as u32).to_le_bytes());
        for &p in &self.free {
            out.extend_from_slice(&p.to_le_bytes());
        }
        let used: Vec<u32> = (0..self.pages.len() as u32)
            .filter(|&p| self.refcounts[p as usize] > 0)
            .collect();
        out.extend_from_slice(&(used.len() as u32).to_le_bytes());
        for p in used {
            out.extend_from_slice(&p.to_le_bytes());
            out.extend_from_slice(&self.refcounts[p as usize].to_le_bytes());
            out.extend_from_slice(self.page(p));
        }
        let mut pids: Vec<u32> = self.processes.keys().copied().collect();
        pids.sort_unstable();
        out.extend_from_slice(&(pids.len() as u32).to_le_bytes());
        for pid in pids {
            let tree = &self.processes[&pid];
            out.extend_from_slice(&pid.to_le_bytes());
            out.extend_from_slice(&(tree.len() as u32).to_le_bytes());
            for (start, len) in tree.iter() {
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        let mut xlations: Vec<((u32, u64), PageIdx)> = self.translator.iter().collect();
        xlations.sort_unstable_by_key(|&(k, _)| k);
        out.extend_from_slice(&(xlations.len() as u32).to_le_bytes());
        for ((pid, vpn), p) in xlations {
            out.extend_from_slice(&pid.to_le_bytes());
            out.extend_from_slice(&vpn.to_le_bytes());
            out.extend_from_slice(&p.to_le_bytes());
        }
        let mut keys: Vec<u64> = self.refs.keys().copied().collect();
        keys.sort_unstable();
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for key in keys {
            let e = &self.refs[&key];
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.push(e.owner.is_some() as u8);
            out.extend_from_slice(&e.owner.unwrap_or(0).to_le_bytes());
            out.extend_from_slice(&(e.pages.len() as u32).to_le_bytes());
            for &p in &e.pages {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
    }

    /// Canonical snapshot as a fresh buffer (see [`Self::snapshot_into`]).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Rebuild a manager from a snapshot produced by
    /// [`Self::snapshot_into`], advancing `pos` past the consumed bytes
    /// (a multi-shard server concatenates one snapshot per shard).
    /// `None` on any malformed input.
    pub fn restore_from(buf: &[u8], pos: &mut usize) -> Option<PageManager> {
        let mut c = SnapCursor { buf, pos: *pos };
        let capacity = c.u32()? as usize;
        let copy_mode = match c.u8()? {
            0 => CopyMode::CopyOnWrite,
            1 => CopyMode::Eager,
            _ => return None,
        };
        let mut pm = PageManager::new(capacity, copy_mode);
        pm.next_pid = c.u32()?;
        pm.next_key = c.u64()?;
        pm.free.clear();
        for _ in 0..c.u32()? {
            let p = c.u32()?;
            if p as usize >= capacity {
                return None;
            }
            pm.free.push_back(p);
        }
        for _ in 0..c.u32()? {
            let p = c.u32()? as usize;
            if p >= capacity {
                return None;
            }
            pm.refcounts[p] = c.u32()?;
            pm.pages[p] = Some(c.take(PAGE_SIZE)?.to_vec().into_boxed_slice());
        }
        for _ in 0..c.u32()? {
            let pid = c.u32()?;
            let mut tree = VaTree::new();
            for _ in 0..c.u32()? {
                let start = c.u64()?;
                let len = c.u64()?;
                tree.restore_range(start, len);
            }
            pm.processes.insert(pid, tree);
        }
        for _ in 0..c.u32()? {
            let pid = c.u32()?;
            let vpn = c.u64()?;
            let p = c.u32()?;
            pm.translator.insert(GlobalPid(pid), vpn, p);
        }
        for _ in 0..c.u32()? {
            let key = c.u64()?;
            let len = c.u64()?;
            let has_owner = c.u8()? != 0;
            let owner = c.u32()?;
            let npages = c.u32()? as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                pages.push(c.u32()?);
            }
            pm.refs.insert(
                key,
                RefEntry {
                    pages,
                    len,
                    owner: has_owner.then_some(owner),
                },
            );
        }
        *pos = c.pos;
        Some(pm)
    }

    /// FNV-1a digest of the canonical snapshot — equal digests mean equal
    /// logical state (recovery oracles compare recovered vs shadow).
    pub fn state_digest(&self) -> u64 {
        crate::wal::fnv1a(&self.snapshot())
    }
}

struct SnapCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapCursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Split-borrow two distinct (materialized) pages as (src, dst).
fn two_pages(pages: &mut [Option<Box<[u8]>>], src: PageIdx, dst: PageIdx) -> (&[u8], &mut [u8]) {
    assert_ne!(src, dst);
    let (a, b) = (src as usize, dst as usize);
    if a < b {
        let (lo, hi) = pages.split_at_mut(b);
        (
            lo[a].as_deref().expect("page materialized"),
            hi[0].as_deref_mut().expect("page materialized"),
        )
    } else {
        let (lo, hi) = pages.split_at_mut(a);
        (
            hi[0].as_deref().expect("page materialized"),
            lo[b].as_deref_mut().expect("page materialized"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u64 = PAGE_SIZE as u64;

    fn pm() -> (PageManager, GlobalPid) {
        let mut pm = PageManager::new(64, CopyMode::CopyOnWrite);
        let pid = pm.register_process();
        (pm, pid)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, 3 * PS).unwrap();
        let data: Vec<u8> = (0..3 * PS).map(|i| (i % 255) as u8).collect();
        pm.write(pid, va, &data).unwrap();
        assert_eq!(pm.read(pid, va, 3 * PS).unwrap(), data);
        // Sub-range, unaligned.
        assert_eq!(pm.read(pid, va + 100, 50).unwrap(), &data[100..150]);
        pm.check_invariants();
    }

    #[test]
    fn lazy_mapping_on_first_write() {
        let (mut pm, pid) = pm();
        let free0 = pm.free_pages();
        let va = pm.ralloc(pid, 4 * PS).unwrap();
        assert_eq!(pm.free_pages(), free0, "ralloc maps nothing");
        // Reading an unmapped region returns zeros without faulting.
        assert_eq!(pm.read(pid, va, 10).unwrap(), vec![0; 10]);
        assert_eq!(pm.free_pages(), free0);
        // First write faults exactly the touched pages.
        let cost = pm.write(pid, va + PS, &[1, 2, 3]).unwrap();
        assert_eq!(cost.pages_faulted, 1);
        assert_eq!(pm.free_pages(), free0 - 1);
        pm.check_invariants();
    }

    #[test]
    fn rfree_returns_pages() {
        let (mut pm, pid) = pm();
        let free0 = pm.free_pages();
        let va = pm.ralloc(pid, 2 * PS).unwrap();
        pm.write(pid, va, &vec![9u8; 2 * PAGE_SIZE]).unwrap();
        assert_eq!(pm.free_pages(), free0 - 2);
        pm.rfree(pid, va).unwrap();
        assert_eq!(pm.free_pages(), free0);
        assert!(pm.read(pid, va, 1).is_err(), "region gone");
        pm.check_invariants();
    }

    #[test]
    fn create_ref_shares_pages_cow_on_writer() {
        let (mut pm, pid) = pm();
        let writer = pm.register_process();
        let va = pm.ralloc(pid, 2 * PS).unwrap();
        let original: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 13) as u8).collect();
        pm.write(pid, va, &original).unwrap();

        let (key, cost) = pm.create_ref(pid, va, 2 * PS).unwrap();
        assert_eq!(cost.bytes_copied, 0, "COW create_ref copies nothing");

        let (wva, wlen, _) = pm.map_ref(writer, key).unwrap();
        assert_eq!(wlen, 2 * PS);
        // Reader sees the creator's bytes without any copy.
        assert_eq!(pm.read(writer, wva, 2 * PS).unwrap(), original);

        // Writer writes one byte into page 0: COW copies exactly one page.
        let wcost = pm.write(writer, wva + 5, &[0xFF]).unwrap();
        assert_eq!(wcost.bytes_copied, PS);
        // Writer sees its own write...
        assert_eq!(pm.read(writer, wva + 5, 1).unwrap(), vec![0xFF]);
        // ...creator still sees the original (isolation).
        assert_eq!(pm.read(pid, va, 2 * PS).unwrap(), original);
        // Page 1 is still physically shared: another writer write to page 1
        // COWs again, page 0 write by the same writer now does not.
        let wcost2 = pm.write(writer, wva + 6, &[0xEE]).unwrap();
        assert_eq!(wcost2.bytes_copied, 0, "already-private page");
        pm.check_invariants();
    }

    #[test]
    fn creator_write_after_create_ref_is_isolated() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, PS).unwrap();
        pm.write(pid, va, b"before").unwrap();
        let (key, _) = pm.create_ref(pid, va, PS).unwrap();
        // Creator's own write must also COW (the ref pinned the old page).
        let cost = pm.write(pid, va, b"after!").unwrap();
        assert_eq!(cost.bytes_copied, PS);
        let reader = pm.register_process();
        let (rva, _, _) = pm.map_ref(reader, key).unwrap();
        assert_eq!(&pm.read(reader, rva, 6).unwrap(), b"before");
        assert_eq!(&pm.read(pid, va, 6).unwrap(), b"after!");
        pm.check_invariants();
    }

    #[test]
    fn ref_survives_creator_rfree() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, PS).unwrap();
        pm.write(pid, va, b"persist").unwrap();
        let (key, _) = pm.create_ref(pid, va, PS).unwrap();
        pm.rfree(pid, va).unwrap();
        let reader = pm.register_process();
        let (rva, _, _) = pm.map_ref(reader, key).unwrap();
        assert_eq!(&pm.read(reader, rva, 7).unwrap(), b"persist");
        pm.check_invariants();
    }

    #[test]
    fn release_ref_frees_pages_when_last() {
        let (mut pm, pid) = pm();
        let free0 = pm.free_pages();
        let va = pm.ralloc(pid, 2 * PS).unwrap();
        pm.write(pid, va, &vec![1u8; 2 * PAGE_SIZE]).unwrap();
        let (key, _) = pm.create_ref(pid, va, 2 * PS).unwrap();
        pm.rfree(pid, va).unwrap();
        assert_eq!(pm.free_pages(), free0 - 2, "ref still pins pages");
        pm.release_ref(key).unwrap();
        assert_eq!(pm.free_pages(), free0, "all pages reclaimed");
        assert!(pm.release_ref(key).is_err(), "double release rejected");
        pm.check_invariants();
    }

    #[test]
    fn eager_copy_mode_copies_at_create_ref() {
        let mut pm = PageManager::new(64, CopyMode::Eager);
        let pid = pm.register_process();
        let va = pm.ralloc(pid, 4 * PS).unwrap();
        pm.write(pid, va, &vec![7u8; 4 * PAGE_SIZE]).unwrap();
        let (key, cost) = pm.create_ref(pid, va, 4 * PS).unwrap();
        assert_eq!(
            cost.bytes_copied,
            4 * PS,
            "-copy ablation copies everything"
        );
        // Creator's subsequent writes need no COW: pages are private again.
        let wcost = pm.write(pid, va, &[0u8; 8]).unwrap();
        assert_eq!(wcost.bytes_copied, 0);
        let reader = pm.register_process();
        let (rva, _, _) = pm.map_ref(reader, key).unwrap();
        assert_eq!(pm.read(reader, rva, 8).unwrap(), vec![7u8; 8]);
        pm.check_invariants();
    }

    #[test]
    fn out_of_memory_reported() {
        let mut pm = PageManager::new(2, CopyMode::CopyOnWrite);
        let pid = pm.register_process();
        let va = pm.ralloc(pid, 3 * PS).unwrap(); // VA ok, pages lazy
        let r = pm.write(pid, va, &vec![1u8; 3 * PAGE_SIZE]);
        assert_eq!(r.unwrap_err(), DmError::OutOfMemory);
    }

    #[test]
    fn bounds_checked() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, PS).unwrap();
        assert_eq!(
            pm.write(pid, va + PS - 1, &[1, 2]).unwrap_err(),
            DmError::OutOfBounds
        );
        assert_eq!(pm.read(pid, va, PS + 1).unwrap_err(), DmError::OutOfBounds);
        assert!(pm.read(pid, va + 7, 0).is_ok());
    }

    #[test]
    fn map_ref_unknown_key_rejected() {
        let (mut pm, pid) = pm();
        assert_eq!(pm.map_ref(pid, 999).unwrap_err(), DmError::InvalidRef);
    }

    #[test]
    fn multiple_mappers_share_then_diverge() {
        let (mut pm, creator) = pm();
        let a = pm.register_process();
        let b = pm.register_process();
        let va = pm.ralloc(creator, PS).unwrap();
        pm.write(creator, va, b"shared").unwrap();
        let (key, _) = pm.create_ref(creator, va, PS).unwrap();
        let (ava, _, _) = pm.map_ref(a, key).unwrap();
        let (bva, _, _) = pm.map_ref(b, key).unwrap();
        pm.write(a, ava, b"AAAAAA").unwrap();
        pm.write(b, bva, b"BBBBBB").unwrap();
        assert_eq!(&pm.read(creator, va, 6).unwrap(), b"shared");
        assert_eq!(&pm.read(a, ava, 6).unwrap(), b"AAAAAA");
        assert_eq!(&pm.read(b, bva, 6).unwrap(), b"BBBBBB");
        pm.check_invariants();
    }

    #[test]
    fn release_process_reclaims_all_pins() {
        let (mut pm, pid) = pm();
        let free0 = pm.free_pages();
        // Mappings + an unconsumed ref + a put_ref, all owned by `pid`.
        let va = pm.ralloc(pid, 3 * PS).unwrap();
        pm.write(pid, va, &vec![5u8; 3 * PAGE_SIZE]).unwrap();
        pm.create_ref(pid, va, 2 * PS).unwrap();
        pm.put_ref(&[1u8; 100], Some(pid)).unwrap();
        assert!(pm.free_pages() < free0);
        pm.release_process(pid).unwrap();
        assert_eq!(pm.free_pages(), free0, "all pins reclaimed");
        assert!(pm.ralloc(pid, PS).is_err(), "process is gone");
        assert!(
            pm.release_process(pid).is_err(),
            "double release is rejected"
        );
        pm.check_invariants();
    }

    #[test]
    fn release_process_keeps_other_processes_pins() {
        let (mut pm, crasher) = pm();
        let survivor = pm.register_process();
        let va = pm.ralloc(crasher, PS).unwrap();
        pm.write(crasher, va, b"handoff").unwrap();
        let (key, _) = pm.create_ref(crasher, va, PS).unwrap();
        // Survivor maps the ref (its own pin) before the crasher dies.
        let (sva, _, _) = pm.map_ref(survivor, key).unwrap();
        pm.release_process(crasher).unwrap();
        // The survivor's mapping keeps the page alive and readable.
        assert_eq!(&pm.read(survivor, sva, 7).unwrap(), b"handoff");
        // The crasher's own ref pin is gone.
        assert_eq!(pm.release_ref(key).unwrap_err(), DmError::InvalidRef);
        pm.check_invariants();
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_everything() {
        let (mut pm, pid) = pm();
        let mapper = pm.register_process();
        let va = pm.ralloc(pid, 3 * PS).unwrap();
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        pm.write(pid, va, &data).unwrap();
        let (key, _) = pm.create_ref(pid, va, 2 * PS).unwrap();
        let (mva, _, _) = pm.map_ref(mapper, key).unwrap();
        pm.write(mapper, mva, b"cow!").unwrap(); // diverge one page
        pm.put_ref(&[7u8; 100], Some(mapper)).unwrap();

        let snap = pm.snapshot();
        let mut pos = 0;
        let mut back = PageManager::restore_from(&snap, &mut pos).unwrap();
        assert_eq!(pos, snap.len(), "restore consumes the whole snapshot");
        back.check_invariants();
        assert_eq!(back.state_digest(), pm.state_digest());
        // Logical state identical: reads, free count, and future behavior.
        assert_eq!(back.read(pid, va, 3 * PS).unwrap(), data);
        assert_eq!(&back.read(mapper, mva, 4).unwrap(), b"cow!");
        assert_eq!(back.free_pages(), pm.free_pages());
        assert_eq!(
            back.register_process().0,
            pm.register_process().0,
            "next_pid restored"
        );
        // Free-FIFO order restored: identical allocation sequence.
        let (ka, _) = back.put_ref(&[1], None).unwrap();
        let (kb, _) = pm.put_ref(&[1], None).unwrap();
        assert_eq!(ka, kb, "next_key restored");
        assert_eq!(back.state_digest(), pm.state_digest());
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, PS).unwrap();
        pm.write(pid, va, b"x").unwrap();
        let snap = pm.snapshot();
        // Truncations at every boundary fail cleanly.
        for cut in [0, 1, 4, snap.len() / 2, snap.len() - 1] {
            let mut pos = 0;
            assert!(
                PageManager::restore_from(&snap[..cut], &mut pos).is_none(),
                "truncation at {cut} must fail"
            );
        }
        // Out-of-range page index fails.
        let mut bad = snap.clone();
        bad[0] = 1; // capacity 1 page, but indices reference more
        bad[1] = 0;
        bad[2] = 0;
        bad[3] = 0;
        let mut pos = 0;
        assert!(PageManager::restore_from(&bad, &mut pos).is_none());
    }

    #[test]
    fn unaligned_create_ref_rejected() {
        let (mut pm, pid) = pm();
        let va = pm.ralloc(pid, 2 * PS).unwrap();
        assert_eq!(
            pm.create_ref(pid, va + 1, PS).unwrap_err(),
            DmError::InvalidAddress
        );
        assert_eq!(
            pm.create_ref(pid, va, 0).unwrap_err(),
            DmError::InvalidAddress
        );
    }
}
