//! Log-structured durability for the DM server (DESIGN.md §12).
//!
//! An opt-in write-ahead log of every **acknowledged mutating operation**:
//! the server appends a checksummed [`Record`] to the log *before* the
//! response for the op is sent (log-before-ack), so a crashed server can
//! rebuild the exact acknowledged state — page bytes, refcounts, COW
//! sharing, VA trees, process registrations and the invalidation epoch —
//! by replaying the log ([`crate::DmServer::restart_from_log`]).
//!
//! The log is *logical redo*: records name operations, not physical state,
//! and the [`crate::PageManager`] is deterministic, so replay reproduces
//! every internal detail including the FIFO free-list order. Background
//! growth is bounded by **checkpoint compaction**: when the live log
//! exceeds [`WalConfig::compact_threshold_bytes`], the whole log is
//! replaced by one [`Record::Checkpoint`] carrying a canonical snapshot of
//! the server state. The swap is atomic (the write-new-then-rename idiom
//! of log-structured stores); the modeled failure mode is a *torn tail* of
//! the append stream, which recovery handles by stopping at the last
//! record with a valid checksum.
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! [len u32][seq u64][crc32 u32][payload: len bytes]
//! ```
//!
//! `crc32` (IEEE) covers `seq || payload`, so a record that is truncated,
//! bit-flipped, or spliced from another position fails validation. `seq`
//! increases by exactly 1 per record and survives compaction, making a
//! stale pre-compaction suffix unspliceable after the checkpoint.
//!
//! Time is charged against a [`memsim::DurableMedia`]; the zero-cost
//! device ([`WalConfig::zero_cost`], selected by `DM_DURABLE=1`) performs
//! all of the bookkeeping with no virtual-time charge and no executor
//! yield, so enabling it cannot perturb the simulation schedule — the CI
//! `results-deterministic` job proves every committed CSV regenerates
//! byte-identically with it on.

use std::cell::{Cell, RefCell};

use memsim::{DurableMedia, DurableMediaParams};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise — no
/// table, no dependency; the log is not on any hot path.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash, used for state digests (recovery oracles compare
/// digests of canonical snapshots).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One logged server mutation. Fields record enough to replay the op
/// deterministically plus the values the original execution returned
/// (`va`, `key`), which replay asserts against to catch divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// `REGISTER`: a process registered from `node:port`.
    Register {
        /// Fabric node id of the registering endpoint.
        node: u32,
        /// Port of the registering endpoint.
        port: u16,
    },
    /// `ALLOC` on `shard` for `pid`; the VA tree returned `va`.
    Alloc {
        /// Owning shard.
        shard: u16,
        /// Allocating process.
        pid: u32,
        /// Requested length in bytes.
        len: u64,
        /// VA the original execution returned (untagged).
        va: u64,
    },
    /// `FREE` of the region at `va`.
    Free {
        /// Owning shard.
        shard: u16,
        /// Freeing process.
        pid: u32,
        /// Region start (untagged).
        va: u64,
    },
    /// `WRITE` of `data` at `va` (COW decisions replay deterministically).
    Write {
        /// Owning shard.
        shard: u16,
        /// Writing process.
        pid: u32,
        /// Write offset (untagged).
        va: u64,
        /// The written bytes.
        data: Vec<u8>,
    },
    /// `CREATE_REF` over `[va, va+len)`; the key space returned `key`.
    CreateRef {
        /// Owning shard.
        shard: u16,
        /// Creating process.
        pid: u32,
        /// Region start (untagged).
        va: u64,
        /// Region length.
        len: u64,
        /// Key the original execution returned (untagged).
        key: u64,
    },
    /// `MAP_REF` of `key` into `pid`; the VA tree returned `va`.
    MapRef {
        /// Owning shard.
        shard: u16,
        /// Mapping process.
        pid: u32,
        /// Mapped ref key (untagged).
        key: u64,
        /// VA the original execution returned (untagged).
        va: u64,
    },
    /// `RELEASE_REF` of `key` (advances the invalidation epoch on replay).
    ReleaseRef {
        /// Owning shard.
        shard: u16,
        /// Released ref key (untagged).
        key: u64,
    },
    /// `PUT_REF` of `data` owned by `pid`; the key space returned `key`.
    PutRef {
        /// Owning shard.
        shard: u16,
        /// Owning process.
        pid: u32,
        /// Key the original execution returned (untagged).
        key: u64,
        /// The published bytes.
        data: Vec<u8>,
    },
    /// Lease expiry reclaimed every pin of `pid` (advances the epoch on
    /// replay, exactly like the live sweep does).
    ReleaseProcess {
        /// Reclaimed process.
        pid: u32,
    },
    /// Compaction checkpoint: a canonical snapshot of the full server
    /// state; replay restores it and continues with subsequent records.
    Checkpoint {
        /// Canonical snapshot bytes (see `DmServer::snapshot_bytes`).
        snapshot: Vec<u8>,
    },
    /// Sharded plane (DESIGN.md §13): global key `gkey` bound to the
    /// tagged local ref `key` (a `PUT_REF_AT` or `MIGRATE_IN`; the paired
    /// `PutRef` record replays the underlying allocation).
    GBind {
        /// Client-minted global key (bit 63 set).
        gkey: u64,
        /// Tagged local ref key the gkey resolves to.
        key: u64,
    },
    /// Global key `gkey` released (`RELEASE_REF` naming a gkey; the
    /// paired `ReleaseRef` record replays the underlying release).
    GUnbind {
        /// The released global key.
        gkey: u64,
    },
    /// Global key `gkey` migrated away to `node:port`; replay reinstalls
    /// the redirect tombstone (the paired `ReleaseRef` record replays the
    /// local release).
    GMoved {
        /// The migrated global key.
        gkey: u64,
        /// Destination fabric node.
        node: u32,
        /// Destination port.
        port: u16,
    },
    /// Coherence plane (DESIGN.md §15): `gkey` arrived by MIGRATE_IN
    /// carrying per-ref version `ver` (versions travel with ownership;
    /// only non-creation versions are logged — creation is the implicit
    /// version 1).
    GVer {
        /// The migrated-in global key.
        gkey: u64,
        /// Its transferred version (always ≥ 2).
        ver: u64,
    },
}

mod kind {
    pub const REGISTER: u8 = 1;
    pub const ALLOC: u8 = 2;
    pub const FREE: u8 = 3;
    pub const WRITE: u8 = 4;
    pub const CREATE_REF: u8 = 5;
    pub const MAP_REF: u8 = 6;
    pub const RELEASE_REF: u8 = 7;
    pub const PUT_REF: u8 = 8;
    pub const RELEASE_PROCESS: u8 = 9;
    pub const CHECKPOINT: u8 = 10;
    pub const GBIND: u8 = 11;
    pub const GUNBIND: u8 = 12;
    pub const GMOVED: u8 = 13;
    pub const GVER: u8 = 14;
}

impl Record {
    /// Encode the record payload (no frame) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Record::Register { node, port } => {
                out.push(kind::REGISTER);
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
            }
            Record::Alloc {
                shard,
                pid,
                len,
                va,
            } => {
                out.push(kind::ALLOC);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&va.to_le_bytes());
            }
            Record::Free { shard, pid, va } => {
                out.push(kind::FREE);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&va.to_le_bytes());
            }
            Record::Write {
                shard,
                pid,
                va,
                data,
            } => {
                out.push(kind::WRITE);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&va.to_le_bytes());
                out.extend_from_slice(data);
            }
            Record::CreateRef {
                shard,
                pid,
                va,
                len,
                key,
            } => {
                out.push(kind::CREATE_REF);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&va.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Record::MapRef {
                shard,
                pid,
                key,
                va,
            } => {
                out.push(kind::MAP_REF);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&va.to_le_bytes());
            }
            Record::ReleaseRef { shard, key } => {
                out.push(kind::RELEASE_REF);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Record::PutRef {
                shard,
                pid,
                key,
                data,
            } => {
                out.push(kind::PUT_REF);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(data);
            }
            Record::ReleaseProcess { pid } => {
                out.push(kind::RELEASE_PROCESS);
                out.extend_from_slice(&pid.to_le_bytes());
            }
            Record::Checkpoint { snapshot } => {
                out.push(kind::CHECKPOINT);
                out.extend_from_slice(snapshot);
            }
            Record::GBind { gkey, key } => {
                out.push(kind::GBIND);
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Record::GUnbind { gkey } => {
                out.push(kind::GUNBIND);
                out.extend_from_slice(&gkey.to_le_bytes());
            }
            Record::GMoved { gkey, node, port } => {
                out.push(kind::GMOVED);
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
            }
            Record::GVer { gkey, ver } => {
                out.push(kind::GVER);
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&ver.to_le_bytes());
            }
        }
    }

    /// Decode one record payload. `None` on any malformed input.
    pub fn decode(payload: &[u8]) -> Option<Record> {
        let (&k, rest) = payload.split_first()?;
        let mut c = Cursor { buf: rest, pos: 0 };
        let rec = match k {
            kind::REGISTER => Record::Register {
                node: c.u32()?,
                port: c.u16()?,
            },
            kind::ALLOC => Record::Alloc {
                shard: c.u16()?,
                pid: c.u32()?,
                len: c.u64()?,
                va: c.u64()?,
            },
            kind::FREE => Record::Free {
                shard: c.u16()?,
                pid: c.u32()?,
                va: c.u64()?,
            },
            kind::WRITE => Record::Write {
                shard: c.u16()?,
                pid: c.u32()?,
                va: c.u64()?,
                data: c.rest().to_vec(),
            },
            kind::CREATE_REF => Record::CreateRef {
                shard: c.u16()?,
                pid: c.u32()?,
                va: c.u64()?,
                len: c.u64()?,
                key: c.u64()?,
            },
            kind::MAP_REF => Record::MapRef {
                shard: c.u16()?,
                pid: c.u32()?,
                key: c.u64()?,
                va: c.u64()?,
            },
            kind::RELEASE_REF => Record::ReleaseRef {
                shard: c.u16()?,
                key: c.u64()?,
            },
            kind::PUT_REF => Record::PutRef {
                shard: c.u16()?,
                pid: c.u32()?,
                key: c.u64()?,
                data: c.rest().to_vec(),
            },
            kind::RELEASE_PROCESS => Record::ReleaseProcess { pid: c.u32()? },
            kind::CHECKPOINT => Record::Checkpoint {
                snapshot: c.rest().to_vec(),
            },
            kind::GBIND => Record::GBind {
                gkey: c.u64()?,
                key: c.u64()?,
            },
            kind::GUNBIND => Record::GUnbind { gkey: c.u64()? },
            kind::GMOVED => Record::GMoved {
                gkey: c.u64()?,
                node: c.u32()?,
                port: c.u16()?,
            },
            kind::GVER => Record::GVer {
                gkey: c.u64()?,
                ver: c.u64()?,
            },
            _ => return None,
        };
        // Fixed-size records must consume their payload exactly.
        match &rec {
            Record::Write { .. } | Record::PutRef { .. } | Record::Checkpoint { .. } => {}
            _ => {
                if !c.at_end() {
                    return None;
                }
            }
        }
        Some(rec)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Durability backend configuration (a field of
/// [`crate::DmServerConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WalConfig {
    /// Timing model of the log device.
    pub media: DurableMediaParams,
    /// Compact (checkpoint + truncate) once the live log exceeds this many
    /// bytes. 0 disables compaction (tests pin log contents with it).
    pub compact_threshold_bytes: u64,
}

impl WalConfig {
    /// Zero-cost durability: full WAL bookkeeping, no virtual-time charge,
    /// no schedule perturbation. This is what `DM_DURABLE=1` selects.
    pub fn zero_cost() -> WalConfig {
        WalConfig {
            media: DurableMediaParams::zero_cost(),
            compact_threshold_bytes: 4 << 20,
        }
    }

    /// NVMe-class timed durability (~5 µs/sync, 2 GB/s streaming).
    pub fn nvme() -> WalConfig {
        WalConfig {
            media: DurableMediaParams::nvme(),
            compact_threshold_bytes: 4 << 20,
        }
    }

    /// The `DM_DURABLE=1` env hook: every server built with
    /// `DmServerConfig::default()` gets a zero-cost durable tier, proving
    /// (via the `results-deterministic` CI job) that durability
    /// bookkeeping is schedule-neutral.
    pub fn from_env() -> Option<WalConfig> {
        match std::env::var("DM_DURABLE") {
            Ok(v) if v == "1" => Some(WalConfig::zero_cost()),
            _ => None,
        }
    }
}

/// What a recovery scan found.
#[derive(Debug)]
pub struct ScanReport {
    /// Records of the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix.
    pub valid_bytes: usize,
    /// Sequence number the next append should use (last valid + 1), or
    /// `None` when no record validated.
    pub next_seq: Option<u64>,
    /// Whether a torn/corrupt tail was cut off.
    pub torn: bool,
}

/// The write-ahead log of one DM server: the framed record stream (the
/// simulated durable-media *contents*) plus the media timing model.
///
/// Appends are split in two so the record becomes durable atomically with
/// the in-memory mutation it describes (the simulator is single-threaded,
/// so code between awaits is atomic): [`Wal::push`] installs the framed
/// record synchronously, then the caller awaits the media charge before
/// sending the response. A crash between mutation and response therefore
/// never loses an acknowledged op — the modeled torn-tail failure only
/// drops records whose responses were never sent.
pub struct Wal {
    buf: RefCell<Vec<u8>>,
    next_seq: Cell<u64>,
    records: Cell<u64>,
    compactions: Cell<u64>,
    media: DurableMedia,
    config: WalConfig,
}

impl Wal {
    /// Create an empty log on a fresh media device.
    pub fn new(name: impl Into<String>, config: WalConfig) -> Wal {
        Wal {
            buf: RefCell::new(Vec::new()),
            next_seq: Cell::new(0),
            records: Cell::new(0),
            compactions: Cell::new(0),
            media: DurableMedia::new(name, config.media),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> WalConfig {
        self.config
    }

    /// The media timing model (callers charge append/scan time on it).
    pub fn media(&self) -> &DurableMedia {
        &self.media
    }

    /// Frame and append `rec` synchronously; returns the framed size in
    /// bytes (the caller's media charge).
    pub fn push(&self, rec: &Record) -> u64 {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        let mut payload = Vec::new();
        rec.encode_into(&mut payload);
        let mut check = Vec::with_capacity(8 + payload.len());
        check.extend_from_slice(&seq.to_le_bytes());
        check.extend_from_slice(&payload);
        let crc = crc32(&check);
        let mut buf = self.buf.borrow_mut();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        self.records.set(self.records.get() + 1);
        (16 + payload.len()) as u64
    }

    /// Whether the live log has outgrown the compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.config.compact_threshold_bytes > 0
            && self.buf.borrow().len() as u64 > self.config.compact_threshold_bytes
    }

    /// Replace the whole log with one checkpoint record (atomic install —
    /// the write-new-then-rename idiom). Sequence numbers continue, so a
    /// stale pre-compaction suffix can never splice onto the new log.
    /// Returns the framed checkpoint size for the caller's media charge.
    pub fn compact(&self, snapshot: Vec<u8>) -> u64 {
        self.buf.borrow_mut().clear();
        self.records.set(0);
        self.compactions.set(self.compactions.get() + 1);
        self.push(&Record::Checkpoint { snapshot })
    }

    /// Bytes in the live log.
    pub fn log_bytes(&self) -> u64 {
        self.buf.borrow().len() as u64
    }

    /// Records in the live log (post-compaction count).
    pub fn records(&self) -> u64 {
        self.records.get()
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions.get()
    }

    /// Parse the log, validating framing, checksums and sequence
    /// continuity; stops at the first invalid byte. Read-only — pair with
    /// [`Wal::repair`] to actually cut a torn tail.
    pub fn scan(&self) -> ScanReport {
        let buf = self.buf.borrow();
        let mut pos = 0usize;
        let mut records = Vec::new();
        let mut expect_seq: Option<u64> = None;
        let mut torn = false;
        while pos < buf.len() {
            if pos + 16 > buf.len() {
                torn = true;
                break;
            }
            let len =
                u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("len checked")) as usize;
            let seq = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("len checked"));
            let crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().expect("len checked"));
            if pos + 16 + len > buf.len() {
                torn = true;
                break;
            }
            let payload = &buf[pos + 16..pos + 16 + len];
            let mut check = Vec::with_capacity(8 + len);
            check.extend_from_slice(&seq.to_le_bytes());
            check.extend_from_slice(payload);
            if crc32(&check) != crc {
                torn = true;
                break;
            }
            if let Some(e) = expect_seq {
                if seq != e {
                    torn = true;
                    break;
                }
            }
            let Some(rec) = Record::decode(payload) else {
                torn = true;
                break;
            };
            expect_seq = Some(seq + 1);
            records.push(rec);
            pos += 16 + len;
        }
        ScanReport {
            records,
            valid_bytes: pos,
            next_seq: expect_seq,
            torn,
        }
    }

    /// Cut the torn tail a [`Wal::scan`] found: truncate the log to the
    /// valid prefix and realign the sequence/record counters.
    pub fn repair(&self, report: &ScanReport) {
        self.buf.borrow_mut().truncate(report.valid_bytes);
        if let Some(next) = report.next_seq {
            self.next_seq.set(next);
        }
        self.records.set(report.records.len() as u64);
    }

    /// Raw log bytes (corruption-injection tests).
    pub fn raw(&self) -> Vec<u8> {
        self.buf.borrow().clone()
    }

    /// Replace the raw log bytes (corruption-injection tests). Counters
    /// are left stale on purpose — a following [`Wal::scan`] +
    /// [`Wal::repair`] (as `restart_from_log` performs) realigns them.
    pub fn set_raw(&self, bytes: Vec<u8>) {
        *self.buf.borrow_mut() = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Register {
                node: 3,
                port: 7000,
            },
            Record::Alloc {
                shard: 1,
                pid: 7,
                len: 8192,
                va: 0x1000,
            },
            Record::Write {
                shard: 1,
                pid: 7,
                va: 0x1000,
                data: vec![0xAB; 5],
            },
            Record::CreateRef {
                shard: 1,
                pid: 7,
                va: 0x1000,
                len: 8192,
                key: 1,
            },
            Record::MapRef {
                shard: 1,
                pid: 8,
                key: 1,
                va: 0x3000,
            },
            Record::ReleaseRef { shard: 1, key: 1 },
            Record::PutRef {
                shard: 0,
                pid: 7,
                key: 2,
                data: vec![1, 2, 3],
            },
            Record::Free {
                shard: 1,
                pid: 7,
                va: 0x1000,
            },
            Record::ReleaseProcess { pid: 7 },
            Record::Checkpoint {
                snapshot: vec![9, 9, 9],
            },
            Record::GBind {
                gkey: (1 << 63) | 77,
                key: (2 << 48) | 5,
            },
            Record::GUnbind {
                gkey: (1 << 63) | 77,
            },
            Record::GMoved {
                gkey: (1 << 63) | 78,
                node: 4,
                port: 7000,
            },
            Record::GVer {
                gkey: (1 << 63) | 78,
                ver: 3,
            },
        ]
    }

    #[test]
    fn record_roundtrip_every_kind() {
        for rec in sample_records() {
            let mut p = Vec::new();
            rec.encode_into(&mut p);
            assert_eq!(Record::decode(&p).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99]), None, "unknown kind");
        assert_eq!(Record::decode(&[kind::ALLOC, 1]), None, "truncated");
        // Trailing garbage on a fixed-size record.
        let mut p = Vec::new();
        Record::ReleaseProcess { pid: 1 }.encode_into(&mut p);
        p.push(0);
        assert_eq!(Record::decode(&p), None);
    }

    #[test]
    fn golden_wire_format() {
        // Pins the on-media wire format: frame header layout, field order,
        // little-endian encoding, CRC-32/IEEE over seq||payload. If this
        // test breaks, recovery of logs written by older builds breaks.
        let w = Wal::new("golden", WalConfig::zero_cost());
        w.push(&Record::Alloc {
            shard: 2,
            pid: 5,
            len: 4096,
            va: 0x1000,
        });
        let raw = w.raw();
        let expect: Vec<u8> = [
            &23u32.to_le_bytes()[..],          // payload length
            &0u64.to_le_bytes()[..],           // seq 0
            &0xA2F9_6547u32.to_le_bytes()[..], // crc32(seq || payload)
            &[super::kind::ALLOC][..],         // kind
            &2u16.to_le_bytes()[..],           // shard
            &5u32.to_le_bytes()[..],           // pid
            &4096u64.to_le_bytes()[..],        // len
            &0x1000u64.to_le_bytes()[..],      // va
        ]
        .concat();
        assert_eq!(raw, expect, "wire format drifted");
    }

    #[test]
    fn scan_roundtrips_clean_log() {
        let w = Wal::new("t", WalConfig::zero_cost());
        let recs = sample_records();
        for r in &recs {
            w.push(r);
        }
        let report = w.scan();
        assert!(!report.torn);
        assert_eq!(report.records, recs);
        assert_eq!(report.valid_bytes as u64, w.log_bytes());
        assert_eq!(report.next_seq, Some(recs.len() as u64));
    }

    #[test]
    fn scan_stops_at_truncated_tail() {
        let w = Wal::new("t", WalConfig::zero_cost());
        for r in sample_records() {
            w.push(r.as_ref());
        }
        let clean = w.scan();
        let mut raw = w.raw();
        raw.truncate(raw.len() - 3); // tear the final record
        w.set_raw(raw);
        let report = w.scan();
        assert!(report.torn);
        assert_eq!(report.records.len(), clean.records.len() - 1);
        w.repair(&report);
        assert!(!w.scan().torn, "repair cut the torn tail");
        assert_eq!(w.records(), report.records.len() as u64);
    }

    #[test]
    fn scan_stops_at_bit_flip() {
        let w = Wal::new("t", WalConfig::zero_cost());
        for r in sample_records() {
            w.push(r.as_ref());
        }
        let mut raw = w.raw();
        let n = raw.len();
        raw[n - 1] ^= 0x10; // flip one bit in the last record's payload
        w.set_raw(raw);
        let report = w.scan();
        assert!(report.torn);
        assert_eq!(report.records.len(), sample_records().len() - 1);
        // A flip in the *middle* cuts everything after it too.
        let w2 = Wal::new("t2", WalConfig::zero_cost());
        for r in sample_records() {
            w2.push(r.as_ref());
        }
        let mut raw = w2.raw();
        raw[20] ^= 0x01; // inside record 0's frame
        w2.set_raw(raw);
        let report = w2.scan();
        assert!(report.torn);
        assert!(report.records.is_empty());
        assert_eq!(report.next_seq, None);
    }

    #[test]
    fn sequence_discontinuity_is_torn() {
        // Splicing a stale record after a newer one fails the seq check
        // even though its checksum is fine.
        let a = Wal::new("a", WalConfig::zero_cost());
        a.push(&Record::ReleaseProcess { pid: 1 });
        let stale = a.raw();
        let b = Wal::new("b", WalConfig::zero_cost());
        b.push(&Record::ReleaseProcess { pid: 2 });
        b.push(&Record::ReleaseProcess { pid: 3 });
        let mut spliced = b.raw();
        spliced.extend_from_slice(&stale); // seq 0 after seq 1
        b.set_raw(spliced);
        let report = b.scan();
        assert!(report.torn);
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn compaction_replaces_log_and_continues_seq() {
        let w = Wal::new(
            "t",
            WalConfig {
                compact_threshold_bytes: 64,
                ..WalConfig::zero_cost()
            },
        );
        for _ in 0..10 {
            w.push(&Record::ReleaseProcess { pid: 9 });
        }
        assert!(w.should_compact());
        let before = w.log_bytes();
        w.compact(vec![1, 2, 3, 4]);
        assert!(w.log_bytes() < before, "compaction must shrink the log");
        assert_eq!(w.compactions(), 1);
        assert_eq!(w.records(), 1);
        let report = w.scan();
        assert!(!report.torn);
        assert_eq!(report.records.len(), 1);
        assert!(matches!(report.records[0], Record::Checkpoint { .. }));
        // Seq continued across compaction: next push is seq 11.
        assert_eq!(report.next_seq, Some(11));
    }

    impl AsRef<Record> for Record {
        fn as_ref(&self) -> &Record {
            self
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE check value: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
