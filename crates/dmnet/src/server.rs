//! The DM server process (paper Fig. 3, right side).
//!
//! One `DmServer` runs on a memory node and serves the DM protocol over an
//! [`rpclib::Rpc`] endpoint. Every operation charges the server's CPU
//! ([`simcore::CpuPool`]) and memory system ([`memsim::NodeMemory`]):
//!
//! * per-operation dispatch CPU plus per-page refcount-update CPU;
//! * software address translation CPU (tracked separately so the paper's
//!   "translation is 0.17% of access time" observation can be reproduced);
//! * DRAM bandwidth and traffic for data reads/writes and for every page
//!   copied by COW or by the eager `-copy` ablation.
//!
//! **Sharding** (paper §VI-C): "Concurrent requests received in a single
//! memory server will be dispatched to its different CPU cores, each
//! responsible for managing a portion of the memory." With
//! [`DmServerConfig::shards`] > 1 the server runs that many independent
//! [`PageManager`] shards, each pinned to one core; allocations are spread
//! round-robin and the owning shard is encoded in the top bits of every DM
//! virtual address and ref key, so later operations route without any
//! shared state between cores.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{CopyMode, DmError, DmResult, GlobalPid, PAGE_SIZE};
use memsim::NodeMemory;
use rpclib::{Rpc, RpcBuilder, RpcConfig};
use simcore::{CpuPool, SimRng};
use simnet::{Network, NodeId};
use telemetry::SpanKind;

use crate::admission::{Admission, AdmissionConfig};
use crate::page_manager::{OpCost, PageManager};
use crate::proto::{self, err_response, moved_response, ok_response, req, Reader, Writer};
use crate::shard::GKEY_BIT;
use crate::wal::{Record, Wal, WalConfig};

/// Top bits of DM virtual addresses / ref keys carry the owning shard.
const SHARD_SHIFT: u32 = 48;
const LOW_MASK: u64 = (1u64 << SHARD_SHIFT) - 1;

/// Version byte of the whole-server checkpoint snapshot (DESIGN.md §12).
/// Version 2 appends the sharded plane's gkey-binding and tombstone
/// tables (DESIGN.md §13); version 3 additionally appends the coherence
/// plane's per-ref version table (DESIGN.md §15). A server whose tables
/// are empty still emits version 1, byte-identical to pre-sharding
/// checkpoints.
const SNAPSHOT_VERSION: u8 = 1;
const SNAPSHOT_VERSION_SHARDED: u8 = 2;
const SNAPSHOT_VERSION_COHERENT: u8 = 3;

/// Sentinel pid in a `Record::PutRef` for an unowned ref (a migrated ref
/// whose owner was not registered at the destination); replay maps it
/// back to `None`.
const NO_OWNER_PID: u32 = u32::MAX;

/// Outcome of resolving a wire ref key ([`DmServer::route_key`]): either
/// the owning `(shard, local key)`, or a ready-made redirect response for
/// a gkey that migrated away.
enum KeyRoute {
    Local(usize, u64),
    Redirect(Bytes),
}

/// What [`DmServer::restart_from_log`] did.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Records replayed from the valid log prefix.
    pub records_replayed: usize,
    /// Whether a torn/corrupt tail was truncated.
    pub torn_tail: bool,
    /// Log size after repair.
    pub log_bytes: u64,
}

/// Fine-grained cache-coherence tuning (DESIGN.md §15).
#[derive(Clone, Copy, Debug)]
pub struct CoherenceConfig {
    /// Total read grants the holder directory may track across all keys.
    /// On overflow the server falls back to one epoch broadcast and a
    /// cleared directory rather than growing without bound.
    pub dir_max: usize,
    /// How long a directory grant is considered live — must match the
    /// client cache's `read_lease` (an expired grant is skipped at push
    /// time because the holder already stopped serving the entry).
    pub read_lease: Duration,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            dir_max: 1024,
            read_lease: Duration::from_micros(50),
        }
    }
}

/// The holder directory's storage: wire key → (client node, port) →
/// grant expiry.
type HolderDir =
    std::collections::HashMap<u64, std::collections::BTreeMap<(u32, u16), simcore::SimTime>>;

/// DM server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DmServerConfig {
    /// Pinned pool size in pages (default 64 Ki pages = 256 MiB), split
    /// evenly across shards.
    pub capacity_pages: usize,
    /// COW (DmRPC) or eager copy (the `-copy` ablation).
    pub copy_mode: CopyMode,
    /// Worker cores serving DM requests when `shards == 1` (Fig. 7 uses 1).
    pub cores: u64,
    /// Memory-partitioned shards, one core each (paper §VI-C). 1 = a single
    /// page manager served by `cores` cores.
    pub shards: usize,
    /// Fixed CPU cost per DM operation.
    pub per_op_cpu: Duration,
    /// CPU cost per page whose refcount / translation entry is updated.
    pub per_page_cpu: Duration,
    /// CPU cost of one software translation lookup.
    pub translation_cpu: Duration,
    /// Request-dispatch CPU charged on the owning shard when sharded (the
    /// unsharded path charges it in the RPC layer instead).
    pub dispatch_cpu: Duration,
    /// Paper §V-A2 future work, implemented here as an option: "skip the
    /// software-based translation by modifying OS and letting MMU translate
    /// the DM virtual address directly to the physical address". When true,
    /// translation lookups cost no CPU.
    pub hw_translation: bool,
    /// Lease-based reclamation (DESIGN.md §8): when set, `REGISTER` grants
    /// each process a lease of this TTL (returned in the response) and a
    /// background sweeper reclaims every pin of processes whose lease
    /// expires without renewal. `None` (default) disables leases entirely —
    /// the wire format and event schedule are then identical to a server
    /// built before leases existed.
    pub lease_ttl: Option<Duration>,
    /// Durable tier (DESIGN.md §12): when set, every acknowledged mutating
    /// op appends a checksummed record to a write-ahead log *before* its
    /// response is sent, and [`DmServer::restart_from_log`] rebuilds the
    /// exact acknowledged state after a crash. The default comes from
    /// [`WalConfig::from_env`]: `None` unless `DM_DURABLE=1`, which
    /// selects the zero-cost media model (full bookkeeping, unchanged
    /// schedule — committed CSVs stay byte-identical).
    pub durability: Option<WalConfig>,
    /// Overload control (DESIGN.md §14): when set, requests pass a
    /// bounded admission queue with CoDel-style queue-delay shedding and
    /// are refused with the typed `Busy` wire code when the server is
    /// saturated. `None` (default) admits everything — the schedule and
    /// wire bytes are then identical to a server built before admission
    /// control existed.
    pub admission: Option<AdmissionConfig>,
    /// Fine-grained cache coherence (DESIGN.md §15): when set, successful
    /// responses append a `(key, version)` trailer for the refs they
    /// touched, mutating ops bump only the touched ref's version, and a
    /// bounded holder directory pushes targeted [`req::INVALIDATE`]
    /// messages instead of advancing the global epoch. Every client of a
    /// coherent server must run with `CacheConfig::fine_grained` (the
    /// trailer changes the ok-response wire format). `None` (default)
    /// keeps the global-epoch scheme and wire bytes unchanged.
    pub coherence: Option<CoherenceConfig>,
}

impl Default for DmServerConfig {
    fn default() -> Self {
        DmServerConfig {
            capacity_pages: 65536,
            copy_mode: CopyMode::CopyOnWrite,
            cores: 4,
            shards: 1,
            per_op_cpu: Duration::from_nanos(300),
            per_page_cpu: Duration::from_nanos(10),
            translation_cpu: Duration::from_nanos(15),
            dispatch_cpu: Duration::from_nanos(400),
            hw_translation: false,
            lease_ttl: None,
            durability: WalConfig::from_env(),
            admission: None,
            coherence: None,
        }
    }
}

struct Shard {
    pm: RefCell<PageManager>,
    cpu: CpuPool,
}

/// A running DM server.
pub struct DmServer {
    shards: Vec<Shard>,
    mem: NodeMemory,
    rpc: Rc<Rpc>,
    config: DmServerConfig,
    next_alloc: Cell<usize>,
    /// PID ownership: which endpoint registered each PID. Requests naming a
    /// PID are only honored from its owner (process isolation — a buggy or
    /// malicious service cannot free another process's regions).
    owners: RefCell<std::collections::HashMap<u32, simnet::Addr>>,
    /// Lease expiry per PID (virtual time), present only when
    /// `config.lease_ttl` is set.
    leases: RefCell<std::collections::HashMap<u32, simcore::SimTime>>,
    /// PIDs reclaimed by lease expiry (observability for chaos reports).
    leases_reclaimed: Cell<u64>,
    /// Invalidation epoch, piggybacked on every response (DESIGN.md §9).
    /// Advances whenever refs may have died: an explicit `RELEASE_REF` or a
    /// lease reclamation. Client caches fill at the epoch a response
    /// reports and self-invalidate when a later response reports a newer
    /// one.
    epoch: Cell<u64>,
    /// Set by [`DmServer::shutdown`]; stops the lease sweeper.
    stopping: Cell<bool>,
    /// Whether a lease-sweeper task is currently live. Crash cancels the
    /// sweeper outright (it disarms and exits at its next tick); restart
    /// paths re-arm a fresh one, and this flag keeps re-arming idempotent.
    sweeper_armed: Cell<bool>,
    /// The durable tier's write-ahead log, present when
    /// `config.durability` is set.
    wal: Option<Wal>,
    /// Completed `restart_from_log` recoveries (observability).
    recoveries: Cell<u64>,
    /// Sharded plane (DESIGN.md §13): global key → tagged local ref key
    /// for every gkey currently homed here.
    gmap: RefCell<std::collections::HashMap<u64, u64>>,
    /// Redirect tombstones: gkeys that migrated away, with the forwarding
    /// address clients chase (one hop per tombstone).
    moved: RefCell<std::collections::HashMap<u64, simnet::Addr>>,
    /// Requests served (per-shard `dm.shard.N.ops` telemetry).
    ops_served: Cell<u64>,
    /// Migrations completed (outbound MIGRATE + inbound MIGRATE_IN).
    migrations: Cell<u64>,
    /// Redirect responses served off tombstones.
    redirects: Cell<u64>,
    translation_ns: Cell<u64>,
    op_ns: Cell<u64>,
    /// Overload controller, present when `config.admission` is set.
    admission: Option<Admission>,
    /// Coherence plane (DESIGN.md §15): per-ref versions, keyed by the
    /// wire-visible ref key (gkey or shard-tagged key). Holds only keys
    /// whose version differs from the implicit creation version 1 — in
    /// practice, migrated-in gkeys. Dead keys are removed (keys are
    /// minted once, so a dead key's version never needs to be compared
    /// again).
    versions: RefCell<std::collections::HashMap<u64, u64>>,
    /// Holder directory: wire key → client endpoints granted a read
    /// lease on it, with grant expiry (BTreeMap: push order must be
    /// deterministic). Bounded by `CoherenceConfig::dir_max` total
    /// grants; overflow clears it and falls back to an epoch broadcast.
    dir: RefCell<HolderDir>,
    /// Total grants across `dir` (the bound is on grants, not keys).
    dir_grants: Cell<usize>,
    /// Targeted INVALIDATE messages pushed (observability).
    inv_pushed: Cell<u64>,
    /// Directory-overflow broadcasts (epoch bumps) taken (observability).
    broadcasts: Cell<u64>,
}

impl DmServer {
    /// Start a DM server on `node`, listening on [`proto::DM_PORT`].
    ///
    /// Must be called inside the simulation.
    pub fn start(
        net: &Network,
        node: NodeId,
        mem: NodeMemory,
        config: DmServerConfig,
    ) -> Rc<DmServer> {
        assert!(config.shards >= 1, "at least one shard");
        let sharded = config.shards > 1;
        let shards: Vec<Shard> = if sharded {
            let per = config.capacity_pages / config.shards;
            assert!(per > 0, "capacity too small for shard count");
            (0..config.shards)
                .map(|_| Shard {
                    pm: RefCell::new(PageManager::new(per, config.copy_mode)),
                    cpu: CpuPool::new(1),
                })
                .collect()
        } else {
            vec![Shard {
                pm: RefCell::new(PageManager::new(config.capacity_pages, config.copy_mode)),
                cpu: CpuPool::new(config.cores),
            }]
        };
        let mut builder = RpcBuilder::new(net, node, proto::DM_PORT)
            .config(RpcConfig {
                // DMA lands directly in pinned pages; the data-path costs
                // are charged explicitly via the memory model instead.
                per_kb_cpu: Duration::ZERO,
                ..RpcConfig::default()
            })
            .mem(mem.clone());
        if !sharded {
            // Unsharded: request dispatch runs on the shared core pool.
            builder = builder.cpu(shards[0].cpu.clone());
        }
        let rpc = builder.build();
        let server = Rc::new(DmServer {
            shards,
            mem,
            rpc: rpc.clone(),
            config,
            next_alloc: Cell::new(0),
            owners: RefCell::new(std::collections::HashMap::new()),
            leases: RefCell::new(std::collections::HashMap::new()),
            leases_reclaimed: Cell::new(0),
            epoch: Cell::new(0),
            stopping: Cell::new(false),
            sweeper_armed: Cell::new(false),
            wal: config
                .durability
                .map(|w| Wal::new(format!("dmwal{}", node.0), w)),
            recoveries: Cell::new(0),
            gmap: RefCell::new(std::collections::HashMap::new()),
            moved: RefCell::new(std::collections::HashMap::new()),
            ops_served: Cell::new(0),
            migrations: Cell::new(0),
            redirects: Cell::new(0),
            translation_ns: Cell::new(0),
            op_ns: Cell::new(0),
            admission: config.admission.map(Admission::new),
            versions: RefCell::new(std::collections::HashMap::new()),
            dir: RefCell::new(std::collections::HashMap::new()),
            dir_grants: Cell::new(0),
            inv_pushed: Cell::new(0),
            broadcasts: Cell::new(0),
        });
        server.register_handlers();
        server.spawn_sweeper();
        server
    }

    /// Arm the lease sweeper (no-op when leases are off or one is already
    /// armed). The task holds only a Weak so dropping the server's last
    /// `Rc` also stops it; a crash cancels it outright at its next tick
    /// (it must not stay armed on a dead replica), and the restart paths
    /// call this again to re-arm.
    fn spawn_sweeper(self: &Rc<Self>) {
        let Some(ttl) = self.config.lease_ttl else {
            return;
        };
        if self.sweeper_armed.get() {
            return;
        }
        self.sweeper_armed.set(true);
        let weak = Rc::downgrade(self);
        simcore::spawn(async move {
            loop {
                simcore::sleep(ttl / 2).await;
                let Some(srv) = weak.upgrade() else { return };
                if srv.stopping.get() || srv.rpc.is_offline() {
                    srv.sweeper_armed.set(false);
                    return;
                }
                srv.sweep_expired_leases();
            }
        });
    }

    /// Reclaim every process whose lease expired (called by the sweeper;
    /// public so chaos tests can force a sweep at a known virtual time).
    pub fn sweep_expired_leases(&self) {
        let now = simcore::now();
        let expired: Vec<u32> = self
            .leases
            .borrow()
            .iter()
            .filter(|&(_, &exp)| exp <= now)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in expired {
            // Coherent mode invalidates per-key: enumerate the dying
            // pid's refs *before* they are freed, in sorted (wire-key)
            // order so push schedules are deterministic.
            let dying = if self.coherent() {
                self.wire_keys_owned_by(GlobalPid(pid))
            } else {
                Default::default()
            };
            for s in &self.shards {
                // Already-released shards (or pids never touched here) are
                // fine: reclamation must be idempotent.
                let _ = s.pm.borrow_mut().release_process(GlobalPid(pid));
            }
            self.leases.borrow_mut().remove(&pid);
            self.owners.borrow_mut().remove(&pid);
            self.leases_reclaimed.set(self.leases_reclaimed.get() + 1);
            if self.coherent() {
                for raw in dying {
                    self.bump_dead(raw, None);
                }
            } else {
                // Reclamation drops refs: caches filled before it are
                // suspect.
                self.epoch.set(self.epoch.get() + 1);
            }
            // The sweeper acts outside any request, so it cannot await the
            // media; the append is charged as free background time (the
            // reclaim is not on any acked-response path).
            self.persist_untimed(|| Record::ReleaseProcess { pid });
            // The sweeper acts on its own, not on behalf of any request,
            // so each reclamation becomes a standalone trace.
            telemetry::root_event(
                SpanKind::LeaseReclaim,
                "dm.lease_reclaim",
                self.addr().node.0,
                &[("pid", pid as u64), ("epoch", self.epoch.get())],
            );
        }
    }

    /// Current invalidation epoch (observability for tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Crash the server: it stops receiving and sending until
    /// [`DmServer::restart`]. Page state survives (fail-stop with durable
    /// pinned memory — see DESIGN.md §8).
    pub fn crash(&self) {
        self.rpc.set_offline(true);
    }

    /// Recover from [`DmServer::crash`] with in-memory state intact (the
    /// fail-stop model of DESIGN.md §8; see [`DmServer::restart_from_log`]
    /// for the durable-tier recovery that rebuilds state from the log).
    /// Every live lease is extended by a full TTL from now so clients that
    /// outlived the crash can renew before the sweeper runs again.
    pub fn restart(self: &Rc<Self>) {
        self.rpc.set_offline(false);
        if let Some(ttl) = self.config.lease_ttl {
            let grace = simcore::now() + ttl;
            for exp in self.leases.borrow_mut().values_mut() {
                *exp = (*exp).max(grace);
            }
        }
        // Pre-crash queue-delay streaks say nothing about the restarted
        // server; shedding must not survive a restart.
        if let Some(a) = &self.admission {
            a.reset_transient();
        }
        self.spawn_sweeper();
    }

    /// Whether the server is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.rpc.is_offline()
    }

    /// Processes reclaimed by lease expiry so far.
    pub fn leases_reclaimed(&self) -> u64 {
        self.leases_reclaimed.get()
    }

    /// Whether a lease-sweeper task is live (observability: a crashed
    /// replica must report `false` once its sweeper ticks — crash cancels
    /// the sweeper outright rather than leaving it armed forever).
    pub fn sweeper_armed(&self) -> bool {
        self.sweeper_armed.get()
    }

    // -- durable tier (DESIGN.md §12) ---------------------------------------

    /// The write-ahead log, when durability is on (tests and chaos use it
    /// for corruption injection and log statistics).
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Completed [`DmServer::restart_from_log`] recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.get()
    }

    // -- sharded DM plane (DESIGN.md §13) ------------------------------------

    /// Requests served (the `dm.shard.N.ops` telemetry gauge).
    pub fn ops_served(&self) -> u64 {
        self.ops_served.get()
    }

    /// Completed migrations: outbound MIGRATE plus inbound MIGRATE_IN.
    pub fn migrations(&self) -> u64 {
        self.migrations.get()
    }

    /// Redirect responses served off tombstones.
    pub fn redirects(&self) -> u64 {
        self.redirects.get()
    }

    /// Requests refused because the admission queue was full (0 when
    /// overload control is off — the `dm.shard.N.rejected` gauge).
    pub fn admission_rejected(&self) -> u64 {
        self.admission.as_ref().map_or(0, |a| a.rejected())
    }

    /// Requests refused by CoDel shedding (the `dm.shard.N.shed` gauge).
    pub fn admission_shed(&self) -> u64 {
        self.admission.as_ref().map_or(0, |a| a.shed())
    }

    /// Gkeys currently homed on this server (observability for tests).
    pub fn gkeys_bound(&self) -> usize {
        self.gmap.borrow().len()
    }

    // -- coherence observability (DESIGN.md §15) -----------------------------

    /// Targeted INVALIDATE messages pushed to holders so far.
    pub fn invalidations_pushed(&self) -> u64 {
        self.inv_pushed.get()
    }

    /// Directory-overflow broadcasts (epoch bumps) taken so far.
    pub fn coherence_broadcasts(&self) -> u64 {
        self.broadcasts.get()
    }

    /// Current version of the wire key `raw` (1 unless it migrated).
    pub fn ref_version(&self, raw: u64) -> u64 {
        self.current_version(raw)
    }

    /// Live redirect tombstones (observability for tests).
    pub fn tombstones(&self) -> usize {
        self.moved.borrow().len()
    }

    /// FNV-1a digest of every shard's canonical page-manager snapshot —
    /// the whole memory-plane state (pages, refcounts, VA trees, refs,
    /// free-list order) excluding volatile serving state (epoch, leases,
    /// owners, the round-robin allocation cursor). Recovery oracles
    /// compare this across crash/restart: log-before-ack makes the
    /// mutation and its record atomic, so the digest after
    /// `restart_from_log` equals the digest at the instant of a clean
    /// crash.
    pub fn pages_digest(&self) -> u64 {
        let mut buf = Vec::new();
        for s in &self.shards {
            s.pm.borrow().snapshot_into(&mut buf);
        }
        crate::wal::fnv1a(&buf)
    }

    /// Canonical whole-server checkpoint: version, shard count, epoch,
    /// owner table (sorted by pid), then each shard's page-manager
    /// snapshot. Leases and the allocation cursor are volatile by design —
    /// recovery re-grants full-TTL leases and restarts the cursor (failed
    /// ops advance the cursor without producing records, so it is not
    /// reconstructible from the log; it is only a placement hint).
    fn snapshot_bytes(&self) -> Vec<u8> {
        let gmap = self.gmap.borrow();
        let moved = self.moved.borrow();
        // A server that never served the sharded plane emits the version-1
        // layout, byte-for-byte — log sizes of pre-sharding workloads (and
        // the CSVs derived from them) cannot shift. Likewise a coherent
        // server with an empty version table (no live migrated refs)
        // emits the pre-coherence layout.
        let versions = self.versions.borrow();
        let sharded_plane = !gmap.is_empty() || !moved.is_empty();
        let coherent_plane = !versions.is_empty();
        let mut out = vec![if coherent_plane {
            SNAPSHOT_VERSION_COHERENT
        } else if sharded_plane {
            SNAPSHOT_VERSION_SHARDED
        } else {
            SNAPSHOT_VERSION
        }];
        out.extend_from_slice(&(self.shards.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.epoch.get().to_le_bytes());
        let mut owners: Vec<(u32, simnet::Addr)> =
            self.owners.borrow().iter().map(|(&p, &a)| (p, a)).collect();
        owners.sort_unstable_by_key(|&(p, _)| p);
        out.extend_from_slice(&(owners.len() as u32).to_le_bytes());
        for (pid, addr) in owners {
            out.extend_from_slice(&pid.to_le_bytes());
            out.extend_from_slice(&addr.node.0.to_le_bytes());
            out.extend_from_slice(&addr.port.to_le_bytes());
        }
        if sharded_plane || coherent_plane {
            let mut binds: Vec<(u64, u64)> = gmap.iter().map(|(&g, &k)| (g, k)).collect();
            binds.sort_unstable_by_key(|&(g, _)| g);
            out.extend_from_slice(&(binds.len() as u32).to_le_bytes());
            for (gkey, key) in binds {
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            let mut tombs: Vec<(u64, simnet::Addr)> = moved.iter().map(|(&g, &a)| (g, a)).collect();
            tombs.sort_unstable_by_key(|&(g, _)| g);
            out.extend_from_slice(&(tombs.len() as u32).to_le_bytes());
            for (gkey, addr) in tombs {
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&addr.node.0.to_le_bytes());
                out.extend_from_slice(&addr.port.to_le_bytes());
            }
        }
        if coherent_plane {
            let mut vers: Vec<(u64, u64)> = versions.iter().map(|(&g, &v)| (g, v)).collect();
            vers.sort_unstable_by_key(|&(g, _)| g);
            out.extend_from_slice(&(vers.len() as u32).to_le_bytes());
            for (gkey, ver) in vers {
                out.extend_from_slice(&gkey.to_le_bytes());
                out.extend_from_slice(&ver.to_le_bytes());
            }
        }
        drop(gmap);
        drop(moved);
        drop(versions);
        for s in &self.shards {
            s.pm.borrow().snapshot_into(&mut out);
        }
        out
    }

    /// Inverse of [`Self::snapshot_bytes`], applied during replay of a
    /// [`Record::Checkpoint`]. Panics on malformed input: the checkpoint
    /// sits under the log's CRC, so damage here means the scan accepted a
    /// record it should not have.
    fn restore_snapshot(&self, buf: &[u8]) {
        const BAD: &str = "replay: corrupt checkpoint";
        assert!(buf.len() >= 3, "{BAD}");
        let version = buf[0];
        assert!(
            version == SNAPSHOT_VERSION
                || version == SNAPSHOT_VERSION_SHARDED
                || version == SNAPSHOT_VERSION_COHERENT,
            "{BAD}"
        );
        let shard_count = u16::from_le_bytes(buf[1..3].try_into().expect(BAD)) as usize;
        assert_eq!(shard_count, self.shards.len(), "{BAD}");
        let mut pos = 3usize;
        let take = |pos: &mut usize, n: usize| -> &[u8] {
            assert!(*pos + n <= buf.len(), "{BAD}");
            let s = &buf[*pos..*pos + n];
            *pos += n;
            s
        };
        let epoch = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
        self.epoch.set(epoch);
        let n_owners = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
        let mut owners = self.owners.borrow_mut();
        owners.clear();
        for _ in 0..n_owners {
            let pid = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
            let node = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
            let port = u16::from_le_bytes(take(&mut pos, 2).try_into().expect(BAD));
            owners.insert(
                pid,
                simnet::Addr {
                    node: NodeId(node),
                    port,
                },
            );
        }
        drop(owners);
        let mut gmap = self.gmap.borrow_mut();
        let mut moved = self.moved.borrow_mut();
        gmap.clear();
        moved.clear();
        self.versions.borrow_mut().clear();
        if version >= SNAPSHOT_VERSION_SHARDED {
            let n_binds = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
            for _ in 0..n_binds {
                let gkey = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
                let key = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
                gmap.insert(gkey, key);
            }
            let n_tombs = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
            for _ in 0..n_tombs {
                let gkey = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
                let node = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
                let port = u16::from_le_bytes(take(&mut pos, 2).try_into().expect(BAD));
                moved.insert(
                    gkey,
                    simnet::Addr {
                        node: NodeId(node),
                        port,
                    },
                );
            }
        }
        if version >= SNAPSHOT_VERSION_COHERENT {
            let n_vers = u32::from_le_bytes(take(&mut pos, 4).try_into().expect(BAD));
            let mut versions = self.versions.borrow_mut();
            for _ in 0..n_vers {
                let gkey = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
                let ver = u64::from_le_bytes(take(&mut pos, 8).try_into().expect(BAD));
                versions.insert(gkey, ver);
            }
        }
        drop(gmap);
        drop(moved);
        for s in &self.shards {
            let pm = PageManager::restore_from(buf, &mut pos).expect(BAD);
            *s.pm.borrow_mut() = pm;
        }
        assert_eq!(pos, buf.len(), "{BAD}");
    }

    /// Append `make()` to the log synchronously (atomic with the mutation
    /// the caller just applied — the simulator is single-threaded), then
    /// charge the media time. Zero-cost media returns without yielding, so
    /// the executor schedule is untouched. Compaction, when due, happens
    /// here — between records of one op it can never trigger because the
    /// multi-record path uses [`Self::persist2`].
    async fn persist(&self, make: impl FnOnce() -> Record) {
        let Some(w) = &self.wal else { return };
        let mut n = w.push(&make());
        if w.should_compact() {
            n += w.compact(self.snapshot_bytes());
        }
        w.media().append(n).await;
    }

    /// [`Self::persist`] for composite ops (WRITE_CREATE_REF): both
    /// records land before the compaction check, so a checkpoint can never
    /// split one op's records (replay would double-apply half of it).
    async fn persist2(&self, make: impl FnOnce() -> (Record, Record)) {
        let Some(w) = &self.wal else { return };
        let (a, b) = make();
        let mut n = w.push(&a) + w.push(&b);
        if w.should_compact() {
            n += w.compact(self.snapshot_bytes());
        }
        w.media().append(n).await;
    }

    /// [`Self::persist2`] for three-record ops (a coherent MIGRATE_IN:
    /// PutRef + GBind + GVer land atomically before the compaction
    /// check).
    async fn persist3(&self, make: impl FnOnce() -> (Record, Record, Record)) {
        let Some(w) = &self.wal else { return };
        let (a, b, c) = make();
        let mut n = w.push(&a) + w.push(&b) + w.push(&c);
        if w.should_compact() {
            n += w.compact(self.snapshot_bytes());
        }
        w.media().append(n).await;
    }

    /// Synchronous persist for non-request paths (the lease sweeper): the
    /// record is installed and counted but the media time is not awaited.
    fn persist_untimed(&self, make: impl FnOnce() -> Record) {
        let Some(w) = &self.wal else { return };
        let mut n = w.push(&make());
        if w.should_compact() {
            n += w.compact(self.snapshot_bytes());
        }
        w.media().append_untimed(n);
    }

    /// Apply one replayed record. Mutations `expect`: the record passed
    /// the CRC/sequence scan, so it describes an op that succeeded before
    /// the crash, and the deterministic page managers must accept it
    /// again. Recorded result values (`va`, `key`) are divergence
    /// witnesses checked under `debug_assertions`.
    fn replay(&self, rec: &Record) {
        match rec {
            Record::Register { node, port } => {
                let mut pid = None;
                for s in &self.shards {
                    let p = s.pm.borrow_mut().register_process();
                    match pid {
                        None => pid = Some(p),
                        Some(prev) => assert_eq!(prev, p, "replay: shard pid divergence"),
                    }
                }
                let pid = pid.expect("at least one shard");
                self.owners.borrow_mut().insert(
                    pid.0,
                    simnet::Addr {
                        node: NodeId(*node),
                        port: *port,
                    },
                );
            }
            Record::Alloc {
                shard,
                pid,
                len,
                va,
            } => {
                let got = self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .ralloc(GlobalPid(*pid), *len)
                    .expect("replay: ralloc");
                debug_assert_eq!(got, *va, "replay: alloc divergence");
            }
            Record::Free { shard, pid, va } => {
                self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .rfree(GlobalPid(*pid), *va)
                    .expect("replay: rfree");
            }
            Record::Write {
                shard,
                pid,
                va,
                data,
            } => {
                self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .write(GlobalPid(*pid), *va, data)
                    .expect("replay: write");
            }
            Record::CreateRef {
                shard,
                pid,
                va,
                len,
                key,
            } => {
                let (got, _) = self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .create_ref(GlobalPid(*pid), *va, *len)
                    .expect("replay: create_ref");
                debug_assert_eq!(got, *key, "replay: create_ref divergence");
            }
            Record::MapRef {
                shard,
                pid,
                key,
                va,
            } => {
                let (got, _, _) = self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .map_ref(GlobalPid(*pid), *key)
                    .expect("replay: map_ref");
                debug_assert_eq!(got, *va, "replay: map_ref divergence");
            }
            Record::ReleaseRef { shard, key } => {
                self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .release_ref(*key)
                    .expect("replay: release_ref");
                // Mirror the live path: coherent servers do not move the
                // epoch on a release (the version bump replaced it).
                if !self.coherent() {
                    self.epoch.set(self.epoch.get() + 1);
                }
            }
            Record::PutRef {
                shard,
                pid,
                key,
                data,
            } => {
                // The sentinel pid marks an unowned migrated-in ref.
                let owner = (*pid != NO_OWNER_PID).then_some(GlobalPid(*pid));
                let (got, _) = self.shards[*shard as usize]
                    .pm
                    .borrow_mut()
                    .put_ref(data, owner)
                    .expect("replay: put_ref");
                debug_assert_eq!(got, *key, "replay: put_ref divergence");
            }
            Record::ReleaseProcess { pid } => {
                // Mirror the live sweep's version reclamation (no pushes
                // during replay — the directory is volatile and empty).
                let dying = if self.coherent() {
                    self.wire_keys_owned_by(GlobalPid(*pid))
                } else {
                    Default::default()
                };
                for s in &self.shards {
                    // Idempotent, exactly like the live sweep: shards that
                    // never saw the pid return an error we ignore.
                    let _ = s.pm.borrow_mut().release_process(GlobalPid(*pid));
                }
                self.owners.borrow_mut().remove(pid);
                if self.coherent() {
                    for raw in dying {
                        self.versions.borrow_mut().remove(&raw);
                    }
                } else {
                    self.epoch.set(self.epoch.get() + 1);
                }
            }
            Record::GBind { gkey, key } => {
                self.gmap.borrow_mut().insert(*gkey, *key);
                // A migrated-back gkey overwrites its stale tombstone.
                self.moved.borrow_mut().remove(gkey);
            }
            Record::GUnbind { gkey } => {
                self.gmap.borrow_mut().remove(gkey);
                self.versions.borrow_mut().remove(gkey);
            }
            Record::GMoved { gkey, node, port } => {
                self.gmap.borrow_mut().remove(gkey);
                self.versions.borrow_mut().remove(gkey);
                self.moved.borrow_mut().insert(
                    *gkey,
                    simnet::Addr {
                        node: NodeId(*node),
                        port: *port,
                    },
                );
            }
            Record::GVer { gkey, ver } => {
                self.versions.borrow_mut().insert(*gkey, *ver);
            }
            Record::Checkpoint { snapshot } => self.restore_snapshot(snapshot),
        }
    }

    /// Crash-consistent recovery: rebuild the whole server from its
    /// write-ahead log and come back online.
    ///
    /// Steps: charge one sequential media scan of the log; validate it
    /// (CRC, framing, sequence continuity) and truncate any torn tail;
    /// discard all volatile state (fresh page managers, empty owner/lease
    /// tables, epoch 0, allocation cursor 0); replay the valid prefix
    /// (a checkpoint record restores its snapshot, subsequent records
    /// re-apply on top); advance the epoch once more past the replayed
    /// value so client caches filled before the crash can never be
    /// trusted across it; re-grant every recovered owner a full-TTL lease
    /// (crashed clients stop renewing and get swept as usual); come back
    /// online and re-arm the sweeper.
    ///
    /// The recovery invariant (tested by `tests/recovery.rs` and the
    /// chaos `server-crash-recovery` class): zero lost acknowledged ops,
    /// zero resurrected frees — the rebuilt state is exactly the
    /// acknowledged pre-crash state.
    ///
    /// # Panics
    /// Panics if durability is off.
    pub async fn restart_from_log(self: &Rc<Self>) -> RecoveryReport {
        let w = self.wal.as_ref().expect("restart_from_log: durability off");
        w.media().scan(w.log_bytes()).await;
        let report = w.scan();
        w.repair(&report);
        for s in &self.shards {
            let (cap, mode) = {
                let pm = s.pm.borrow();
                (pm.capacity_pages(), pm.copy_mode())
            };
            *s.pm.borrow_mut() = PageManager::new(cap, mode);
        }
        self.owners.borrow_mut().clear();
        self.leases.borrow_mut().clear();
        self.gmap.borrow_mut().clear();
        self.moved.borrow_mut().clear();
        // The holder directory and version table are rebuilt from scratch:
        // grants are volatile (the post-recovery epoch bump broadcasts to
        // every pre-crash holder anyway), versions replay from the log.
        self.dir.borrow_mut().clear();
        self.dir_grants.set(0);
        self.versions.borrow_mut().clear();
        self.epoch.set(0);
        self.next_alloc.set(0);
        for rec in &report.records {
            self.replay(rec);
        }
        // Epoch-after-restart rule: one conservative bump past everything
        // the replay reconstructed, so any response a client sees after
        // recovery reports a strictly newer epoch than any it saw before
        // the crash, invalidating its cache.
        self.epoch.set(self.epoch.get() + 1);
        if let Some(ttl) = self.config.lease_ttl {
            let exp = simcore::now() + ttl;
            let mut leases = self.leases.borrow_mut();
            for &pid in self.owners.borrow().keys() {
                leases.insert(pid, exp);
            }
        }
        self.rpc.set_offline(false);
        self.recoveries.set(self.recoveries.get() + 1);
        self.spawn_sweeper();
        telemetry::root_event(
            SpanKind::LeaseReclaim,
            "dm.recovery",
            self.addr().node.0,
            &[
                ("records", report.records.len() as u64),
                ("torn", report.torn as u64),
                ("epoch", self.epoch.get()),
            ],
        );
        RecoveryReport {
            records_replayed: report.records.len(),
            torn_tail: report.torn,
            log_bytes: w.log_bytes(),
        }
    }

    /// Tear down: unregister handlers so the `Rc` cycle through them is
    /// broken and the server (and its page pool) can be freed.
    pub fn shutdown(&self) {
        self.stopping.set(true);
        self.rpc.shutdown();
    }

    /// The server's RPC address.
    pub fn addr(&self) -> simnet::Addr {
        self.rpc.addr()
    }

    /// The node memory model (traffic counters for Fig. 7c).
    pub fn memory(&self) -> &NodeMemory {
        &self.mem
    }

    /// Number of memory shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access the page manager (tests and invariant checks).
    ///
    /// # Panics
    /// Panics on a sharded server — use [`DmServer::check_invariants_all`],
    /// [`DmServer::free_pages_total`] or [`DmServer::capacity_pages_total`].
    pub fn with_page_manager<R>(&self, f: impl FnOnce(&mut PageManager) -> R) -> R {
        assert_eq!(
            self.shards.len(),
            1,
            "sharded server: use the *_all accessors"
        );
        f(&mut self.shards[0].pm.borrow_mut())
    }

    /// Check every shard's invariants.
    pub fn check_invariants_all(&self) {
        for s in &self.shards {
            s.pm.borrow().check_invariants();
        }
    }

    /// Free pages across all shards.
    pub fn free_pages_total(&self) -> usize {
        self.shards.iter().map(|s| s.pm.borrow().free_pages()).sum()
    }

    /// Capacity across all shards.
    pub fn capacity_pages_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pm.borrow().capacity_pages())
            .sum()
    }

    /// Fraction of DM operation time spent in software address translation
    /// (paper §V-A2 reports 0.17%).
    pub fn translation_fraction(&self) -> f64 {
        let total = self.op_ns.get();
        if total == 0 {
            return 0.0;
        }
        self.translation_ns.get() as f64 / total as f64
    }

    // -- shard routing -------------------------------------------------------

    fn tag(&self, shard: usize, v: u64) -> u64 {
        debug_assert!(v <= LOW_MASK, "value overflows shard tag space");
        ((shard as u64) << SHARD_SHIFT) | v
    }

    fn route(&self, tagged: u64) -> DmResult<(usize, u64)> {
        let shard = (tagged >> SHARD_SHIFT) as usize;
        if shard >= self.shards.len() {
            return Err(DmError::InvalidAddress);
        }
        Ok((shard, tagged & LOW_MASK))
    }

    /// Validate that `src` owns `pid`.
    fn check_owner(&self, pid: GlobalPid, src: simnet::Addr) -> DmResult<()> {
        match self.owners.borrow().get(&pid.0) {
            Some(&owner) if owner == src => Ok(()),
            _ => Err(DmError::InvalidAddress),
        }
    }

    fn pick_alloc_shard(&self) -> usize {
        let s = self.next_alloc.get();
        self.next_alloc.set((s + 1) % self.shards.len());
        s
    }

    /// Resolve a wire ref key: a plain tagged key routes to its shard
    /// directly; a gkey (bit 63) resolves through the binding table, or
    /// yields the ready-made redirect response when only a tombstone
    /// remains. An unknown gkey is an invalid ref.
    fn route_key(&self, raw: u64) -> DmResult<KeyRoute> {
        if raw & GKEY_BIT == 0 {
            let (shard, key) = self.route(raw)?;
            return Ok(KeyRoute::Local(shard, key));
        }
        if let Some(&tagged) = self.gmap.borrow().get(&raw) {
            let (shard, key) = self.route(tagged)?;
            return Ok(KeyRoute::Local(shard, key));
        }
        if let Some(&fwd) = self.moved.borrow().get(&raw) {
            self.redirects.set(self.redirects.get() + 1);
            return Ok(KeyRoute::Redirect(moved_response(
                self.epoch.get(),
                fwd.node.0,
                fwd.port,
            )));
        }
        Err(DmError::InvalidRef)
    }

    // -- coherence plane (DESIGN.md §15) -------------------------------------

    fn coherent(&self) -> bool {
        self.config.coherence.is_some()
    }

    /// Current version of the wire key `raw`. Creation is the implicit
    /// version 1, so only keys that moved (MIGRATE) occupy the table.
    fn current_version(&self, raw: u64) -> u64 {
        self.versions.borrow().get(&raw).copied().unwrap_or(1)
    }

    /// Record that `src` now holds a cached copy of `raw` (no-op unless
    /// coherent). On directory overflow every grant is dropped and the
    /// epoch advances once — the broadcast fallback — so the directory
    /// stays bounded without ever missing a holder.
    fn grant(&self, raw: u64, src: simnet::Addr) {
        let Some(c) = self.config.coherence else {
            return;
        };
        let expiry = simcore::now() + c.read_lease;
        let mut dir = self.dir.borrow_mut();
        let holders = dir.entry(raw).or_default();
        if holders.insert((src.node.0, src.port), expiry).is_some() {
            return; // refreshed an existing grant
        }
        if self.dir_grants.get() + 1 > c.dir_max {
            dir.clear();
            self.dir_grants.set(0);
            self.epoch.set(self.epoch.get() + 1);
            self.broadcasts.set(self.broadcasts.get() + 1);
            dir.entry(raw)
                .or_default()
                .insert((src.node.0, src.port), expiry);
        }
        self.dir_grants.set(self.dir_grants.get() + 1);
    }

    /// Push targeted INVALIDATE messages for `raw` at `ver` to every
    /// live holder (fire-and-forget: a lost push is safe — the holder's
    /// read lease bounds how long it can keep serving, and a stale entry
    /// can only hold the dead ref's final immutable bytes). `exclude`
    /// skips the requester, whose own response trailer already carries
    /// the new version.
    fn push_invalidations(&self, raw: u64, ver: u64, exclude: Option<simnet::Addr>) {
        if !self.coherent() {
            return;
        }
        let Some(holders) = self.dir.borrow_mut().remove(&raw) else {
            return;
        };
        self.dir_grants.set(self.dir_grants.get() - holders.len());
        let now = simcore::now();
        for ((node, port), expiry) in holders {
            let dst = simnet::Addr {
                node: NodeId(node),
                port,
            };
            if expiry <= now || Some(dst) == exclude {
                continue;
            }
            self.inv_pushed.set(self.inv_pushed.get() + 1);
            let rpc = self.rpc.clone();
            let body = Writer::new().u64(raw).u64(ver).finish();
            simcore::spawn(async move {
                let _ = rpc.call(dst, req::INVALIDATE, body).await;
            });
        }
    }

    /// Kill the wire key `raw`: drop its version entry (keys are minted
    /// once, so it will never be compared again) and push its successor
    /// version to holders so their cached copies die promptly. Returns
    /// the pushed version for the requester's response trailer.
    fn bump_dead(&self, raw: u64, exclude: Option<simnet::Addr>) -> u64 {
        let ver = self.versions.borrow_mut().remove(&raw).unwrap_or(1) + 1;
        self.push_invalidations(raw, ver, exclude);
        ver
    }

    /// Every wire-visible key of refs owned by `pid`, sorted (push order
    /// must be deterministic): the shard-tagged local keys plus any gkeys
    /// bound to them.
    fn wire_keys_owned_by(&self, pid: GlobalPid) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for (shard, s) in self.shards.iter().enumerate() {
            for key in s.pm.borrow().keys_owned_by(pid) {
                out.push(self.tag(shard, key));
            }
        }
        let tagged: std::collections::HashSet<u64> = out.iter().copied().collect();
        for (&gkey, &t) in self.gmap.borrow().iter() {
            if tagged.contains(&t) {
                out.push(gkey);
            }
        }
        out.sort_unstable();
        out
    }

    /// Record data-path time in the op-time denominator (translation stat).
    fn note_data_time(&self, bytes: u64) {
        let t = self
            .mem
            .params()
            .access_time(memsim::MemClass::Local, bytes);
        self.op_ns.set(self.op_ns.get() + t.as_nanos() as u64);
    }

    /// Charge CPU for an operation on `shard` and record the translation
    /// share. Page copies (COW / eager) occupy the serving core for the
    /// duration of the copy, on top of the DRAM traffic they generate.
    async fn charge(&self, shard: usize, cost: OpCost, translations: u64) {
        let c = &self.config;
        let translations = if c.hw_translation { 0 } else { translations };
        let copy_time = if cost.bytes_copied > 0 {
            self.mem.account(2 * cost.bytes_copied); // read + write traffic
            self.mem.params().copy_time(cost.bytes_copied)
        } else {
            Duration::ZERO
        };
        let dispatch = if self.shards.len() > 1 {
            c.dispatch_cpu
        } else {
            Duration::ZERO // charged by the RPC layer's core pool instead
        };
        let cpu_time = dispatch
            + c.per_op_cpu
            + c.per_page_cpu * (cost.refcount_updates + cost.pages_faulted) as u32
            + c.translation_cpu * translations as u32
            + copy_time;
        // The copy shares one `execute` with the op's bookkeeping CPU —
        // splitting it into a second execute could interleave with other
        // tasks and perturb schedules even with telemetry off. The COW
        // span therefore covers the whole charge; the copy dominates it,
        // and `copy_ns` records the exact share for analysis.
        let mut cow = if cost.bytes_copied > 0 {
            telemetry::leaf_span(SpanKind::Cow, "dm.cow_copy", self.addr().node.0)
        } else {
            None
        };
        if let Some(s) = cow.as_mut() {
            s.attr("bytes_copied", cost.bytes_copied);
            s.attr("copy_ns", copy_time.as_nanos() as u64);
        }
        self.shards[shard].cpu.execute(cpu_time).await;
        drop(cow);
        self.translation_ns.set(
            self.translation_ns.get() + (c.translation_cpu * translations as u32).as_nanos() as u64,
        );
        self.op_ns
            .set(self.op_ns.get() + cpu_time.as_nanos() as u64);
    }

    /// Wrap `body` in a success response carrying the current epoch.
    /// A coherent server appends a version trailer to *every* ok
    /// response (empty when the op touched no cacheable ref) so clients
    /// can strip it unambiguously.
    fn ok(&self, body: &[u8]) -> Bytes {
        self.ok_v(&[], body)
    }

    /// [`Self::ok`] with the `(key, version)` pairs this op touched.
    fn ok_v(&self, touched: &[(u64, u64)], body: &[u8]) -> Bytes {
        if self.coherent() {
            proto::ok_response_versioned(self.epoch.get(), body, touched)
        } else {
            ok_response(self.epoch.get(), body)
        }
    }

    fn register_handlers(self: &Rc<Self>) {
        let types: &[u8] = &[
            req::REGISTER,
            req::ALLOC,
            req::FREE,
            req::CREATE_REF,
            req::MAP_REF,
            req::READ,
            req::WRITE,
            req::RELEASE_REF,
            req::WRITE_CREATE_REF,
            req::READ_REF,
            req::PUT_REF,
            req::RENEW_LEASE,
            req::BATCH,
            req::PUT_REF_AT,
            req::MIGRATE,
            req::MIGRATE_IN,
        ];
        for &ty in types {
            let srv = self.clone();
            self.rpc.register(ty, move |ctx| {
                let srv = srv.clone();
                async move { srv.handle(ty, ctx.src, ctx.payload).await }
            });
        }
    }

    /// Ops that bypass admission control: registration and lease renewal
    /// are liveness traffic — shedding a renewal under overload would
    /// convert a latency problem into spurious lease reclamation — and
    /// `BATCH` carries deferred releases whose loss would leak pins.
    fn admission_exempt(ty: u8) -> bool {
        matches!(ty, req::REGISTER | req::RENEW_LEASE | req::BATCH)
    }

    async fn handle(self: Rc<Self>, ty: u8, src: simnet::Addr, body: Bytes) -> Bytes {
        self.ops_served.set(self.ops_served.get() + 1);
        // Overload control (DESIGN.md §14): refuse before any CPU is
        // charged or span opened — a rejected request must be as cheap
        // as possible. Servers without admission skip this entirely.
        let _admit = match &self.admission {
            None => None,
            Some(_) if Self::admission_exempt(ty) => None,
            Some(a) => match a.try_admit() {
                Some(guard) => Some(guard),
                None => return err_response(self.epoch.get(), DmError::Busy),
            },
        };
        // Child of the RPC layer's server-handle span when the request was
        // traced; a no-op (one flag read) otherwise.
        let mut op = telemetry::span(SpanKind::DmOp, proto::req_name(ty), self.addr().node.0);
        if let Some(s) = op.as_mut() {
            s.attr("body_bytes", body.len() as u64);
        }
        match self.dispatch(ty, src, &body).await {
            Ok(resp) => resp,
            Err(e) => {
                if let Some(s) = op.as_mut() {
                    s.attr("error", 1);
                }
                err_response(self.epoch.get(), e)
            }
        }
    }

    async fn dispatch(&self, ty: u8, src: simnet::Addr, body: &Bytes) -> DmResult<Bytes> {
        match ty {
            req::REGISTER => {
                // Register the process with every shard; page managers
                // assign pids deterministically so the ids agree.
                let pid = {
                    let mut pid = None;
                    for s in &self.shards {
                        let p = s.pm.borrow_mut().register_process();
                        match pid {
                            None => pid = Some(p),
                            Some(prev) => assert_eq!(prev, p, "shard pid divergence"),
                        }
                    }
                    pid.expect("at least one shard")
                };
                self.owners.borrow_mut().insert(pid.0, src);
                self.persist(|| Record::Register {
                    node: src.node.0,
                    port: src.port,
                })
                .await;
                self.charge(0, OpCost::default(), 0).await;
                // Only lease-granting servers append the TTL: the response
                // (and thus the packet schedule) of a lease-free server is
                // byte-identical to the pre-lease wire format.
                if let Some(ttl) = self.config.lease_ttl {
                    self.leases.borrow_mut().insert(pid.0, simcore::now() + ttl);
                    return Ok(self.ok(&Writer::new().pid(pid).u64(ttl.as_nanos() as u64).finish()));
                }
                Ok(self.ok(&Writer::new().pid(pid).finish()))
            }
            req::RENEW_LEASE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let ttl = self.config.lease_ttl.ok_or(DmError::Malformed)?;
                match self.leases.borrow_mut().get_mut(&pid.0) {
                    Some(exp) => *exp = simcore::now() + ttl,
                    // Lease already expired and reclaimed: the renewal is
                    // too late, the client must re-register.
                    None => return Err(DmError::InvalidAddress),
                }
                self.charge(0, OpCost::default(), 0).await;
                Ok(self.ok(&[]))
            }
            req::ALLOC => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let len = r.u64()?;
                let shard = self.pick_alloc_shard();
                let va = self.shards[shard].pm.borrow_mut().ralloc(pid, len)?;
                self.persist(|| Record::Alloc {
                    shard: shard as u16,
                    pid: pid.0,
                    len,
                    va,
                })
                .await;
                self.charge(shard, OpCost::default(), 0).await;
                Ok(self.ok(&Writer::new().u64(self.tag(shard, va)).finish()))
            }
            req::FREE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let cost = self.shards[shard].pm.borrow_mut().rfree(pid, va)?;
                self.persist(|| Record::Free {
                    shard: shard as u16,
                    pid: pid.0,
                    va,
                })
                .await;
                self.charge(shard, cost, cost.refcount_updates).await;
                Ok(self.ok(&[]))
            }
            req::CREATE_REF => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let len = r.u64()?;
                let (key, cost) = self.shards[shard]
                    .pm
                    .borrow_mut()
                    .create_ref(pid, va, len)?;
                self.persist(|| Record::CreateRef {
                    shard: shard as u16,
                    pid: pid.0,
                    va,
                    len,
                    key,
                })
                .await;
                let pages = len.div_ceil(PAGE_SIZE as u64);
                self.charge(shard, cost, pages).await;
                let tagged = self.tag(shard, key);
                Ok(self.ok_v(&[(tagged, 1)], &Writer::new().u64(tagged).finish()))
            }
            req::MAP_REF => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let raw = r.u64()?;
                let (shard, key) = match self.route_key(raw)? {
                    KeyRoute::Local(s, k) => (s, k),
                    KeyRoute::Redirect(resp) => return Ok(resp),
                };
                let (va, len, cost) = self.shards[shard].pm.borrow_mut().map_ref(pid, key)?;
                self.persist(|| Record::MapRef {
                    shard: shard as u16,
                    pid: pid.0,
                    key,
                    va,
                })
                .await;
                self.charge(shard, cost, cost.refcount_updates).await;
                self.grant(raw, src);
                Ok(self.ok_v(
                    &[(raw, self.current_version(raw))],
                    &Writer::new().u64(self.tag(shard, va)).u64(len).finish(),
                ))
            }
            req::READ => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let len = r.u64()?;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let data = self.shards[shard].pm.borrow_mut().read(pid, va, len)?;
                self.charge(shard, OpCost::default(), translations).await;
                // Reading pinned pages into the response path occupies DRAM.
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&data))
            }
            req::WRITE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let data = r.rest();
                let translations = (data.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
                let cost = self.shards[shard].pm.borrow_mut().write(pid, va, data)?;
                self.persist(|| Record::Write {
                    shard: shard as u16,
                    pid: pid.0,
                    va,
                    data: data.to_vec(),
                })
                .await;
                self.charge(shard, cost, translations).await;
                // Storing into pinned pages occupies DRAM.
                self.mem.touch(data.len() as u64).await;
                self.note_data_time(data.len() as u64);
                Ok(self.ok(&[]))
            }
            req::RELEASE_REF => {
                let mut r = Reader::new(body);
                let raw = r.u64()?;
                let (shard, key) = match self.route_key(raw)? {
                    KeyRoute::Local(s, k) => (s, k),
                    KeyRoute::Redirect(resp) => return Ok(resp),
                };
                let cost = self.shards[shard].pm.borrow_mut().release_ref(key)?;
                // The ref is gone: invalidate client caches. Coherent mode
                // kills just this key (version bump + targeted pushes);
                // otherwise the global epoch advances and the releaser's
                // own response carries the new epoch.
                let touched = if self.coherent() {
                    vec![(raw, self.bump_dead(raw, Some(src)))]
                } else {
                    self.epoch.set(self.epoch.get() + 1);
                    vec![]
                };
                if raw & GKEY_BIT != 0 {
                    self.gmap.borrow_mut().remove(&raw);
                    self.persist2(|| {
                        (
                            Record::ReleaseRef {
                                shard: shard as u16,
                                key,
                            },
                            Record::GUnbind { gkey: raw },
                        )
                    })
                    .await;
                } else {
                    self.persist(|| Record::ReleaseRef {
                        shard: shard as u16,
                        key,
                    })
                    .await;
                }
                self.charge(shard, cost, cost.refcount_updates).await;
                Ok(self.ok_v(&touched, &[]))
            }
            req::WRITE_CREATE_REF => {
                // Fast path: write the data and create the ref in one RTT.
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let data = r.rest();
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let (key, wcost, ccost) = {
                    let mut pm = self.shards[shard].pm.borrow_mut();
                    let wcost = pm.write(pid, va, data)?;
                    let (key, ccost) = pm.create_ref(pid, va, len)?;
                    (key, wcost, ccost)
                };
                self.persist2(|| {
                    (
                        Record::Write {
                            shard: shard as u16,
                            pid: pid.0,
                            va,
                            data: data.to_vec(),
                        },
                        Record::CreateRef {
                            shard: shard as u16,
                            pid: pid.0,
                            va,
                            len,
                            key,
                        },
                    )
                })
                .await;
                let mut cost = wcost;
                cost.add(ccost);
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                let tagged = self.tag(shard, key);
                // The writer caches the bytes it just published.
                self.grant(tagged, src);
                Ok(self.ok_v(&[(tagged, 1)], &Writer::new().u64(tagged).finish()))
            }
            req::PUT_REF => {
                let data = &body[..];
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let shard = self.pick_alloc_shard();
                // Attribute the ref to the caller's PID so lease expiry can
                // reclaim it. An unregistered caller (e.g. a process whose
                // lease already expired) is rejected — an anonymous ref
                // could never be reclaimed.
                let owner = self
                    .owners
                    .borrow()
                    .iter()
                    .find(|&(_, &a)| a == src)
                    .map(|(&pid, _)| GlobalPid(pid))
                    .ok_or(DmError::InvalidAddress)?;
                let (key, cost) = self.shards[shard]
                    .pm
                    .borrow_mut()
                    .put_ref(data, Some(owner))?;
                self.persist(|| Record::PutRef {
                    shard: shard as u16,
                    pid: owner.0,
                    key,
                    data: data.to_vec(),
                })
                .await;
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                let tagged = self.tag(shard, key);
                self.grant(tagged, src);
                Ok(self.ok_v(&[(tagged, 1)], &Writer::new().u64(tagged).finish()))
            }
            req::READ_REF => {
                let mut r = Reader::new(body);
                let raw = r.u64()?;
                let (shard, key) = match self.route_key(raw)? {
                    KeyRoute::Local(s, k) => (s, k),
                    KeyRoute::Redirect(resp) => return Ok(resp),
                };
                let off = r.u64()?;
                let len = r.u64()?;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let data = self.shards[shard].pm.borrow_mut().read_ref(key, off, len)?;
                self.charge(shard, OpCost::default(), translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                // The reader may now cache these bytes: grant it a read
                // lease and report the key's version alongside the data.
                self.grant(raw, src);
                Ok(self.ok_v(&[(raw, self.current_version(raw))], &data))
            }
            req::PUT_REF_AT => {
                // Sharded plane (DESIGN.md §13): publish under a
                // client-minted global key. Placement was the client's
                // choice (the consistent-hash ring); this server only binds.
                let mut r = Reader::new(body);
                let gkey = r.u64()?;
                if gkey & GKEY_BIT == 0 {
                    return Err(DmError::InvalidRef);
                }
                let data = r.rest();
                // Gkeys are mint-once: a rebind would orphan pages and
                // break the one-hop redirect contract.
                if self.gmap.borrow().contains_key(&gkey) || self.moved.borrow().contains_key(&gkey)
                {
                    return Err(DmError::Malformed);
                }
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let owner = self
                    .owners
                    .borrow()
                    .iter()
                    .find(|&(_, &a)| a == src)
                    .map(|(&pid, _)| GlobalPid(pid))
                    .ok_or(DmError::InvalidAddress)?;
                let shard = self.pick_alloc_shard();
                let (key, cost) = self.shards[shard]
                    .pm
                    .borrow_mut()
                    .put_ref(data, Some(owner))?;
                let tagged = self.tag(shard, key);
                self.gmap.borrow_mut().insert(gkey, tagged);
                self.persist2(|| {
                    (
                        Record::PutRef {
                            shard: shard as u16,
                            pid: owner.0,
                            key,
                            data: data.to_vec(),
                        },
                        Record::GBind { gkey, key: tagged },
                    )
                })
                .await;
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                self.grant(gkey, src);
                Ok(self.ok_v(&[(gkey, 1)], &[]))
            }
            req::MIGRATE => {
                // Ownership migration (DESIGN.md §13): transfer the gkey's
                // pages to `dst` server-to-server, release the local copy
                // and leave a redirect tombstone for in-flight clients.
                let mut r = Reader::new(body);
                let gkey = r.u64()?;
                if gkey & GKEY_BIT == 0 {
                    return Err(DmError::InvalidRef);
                }
                let dst = simnet::Addr {
                    node: NodeId(r.u32()?),
                    port: r.u32()? as u16,
                };
                if dst == self.addr() {
                    return Err(DmError::InvalidAddress);
                }
                let (shard, key) = match self.route_key(gkey)? {
                    KeyRoute::Local(s, k) => (s, k),
                    KeyRoute::Redirect(resp) => return Ok(resp),
                };
                let (len, owner) = {
                    let pm = self.shards[shard].pm.borrow();
                    (pm.ref_len(key)?, pm.ref_owner(key)?)
                };
                let data = self.shards[shard].pm.borrow_mut().read_ref(key, 0, len)?;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let owner_addr = owner.and_then(|p| self.owners.borrow().get(&p.0).copied());
                // An owned ref whose owner is no longer registered is
                // about to be lease-reclaimed; migrating it would install
                // an unowned orphan at `dst` that no sweeper ever frees.
                if owner.is_some() && owner_addr.is_none() {
                    return Err(DmError::InvalidAddress);
                }
                // Reading the pages out for the transfer occupies DRAM
                // exactly like READ_REF.
                self.mem.touch(len).await;
                self.note_data_time(len);
                let mut w = Writer::new().u64(gkey);
                w = match owner_addr {
                    Some(a) => w.u32(a.node.0).u32(a.port as u32),
                    None => w.u32(NO_OWNER_PID).u32(0),
                };
                // Versions travel with ownership: the destination installs
                // the successor version, so clients that cached the ref
                // here can never mistake a pre-migration fill for current
                // once they reach the new home.
                let next_ver = self.current_version(gkey) + 1;
                if self.coherent() {
                    w = w.u64(next_ver);
                }
                let fwd = w.bytes(&data).finish();
                // The transfer rides the simulated fabric: migration pays
                // real server-to-server bandwidth and latency. A transport
                // or destination failure leaves the local copy untouched —
                // the gkey stays served here, and any duplicate the
                // destination may have installed is owner-attributed, so
                // lease teardown reclaims it.
                let resp = self
                    .rpc
                    .call(dst, req::MIGRATE_IN, fwd)
                    .await
                    .map_err(|_| DmError::Transport)?;
                proto::parse_response(&resp)?;
                // Destination acked: drop the local copy, leave the
                // forwarding tombstone, and invalidate caches (the ref's
                // home changed under every client that cached it).
                let cost = self.shards[shard].pm.borrow_mut().release_ref(key)?;
                self.gmap.borrow_mut().remove(&gkey);
                self.moved.borrow_mut().insert(gkey, dst);
                let touched = if self.coherent() {
                    // Targeted: holders re-read and chase the redirect to
                    // the new home; no epoch movement.
                    self.versions.borrow_mut().remove(&gkey);
                    self.push_invalidations(gkey, next_ver, None);
                    vec![(gkey, next_ver)]
                } else {
                    self.epoch.set(self.epoch.get() + 1);
                    vec![]
                };
                self.persist2(|| {
                    (
                        Record::ReleaseRef {
                            shard: shard as u16,
                            key,
                        },
                        Record::GMoved {
                            gkey,
                            node: dst.node.0,
                            port: dst.port,
                        },
                    )
                })
                .await;
                self.migrations.set(self.migrations.get() + 1);
                self.charge(shard, cost, translations).await;
                Ok(self.ok_v(&touched, &[]))
            }
            req::MIGRATE_IN => {
                // Destination half of MIGRATE: bind the gkey to a fresh
                // local ref holding the transferred bytes. Ownership is
                // re-attributed to this server's pid for the owning
                // endpoint when it is registered here; otherwise the ref
                // arrives unowned (reclaimed only by explicit release).
                let mut r = Reader::new(body);
                let gkey = r.u64()?;
                if gkey & GKEY_BIT == 0 {
                    return Err(DmError::InvalidRef);
                }
                let owner_node = r.u32()?;
                let owner_port = r.u32()?;
                // A coherent source framed the transferred version between
                // the owner fields and the data (sources and destinations
                // always agree on the coherence setting — it is one
                // cluster-wide knob).
                let ver = if self.coherent() { r.u64()? } else { 1 };
                let data = r.rest();
                if self.gmap.borrow().contains_key(&gkey) {
                    return Err(DmError::Malformed);
                }
                let owner = if owner_node == NO_OWNER_PID {
                    None
                } else {
                    let oaddr = simnet::Addr {
                        node: NodeId(owner_node),
                        port: owner_port as u16,
                    };
                    // The owner must be attributable here, or the transfer
                    // is refused and the source keeps the ref: accepting it
                    // unowned would leave pages no lease sweeper can ever
                    // reclaim. (The owner can be unknown here when its
                    // lease expired on this server — e.g. renewals lost to
                    // a partition — while the source still holds one.)
                    Some(
                        self.owners
                            .borrow()
                            .iter()
                            .find(|&(_, &a)| a == oaddr)
                            .map(|(&pid, _)| GlobalPid(pid))
                            .ok_or(DmError::InvalidAddress)?,
                    )
                };
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let shard = self.pick_alloc_shard();
                let (key, cost) = self.shards[shard].pm.borrow_mut().put_ref(data, owner)?;
                let tagged = self.tag(shard, key);
                self.gmap.borrow_mut().insert(gkey, tagged);
                // A ref migrating back home clears its own stale tombstone.
                self.moved.borrow_mut().remove(&gkey);
                if ver != 1 {
                    // Only non-creation versions occupy the table (and the
                    // log): a once-migrated gkey keeps its history.
                    self.versions.borrow_mut().insert(gkey, ver);
                    self.persist3(|| {
                        (
                            Record::PutRef {
                                shard: shard as u16,
                                pid: owner.map_or(NO_OWNER_PID, |p| p.0),
                                key,
                                data: data.to_vec(),
                            },
                            Record::GBind { gkey, key: tagged },
                            Record::GVer { gkey, ver },
                        )
                    })
                    .await;
                } else {
                    self.persist2(|| {
                        (
                            Record::PutRef {
                                shard: shard as u16,
                                pid: owner.map_or(NO_OWNER_PID, |p| p.0),
                                key,
                                data: data.to_vec(),
                            },
                            Record::GBind { gkey, key: tagged },
                        )
                    })
                    .await;
                }
                self.migrations.set(self.migrations.get() + 1);
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&[]))
            }
            req::BATCH => {
                // Coalesced control ops (DESIGN.md §9): one wire message,
                // one framed response per sub-op. Each sub-op still pays
                // its own page-manager CPU; what the batch saves is the
                // per-message RPC and network overhead. A failing sub-op
                // does not abort the rest — its framed slot carries the
                // error.
                let items = proto::decode_batch(body)?;
                let mut resps = Vec::with_capacity(items.len());
                for (sub_ty, sub_body, sub_ctx) in items {
                    if sub_ty == req::BATCH {
                        return Err(DmError::Malformed); // no nesting
                    }
                    // A sub-op that rode in with its enqueuer's context is
                    // parented there, reconnecting the deferred op to the
                    // request that caused it (the flush RPC is untraced).
                    let sub_span = sub_ctx.and_then(|c| {
                        telemetry::span_with_parent(
                            SpanKind::DmOp,
                            proto::req_name(sub_ty),
                            self.addr().node.0,
                            c,
                        )
                    });
                    let resp = match Box::pin(self.dispatch(sub_ty, src, &sub_body)).await {
                        Ok(r) => r,
                        Err(e) => err_response(self.epoch.get(), e),
                    };
                    drop(sub_span);
                    resps.push(resp);
                }
                Ok(self.ok(&proto::encode_batch_responses(&resps)))
            }
            _ => Err(DmError::Malformed),
        }
    }
}

/// Start `n` DM servers on dedicated nodes; returns their addresses.
/// Convenience used by benches ("We implement the global disaggregated
/// memory pool using two servers", §VI-A).
pub fn start_pool(
    net: &Network,
    nodes: &[NodeId],
    params: &memsim::ModelParams,
    config: DmServerConfig,
) -> Vec<Rc<DmServer>> {
    let _ = SimRng::new(0); // reserved for future jitter modeling
    nodes
        .iter()
        .map(|&node| {
            let mem = NodeMemory::with_defaults(format!("dm{}", node.0), params.clone());
            DmServer::start(net, node, mem, config)
        })
        .collect()
}
