//! The DM server process (paper Fig. 3, right side).
//!
//! One `DmServer` runs on a memory node and serves the DM protocol over an
//! [`rpclib::Rpc`] endpoint. Every operation charges the server's CPU
//! ([`simcore::CpuPool`]) and memory system ([`memsim::NodeMemory`]):
//!
//! * per-operation dispatch CPU plus per-page refcount-update CPU;
//! * software address translation CPU (tracked separately so the paper's
//!   "translation is 0.17% of access time" observation can be reproduced);
//! * DRAM bandwidth and traffic for data reads/writes and for every page
//!   copied by COW or by the eager `-copy` ablation.
//!
//! **Sharding** (paper §VI-C): "Concurrent requests received in a single
//! memory server will be dispatched to its different CPU cores, each
//! responsible for managing a portion of the memory." With
//! [`DmServerConfig::shards`] > 1 the server runs that many independent
//! [`PageManager`] shards, each pinned to one core; allocations are spread
//! round-robin and the owning shard is encoded in the top bits of every DM
//! virtual address and ref key, so later operations route without any
//! shared state between cores.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{CopyMode, DmError, DmResult, GlobalPid, PAGE_SIZE};
use memsim::NodeMemory;
use rpclib::{Rpc, RpcBuilder, RpcConfig};
use simcore::{CpuPool, SimRng};
use simnet::{Network, NodeId};
use telemetry::SpanKind;

use crate::page_manager::{OpCost, PageManager};
use crate::proto::{self, err_response, ok_response, req, Reader, Writer};

/// Top bits of DM virtual addresses / ref keys carry the owning shard.
const SHARD_SHIFT: u32 = 48;
const LOW_MASK: u64 = (1u64 << SHARD_SHIFT) - 1;

/// DM server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DmServerConfig {
    /// Pinned pool size in pages (default 64 Ki pages = 256 MiB), split
    /// evenly across shards.
    pub capacity_pages: usize,
    /// COW (DmRPC) or eager copy (the `-copy` ablation).
    pub copy_mode: CopyMode,
    /// Worker cores serving DM requests when `shards == 1` (Fig. 7 uses 1).
    pub cores: u64,
    /// Memory-partitioned shards, one core each (paper §VI-C). 1 = a single
    /// page manager served by `cores` cores.
    pub shards: usize,
    /// Fixed CPU cost per DM operation.
    pub per_op_cpu: Duration,
    /// CPU cost per page whose refcount / translation entry is updated.
    pub per_page_cpu: Duration,
    /// CPU cost of one software translation lookup.
    pub translation_cpu: Duration,
    /// Request-dispatch CPU charged on the owning shard when sharded (the
    /// unsharded path charges it in the RPC layer instead).
    pub dispatch_cpu: Duration,
    /// Paper §V-A2 future work, implemented here as an option: "skip the
    /// software-based translation by modifying OS and letting MMU translate
    /// the DM virtual address directly to the physical address". When true,
    /// translation lookups cost no CPU.
    pub hw_translation: bool,
    /// Lease-based reclamation (DESIGN.md §8): when set, `REGISTER` grants
    /// each process a lease of this TTL (returned in the response) and a
    /// background sweeper reclaims every pin of processes whose lease
    /// expires without renewal. `None` (default) disables leases entirely —
    /// the wire format and event schedule are then identical to a server
    /// built before leases existed.
    pub lease_ttl: Option<Duration>,
}

impl Default for DmServerConfig {
    fn default() -> Self {
        DmServerConfig {
            capacity_pages: 65536,
            copy_mode: CopyMode::CopyOnWrite,
            cores: 4,
            shards: 1,
            per_op_cpu: Duration::from_nanos(300),
            per_page_cpu: Duration::from_nanos(10),
            translation_cpu: Duration::from_nanos(15),
            dispatch_cpu: Duration::from_nanos(400),
            hw_translation: false,
            lease_ttl: None,
        }
    }
}

struct Shard {
    pm: RefCell<PageManager>,
    cpu: CpuPool,
}

/// A running DM server.
pub struct DmServer {
    shards: Vec<Shard>,
    mem: NodeMemory,
    rpc: Rc<Rpc>,
    config: DmServerConfig,
    next_alloc: Cell<usize>,
    /// PID ownership: which endpoint registered each PID. Requests naming a
    /// PID are only honored from its owner (process isolation — a buggy or
    /// malicious service cannot free another process's regions).
    owners: RefCell<std::collections::HashMap<u32, simnet::Addr>>,
    /// Lease expiry per PID (virtual time), present only when
    /// `config.lease_ttl` is set.
    leases: RefCell<std::collections::HashMap<u32, simcore::SimTime>>,
    /// PIDs reclaimed by lease expiry (observability for chaos reports).
    leases_reclaimed: Cell<u64>,
    /// Invalidation epoch, piggybacked on every response (DESIGN.md §9).
    /// Advances whenever refs may have died: an explicit `RELEASE_REF` or a
    /// lease reclamation. Client caches fill at the epoch a response
    /// reports and self-invalidate when a later response reports a newer
    /// one.
    epoch: Cell<u64>,
    /// Set by [`DmServer::shutdown`]; stops the lease sweeper.
    stopping: Cell<bool>,
    translation_ns: Cell<u64>,
    op_ns: Cell<u64>,
}

impl DmServer {
    /// Start a DM server on `node`, listening on [`proto::DM_PORT`].
    ///
    /// Must be called inside the simulation.
    pub fn start(
        net: &Network,
        node: NodeId,
        mem: NodeMemory,
        config: DmServerConfig,
    ) -> Rc<DmServer> {
        assert!(config.shards >= 1, "at least one shard");
        let sharded = config.shards > 1;
        let shards: Vec<Shard> = if sharded {
            let per = config.capacity_pages / config.shards;
            assert!(per > 0, "capacity too small for shard count");
            (0..config.shards)
                .map(|_| Shard {
                    pm: RefCell::new(PageManager::new(per, config.copy_mode)),
                    cpu: CpuPool::new(1),
                })
                .collect()
        } else {
            vec![Shard {
                pm: RefCell::new(PageManager::new(config.capacity_pages, config.copy_mode)),
                cpu: CpuPool::new(config.cores),
            }]
        };
        let mut builder = RpcBuilder::new(net, node, proto::DM_PORT)
            .config(RpcConfig {
                // DMA lands directly in pinned pages; the data-path costs
                // are charged explicitly via the memory model instead.
                per_kb_cpu: Duration::ZERO,
                ..RpcConfig::default()
            })
            .mem(mem.clone());
        if !sharded {
            // Unsharded: request dispatch runs on the shared core pool.
            builder = builder.cpu(shards[0].cpu.clone());
        }
        let rpc = builder.build();
        let server = Rc::new(DmServer {
            shards,
            mem,
            rpc: rpc.clone(),
            config,
            next_alloc: Cell::new(0),
            owners: RefCell::new(std::collections::HashMap::new()),
            leases: RefCell::new(std::collections::HashMap::new()),
            leases_reclaimed: Cell::new(0),
            epoch: Cell::new(0),
            stopping: Cell::new(false),
            translation_ns: Cell::new(0),
            op_ns: Cell::new(0),
        });
        server.register_handlers();
        if let Some(ttl) = config.lease_ttl {
            // Lease sweeper: reclaim expired processes. Holds only a Weak
            // so dropping the server's last Rc also stops the sweeper.
            let weak = Rc::downgrade(&server);
            simcore::spawn(async move {
                loop {
                    simcore::sleep(ttl / 2).await;
                    let Some(srv) = weak.upgrade() else { return };
                    if srv.stopping.get() {
                        return;
                    }
                    if srv.rpc.is_offline() {
                        continue; // a crashed server reclaims nothing
                    }
                    srv.sweep_expired_leases();
                }
            });
        }
        server
    }

    /// Reclaim every process whose lease expired (called by the sweeper;
    /// public so chaos tests can force a sweep at a known virtual time).
    pub fn sweep_expired_leases(&self) {
        let now = simcore::now();
        let expired: Vec<u32> = self
            .leases
            .borrow()
            .iter()
            .filter(|&(_, &exp)| exp <= now)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in expired {
            for s in &self.shards {
                // Already-released shards (or pids never touched here) are
                // fine: reclamation must be idempotent.
                let _ = s.pm.borrow_mut().release_process(GlobalPid(pid));
            }
            self.leases.borrow_mut().remove(&pid);
            self.owners.borrow_mut().remove(&pid);
            self.leases_reclaimed.set(self.leases_reclaimed.get() + 1);
            // Reclamation drops refs: caches filled before it are suspect.
            self.epoch.set(self.epoch.get() + 1);
            // The sweeper acts on its own, not on behalf of any request,
            // so each reclamation becomes a standalone trace.
            telemetry::root_event(
                SpanKind::LeaseReclaim,
                "dm.lease_reclaim",
                self.addr().node.0,
                &[("pid", pid as u64), ("epoch", self.epoch.get())],
            );
        }
    }

    /// Current invalidation epoch (observability for tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Crash the server: it stops receiving and sending until
    /// [`DmServer::restart`]. Page state survives (fail-stop with durable
    /// pinned memory — see DESIGN.md §8).
    pub fn crash(&self) {
        self.rpc.set_offline(true);
    }

    /// Recover from [`DmServer::crash`]. Every live lease is extended by a
    /// full TTL from now so clients that outlived the crash can renew
    /// before the sweeper runs again.
    pub fn restart(&self) {
        self.rpc.set_offline(false);
        if let Some(ttl) = self.config.lease_ttl {
            let grace = simcore::now() + ttl;
            for exp in self.leases.borrow_mut().values_mut() {
                *exp = (*exp).max(grace);
            }
        }
    }

    /// Whether the server is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.rpc.is_offline()
    }

    /// Processes reclaimed by lease expiry so far.
    pub fn leases_reclaimed(&self) -> u64 {
        self.leases_reclaimed.get()
    }

    /// Tear down: unregister handlers so the `Rc` cycle through them is
    /// broken and the server (and its page pool) can be freed.
    pub fn shutdown(&self) {
        self.stopping.set(true);
        self.rpc.shutdown();
    }

    /// The server's RPC address.
    pub fn addr(&self) -> simnet::Addr {
        self.rpc.addr()
    }

    /// The node memory model (traffic counters for Fig. 7c).
    pub fn memory(&self) -> &NodeMemory {
        &self.mem
    }

    /// Number of memory shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access the page manager (tests and invariant checks).
    ///
    /// # Panics
    /// Panics on a sharded server — use [`DmServer::check_invariants_all`],
    /// [`DmServer::free_pages_total`] or [`DmServer::capacity_pages_total`].
    pub fn with_page_manager<R>(&self, f: impl FnOnce(&mut PageManager) -> R) -> R {
        assert_eq!(
            self.shards.len(),
            1,
            "sharded server: use the *_all accessors"
        );
        f(&mut self.shards[0].pm.borrow_mut())
    }

    /// Check every shard's invariants.
    pub fn check_invariants_all(&self) {
        for s in &self.shards {
            s.pm.borrow().check_invariants();
        }
    }

    /// Free pages across all shards.
    pub fn free_pages_total(&self) -> usize {
        self.shards.iter().map(|s| s.pm.borrow().free_pages()).sum()
    }

    /// Capacity across all shards.
    pub fn capacity_pages_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pm.borrow().capacity_pages())
            .sum()
    }

    /// Fraction of DM operation time spent in software address translation
    /// (paper §V-A2 reports 0.17%).
    pub fn translation_fraction(&self) -> f64 {
        let total = self.op_ns.get();
        if total == 0 {
            return 0.0;
        }
        self.translation_ns.get() as f64 / total as f64
    }

    // -- shard routing -------------------------------------------------------

    fn tag(&self, shard: usize, v: u64) -> u64 {
        debug_assert!(v <= LOW_MASK, "value overflows shard tag space");
        ((shard as u64) << SHARD_SHIFT) | v
    }

    fn route(&self, tagged: u64) -> DmResult<(usize, u64)> {
        let shard = (tagged >> SHARD_SHIFT) as usize;
        if shard >= self.shards.len() {
            return Err(DmError::InvalidAddress);
        }
        Ok((shard, tagged & LOW_MASK))
    }

    /// Validate that `src` owns `pid`.
    fn check_owner(&self, pid: GlobalPid, src: simnet::Addr) -> DmResult<()> {
        match self.owners.borrow().get(&pid.0) {
            Some(&owner) if owner == src => Ok(()),
            _ => Err(DmError::InvalidAddress),
        }
    }

    fn pick_alloc_shard(&self) -> usize {
        let s = self.next_alloc.get();
        self.next_alloc.set((s + 1) % self.shards.len());
        s
    }

    /// Record data-path time in the op-time denominator (translation stat).
    fn note_data_time(&self, bytes: u64) {
        let t = self
            .mem
            .params()
            .access_time(memsim::MemClass::Local, bytes);
        self.op_ns.set(self.op_ns.get() + t.as_nanos() as u64);
    }

    /// Charge CPU for an operation on `shard` and record the translation
    /// share. Page copies (COW / eager) occupy the serving core for the
    /// duration of the copy, on top of the DRAM traffic they generate.
    async fn charge(&self, shard: usize, cost: OpCost, translations: u64) {
        let c = &self.config;
        let translations = if c.hw_translation { 0 } else { translations };
        let copy_time = if cost.bytes_copied > 0 {
            self.mem.account(2 * cost.bytes_copied); // read + write traffic
            self.mem.params().copy_time(cost.bytes_copied)
        } else {
            Duration::ZERO
        };
        let dispatch = if self.shards.len() > 1 {
            c.dispatch_cpu
        } else {
            Duration::ZERO // charged by the RPC layer's core pool instead
        };
        let cpu_time = dispatch
            + c.per_op_cpu
            + c.per_page_cpu * (cost.refcount_updates + cost.pages_faulted) as u32
            + c.translation_cpu * translations as u32
            + copy_time;
        // The copy shares one `execute` with the op's bookkeeping CPU —
        // splitting it into a second execute could interleave with other
        // tasks and perturb schedules even with telemetry off. The COW
        // span therefore covers the whole charge; the copy dominates it,
        // and `copy_ns` records the exact share for analysis.
        let mut cow = if cost.bytes_copied > 0 {
            telemetry::leaf_span(SpanKind::Cow, "dm.cow_copy", self.addr().node.0)
        } else {
            None
        };
        if let Some(s) = cow.as_mut() {
            s.attr("bytes_copied", cost.bytes_copied);
            s.attr("copy_ns", copy_time.as_nanos() as u64);
        }
        self.shards[shard].cpu.execute(cpu_time).await;
        drop(cow);
        self.translation_ns.set(
            self.translation_ns.get() + (c.translation_cpu * translations as u32).as_nanos() as u64,
        );
        self.op_ns
            .set(self.op_ns.get() + cpu_time.as_nanos() as u64);
    }

    /// Wrap `body` in a success response carrying the current epoch.
    fn ok(&self, body: &[u8]) -> Bytes {
        ok_response(self.epoch.get(), body)
    }

    fn register_handlers(self: &Rc<Self>) {
        let types: &[u8] = &[
            req::REGISTER,
            req::ALLOC,
            req::FREE,
            req::CREATE_REF,
            req::MAP_REF,
            req::READ,
            req::WRITE,
            req::RELEASE_REF,
            req::WRITE_CREATE_REF,
            req::READ_REF,
            req::PUT_REF,
            req::RENEW_LEASE,
            req::BATCH,
        ];
        for &ty in types {
            let srv = self.clone();
            self.rpc.register(ty, move |ctx| {
                let srv = srv.clone();
                async move { srv.handle(ty, ctx.src, ctx.payload).await }
            });
        }
    }

    async fn handle(self: Rc<Self>, ty: u8, src: simnet::Addr, body: Bytes) -> Bytes {
        // Child of the RPC layer's server-handle span when the request was
        // traced; a no-op (one flag read) otherwise.
        let mut op = telemetry::span(SpanKind::DmOp, proto::req_name(ty), self.addr().node.0);
        if let Some(s) = op.as_mut() {
            s.attr("body_bytes", body.len() as u64);
        }
        match self.dispatch(ty, src, &body).await {
            Ok(resp) => resp,
            Err(e) => {
                if let Some(s) = op.as_mut() {
                    s.attr("error", 1);
                }
                err_response(self.epoch.get(), e)
            }
        }
    }

    async fn dispatch(&self, ty: u8, src: simnet::Addr, body: &Bytes) -> DmResult<Bytes> {
        match ty {
            req::REGISTER => {
                // Register the process with every shard; page managers
                // assign pids deterministically so the ids agree.
                let pid = {
                    let mut pid = None;
                    for s in &self.shards {
                        let p = s.pm.borrow_mut().register_process();
                        match pid {
                            None => pid = Some(p),
                            Some(prev) => assert_eq!(prev, p, "shard pid divergence"),
                        }
                    }
                    pid.expect("at least one shard")
                };
                self.owners.borrow_mut().insert(pid.0, src);
                self.charge(0, OpCost::default(), 0).await;
                // Only lease-granting servers append the TTL: the response
                // (and thus the packet schedule) of a lease-free server is
                // byte-identical to the pre-lease wire format.
                if let Some(ttl) = self.config.lease_ttl {
                    self.leases.borrow_mut().insert(pid.0, simcore::now() + ttl);
                    return Ok(self.ok(&Writer::new().pid(pid).u64(ttl.as_nanos() as u64).finish()));
                }
                Ok(self.ok(&Writer::new().pid(pid).finish()))
            }
            req::RENEW_LEASE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let ttl = self.config.lease_ttl.ok_or(DmError::Malformed)?;
                match self.leases.borrow_mut().get_mut(&pid.0) {
                    Some(exp) => *exp = simcore::now() + ttl,
                    // Lease already expired and reclaimed: the renewal is
                    // too late, the client must re-register.
                    None => return Err(DmError::InvalidAddress),
                }
                self.charge(0, OpCost::default(), 0).await;
                Ok(self.ok(&[]))
            }
            req::ALLOC => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let len = r.u64()?;
                let shard = self.pick_alloc_shard();
                let va = self.shards[shard].pm.borrow_mut().ralloc(pid, len)?;
                self.charge(shard, OpCost::default(), 0).await;
                Ok(self.ok(&Writer::new().u64(self.tag(shard, va)).finish()))
            }
            req::FREE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let cost = self.shards[shard].pm.borrow_mut().rfree(pid, va)?;
                self.charge(shard, cost, cost.refcount_updates).await;
                Ok(self.ok(&[]))
            }
            req::CREATE_REF => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let len = r.u64()?;
                let (key, cost) = self.shards[shard]
                    .pm
                    .borrow_mut()
                    .create_ref(pid, va, len)?;
                let pages = len.div_ceil(PAGE_SIZE as u64);
                self.charge(shard, cost, pages).await;
                Ok(self.ok(&Writer::new().u64(self.tag(shard, key)).finish()))
            }
            req::MAP_REF => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, key) = self.route(r.u64()?)?;
                let (va, len, cost) = self.shards[shard].pm.borrow_mut().map_ref(pid, key)?;
                self.charge(shard, cost, cost.refcount_updates).await;
                Ok(self.ok(&Writer::new().u64(self.tag(shard, va)).u64(len).finish()))
            }
            req::READ => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let len = r.u64()?;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let data = self.shards[shard].pm.borrow_mut().read(pid, va, len)?;
                self.charge(shard, OpCost::default(), translations).await;
                // Reading pinned pages into the response path occupies DRAM.
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&data))
            }
            req::WRITE => {
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let data = r.rest();
                let translations = (data.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
                let cost = self.shards[shard].pm.borrow_mut().write(pid, va, data)?;
                self.charge(shard, cost, translations).await;
                // Storing into pinned pages occupies DRAM.
                self.mem.touch(data.len() as u64).await;
                self.note_data_time(data.len() as u64);
                Ok(self.ok(&[]))
            }
            req::RELEASE_REF => {
                let mut r = Reader::new(body);
                let (shard, key) = self.route(r.u64()?)?;
                let cost = self.shards[shard].pm.borrow_mut().release_ref(key)?;
                // The ref is gone: advance the invalidation epoch so client
                // caches filled before this point stop serving it. The
                // releaser's own response already carries the new epoch.
                self.epoch.set(self.epoch.get() + 1);
                self.charge(shard, cost, cost.refcount_updates).await;
                Ok(self.ok(&[]))
            }
            req::WRITE_CREATE_REF => {
                // Fast path: write the data and create the ref in one RTT.
                let mut r = Reader::new(body);
                let pid = r.pid()?;
                self.check_owner(pid, src)?;
                let (shard, va) = self.route(r.u64()?)?;
                let data = r.rest();
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let (key, wcost, ccost) = {
                    let mut pm = self.shards[shard].pm.borrow_mut();
                    let wcost = pm.write(pid, va, data)?;
                    let (key, ccost) = pm.create_ref(pid, va, len)?;
                    (key, wcost, ccost)
                };
                let mut cost = wcost;
                cost.add(ccost);
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&Writer::new().u64(self.tag(shard, key)).finish()))
            }
            req::PUT_REF => {
                let data = &body[..];
                let len = data.len() as u64;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let shard = self.pick_alloc_shard();
                // Attribute the ref to the caller's PID so lease expiry can
                // reclaim it. An unregistered caller (e.g. a process whose
                // lease already expired) is rejected — an anonymous ref
                // could never be reclaimed.
                let owner = self
                    .owners
                    .borrow()
                    .iter()
                    .find(|&(_, &a)| a == src)
                    .map(|(&pid, _)| GlobalPid(pid))
                    .ok_or(DmError::InvalidAddress)?;
                let (key, cost) = self.shards[shard]
                    .pm
                    .borrow_mut()
                    .put_ref(data, Some(owner))?;
                self.charge(shard, cost, translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&Writer::new().u64(self.tag(shard, key)).finish()))
            }
            req::READ_REF => {
                let mut r = Reader::new(body);
                let (shard, key) = self.route(r.u64()?)?;
                let off = r.u64()?;
                let len = r.u64()?;
                let translations = len.div_ceil(PAGE_SIZE as u64).max(1);
                let data = self.shards[shard].pm.borrow_mut().read_ref(key, off, len)?;
                self.charge(shard, OpCost::default(), translations).await;
                self.mem.touch(len).await;
                self.note_data_time(len);
                Ok(self.ok(&data))
            }
            req::BATCH => {
                // Coalesced control ops (DESIGN.md §9): one wire message,
                // one framed response per sub-op. Each sub-op still pays
                // its own page-manager CPU; what the batch saves is the
                // per-message RPC and network overhead. A failing sub-op
                // does not abort the rest — its framed slot carries the
                // error.
                let items = proto::decode_batch(body)?;
                let mut resps = Vec::with_capacity(items.len());
                for (sub_ty, sub_body, sub_ctx) in items {
                    if sub_ty == req::BATCH {
                        return Err(DmError::Malformed); // no nesting
                    }
                    // A sub-op that rode in with its enqueuer's context is
                    // parented there, reconnecting the deferred op to the
                    // request that caused it (the flush RPC is untraced).
                    let sub_span = sub_ctx.and_then(|c| {
                        telemetry::span_with_parent(
                            SpanKind::DmOp,
                            proto::req_name(sub_ty),
                            self.addr().node.0,
                            c,
                        )
                    });
                    let resp = match Box::pin(self.dispatch(sub_ty, src, &sub_body)).await {
                        Ok(r) => r,
                        Err(e) => err_response(self.epoch.get(), e),
                    };
                    drop(sub_span);
                    resps.push(resp);
                }
                Ok(self.ok(&proto::encode_batch_responses(&resps)))
            }
            _ => Err(DmError::Malformed),
        }
    }
}

/// Start `n` DM servers on dedicated nodes; returns their addresses.
/// Convenience used by benches ("We implement the global disaggregated
/// memory pool using two servers", §VI-A).
pub fn start_pool(
    net: &Network,
    nodes: &[NodeId],
    params: &memsim::ModelParams,
    config: DmServerConfig,
) -> Vec<Rc<DmServer>> {
    let _ = SimRng::new(0); // reserved for future jitter modeling
    nodes
        .iter()
        .map(|&node| {
            let mem = NodeMemory::with_defaults(format!("dm{}", node.0), params.clone());
            DmServer::start(net, node, mem, config)
        })
        .collect()
}
