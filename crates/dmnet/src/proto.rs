//! DM wire protocol: request/response encoding over [`rpclib`].
//!
//! Each DM operation is one RPC to the owning DM server. Responses carry a
//! leading status byte (0 = ok, otherwise a [`DmError`] code).

use bytes::{Bytes, BytesMut};
use dmcommon::{DmError, DmResult, GlobalPid};

/// RPC `req_type` values used by the DM protocol.
pub mod req {
    /// Register a process, returns its global PID.
    pub const REGISTER: u8 = 10;
    /// Allocate DM virtual address space.
    pub const ALLOC: u8 = 11;
    /// Free a region.
    pub const FREE: u8 = 12;
    /// Create a shared reference.
    pub const CREATE_REF: u8 = 13;
    /// Map a shared reference.
    pub const MAP_REF: u8 = 14;
    /// Read bytes from DM.
    pub const READ: u8 = 15;
    /// Write bytes to DM.
    pub const WRITE: u8 = 16;
    /// Release a shared reference.
    pub const RELEASE_REF: u8 = 17;
    /// Fast path: write a freshly-allocated region and create a ref in one
    /// round trip (an engineering optimization over the paper's Listing 1,
    /// see DESIGN.md §6).
    pub const WRITE_CREATE_REF: u8 = 18;
    /// Fast path: read a ref's bytes by key without installing a mapping.
    pub const READ_REF: u8 = 19;
    /// Fast path: publish data as a new reference in one round trip, with
    /// no creator mapping (server-side allocation).
    pub const PUT_REF: u8 = 20;
    /// Renew this process's lease (only meaningful when the server grants
    /// leases; body = pid). A process whose lease expires has all its pins
    /// reclaimed — see DESIGN.md §8.
    pub const RENEW_LEASE: u8 = 21;
}

/// Well-known port DM servers listen on.
pub const DM_PORT: u16 = 7000;

fn err_code(e: DmError) -> u8 {
    match e {
        DmError::OutOfMemory => 1,
        DmError::InvalidAddress => 2,
        DmError::InvalidRef => 3,
        DmError::OutOfBounds => 4,
        DmError::Malformed => 5,
        DmError::Transport => 6,
    }
}

fn code_err(c: u8) -> DmError {
    match c {
        1 => DmError::OutOfMemory,
        2 => DmError::InvalidAddress,
        3 => DmError::InvalidRef,
        4 => DmError::OutOfBounds,
        6 => DmError::Transport,
        _ => DmError::Malformed,
    }
}

/// Encode a successful response with `body`.
pub fn ok_response(body: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.extend_from_slice(&[0u8]);
    b.extend_from_slice(body);
    b.freeze()
}

/// Encode an error response.
pub fn err_response(e: DmError) -> Bytes {
    Bytes::from(vec![err_code(e)])
}

/// Split a response into its body or error.
pub fn parse_response(resp: &Bytes) -> DmResult<Bytes> {
    match resp.first() {
        Some(0) => Ok(resp.slice(1..)),
        Some(&c) => Err(code_err(c)),
        None => Err(DmError::Malformed),
    }
}

/// Cursor-style reader for request/response bodies.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Read a u32.
    pub fn u32(&mut self) -> DmResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> DmResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a PID.
    pub fn pid(&mut self) -> DmResult<GlobalPid> {
        Ok(GlobalPid(self.u32()?))
    }

    /// Remaining bytes.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn take(&mut self, n: usize) -> DmResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DmError::Malformed);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Builder for request/response bodies.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty body.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Append a u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a PID.
    pub fn pid(self, p: GlobalPid) -> Self {
        self.u32(p.0)
    }

    /// Append raw bytes.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Finish into `Bytes`.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_roundtrip() {
        let ok = ok_response(b"abc");
        assert_eq!(&parse_response(&ok).unwrap()[..], b"abc");
        let err = err_response(DmError::OutOfMemory);
        assert_eq!(parse_response(&err).unwrap_err(), DmError::OutOfMemory);
        assert_eq!(
            parse_response(&Bytes::new()).unwrap_err(),
            DmError::Malformed
        );
    }

    #[test]
    fn all_error_codes_roundtrip() {
        for e in [
            DmError::OutOfMemory,
            DmError::InvalidAddress,
            DmError::InvalidRef,
            DmError::OutOfBounds,
            DmError::Malformed,
            DmError::Transport,
        ] {
            assert_eq!(parse_response(&err_response(e)).unwrap_err(), e);
        }
    }

    #[test]
    fn reader_writer_roundtrip() {
        let body = Writer::new()
            .pid(GlobalPid(9))
            .u64(0xABCD)
            .u32(77)
            .bytes(b"tail")
            .finish();
        let mut r = Reader::new(&body);
        assert_eq!(r.pid().unwrap(), GlobalPid(9));
        assert_eq!(r.u64().unwrap(), 0xABCD);
        assert_eq!(r.u32().unwrap(), 77);
        assert_eq!(r.rest(), b"tail");
    }

    #[test]
    fn reader_underflow_is_malformed() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u64().unwrap_err(), DmError::Malformed);
    }
}
