//! DM wire protocol: request/response encoding over [`rpclib`].
//!
//! Each DM operation is one RPC to the owning DM server. Responses carry a
//! leading status byte (0 = ok, otherwise a [`DmError`] code) followed by
//! the server's current *invalidation epoch* (u64 LE). The epoch advances
//! whenever a ref is released (explicitly or by lease reclamation), so a
//! client comparing the piggybacked epoch against the one its cache entries
//! were filled under can tell whether any ref it cached may have died since
//! (DESIGN.md §9).

use bytes::{Bytes, BytesMut};
use dmcommon::{DmError, DmResult, GlobalPid};
use telemetry::TraceCtx;

/// RPC `req_type` values used by the DM protocol.
pub mod req {
    /// Register a process, returns its global PID.
    pub const REGISTER: u8 = 10;
    /// Allocate DM virtual address space.
    pub const ALLOC: u8 = 11;
    /// Free a region.
    pub const FREE: u8 = 12;
    /// Create a shared reference.
    pub const CREATE_REF: u8 = 13;
    /// Map a shared reference.
    pub const MAP_REF: u8 = 14;
    /// Read bytes from DM.
    pub const READ: u8 = 15;
    /// Write bytes to DM.
    pub const WRITE: u8 = 16;
    /// Release a shared reference.
    pub const RELEASE_REF: u8 = 17;
    /// Fast path: write a freshly-allocated region and create a ref in one
    /// round trip (an engineering optimization over the paper's Listing 1,
    /// see DESIGN.md §6).
    pub const WRITE_CREATE_REF: u8 = 18;
    /// Fast path: read a ref's bytes by key without installing a mapping.
    pub const READ_REF: u8 = 19;
    /// Fast path: publish data as a new reference in one round trip, with
    /// no creator mapping (server-side allocation).
    pub const PUT_REF: u8 = 20;
    /// Renew this process's lease (only meaningful when the server grants
    /// leases; body = pid). A process whose lease expires has all its pins
    /// reclaimed — see DESIGN.md §8.
    pub const RENEW_LEASE: u8 = 21;
    /// Batched control ops: `u32` count, then `count` framed sub-requests
    /// (`u8` req type, `u32` body length, body). The response body frames
    /// one full response per sub-request in order. Nested batches are
    /// rejected.
    pub const BATCH: u8 = 22;
    /// Sharded plane (DESIGN.md §13): publish data under a client-minted
    /// global key (`[gkey u64][data]`). The server binds the gkey to a
    /// locally-allocated ref; later ops name the gkey and any server
    /// holding it (or a redirect tombstone for it) can answer.
    pub const PUT_REF_AT: u8 = 23;
    /// Migrate a gkey-bound ref to another server
    /// (`[gkey u64][dst node u32][dst port u16]`). The source transfers
    /// the bytes server-to-server, releases its copy and installs a
    /// redirect tombstone; clients naming the gkey chase one hop.
    pub const MIGRATE: u8 = 24;
    /// Server-to-server half of [`MIGRATE`]
    /// (`[gkey u64][owner node u32][owner port u16][data]`): the
    /// destination binds the gkey to a fresh local ref holding `data`,
    /// attributed to its own pid for the owning endpoint.
    pub const MIGRATE_IN: u8 = 25;
    /// Server-to-client targeted invalidation push (`[key u64][ver u64]`,
    /// DESIGN.md §15): the named ref's version advanced (it was released,
    /// reclaimed, or migrated), so any cached copy filled under an older
    /// version must be dropped. Fire-and-forget — a lost push is safe
    /// because cached entries also carry a bounded read lease and a
    /// version check on serve, and ref bytes are immutable while live.
    pub const INVALIDATE: u8 = 26;
}

/// Well-known port DM servers listen on.
pub const DM_PORT: u16 = 7000;

/// Stable human-readable name for a request type, used as the span name
/// when tracing server-side dispatch.
pub fn req_name(ty: u8) -> &'static str {
    match ty {
        req::REGISTER => "dm.register",
        req::ALLOC => "dm.alloc",
        req::FREE => "dm.free",
        req::CREATE_REF => "dm.create_ref",
        req::MAP_REF => "dm.map_ref",
        req::READ => "dm.read",
        req::WRITE => "dm.write",
        req::RELEASE_REF => "dm.release_ref",
        req::WRITE_CREATE_REF => "dm.write_create_ref",
        req::READ_REF => "dm.read_ref",
        req::PUT_REF => "dm.put_ref",
        req::RENEW_LEASE => "dm.renew_lease",
        req::BATCH => "dm.batch",
        req::PUT_REF_AT => "dm.put_ref_at",
        req::MIGRATE => "dm.migrate",
        req::MIGRATE_IN => "dm.migrate_in",
        req::INVALIDATE => "dm.invalidate",
        _ => "dm.unknown",
    }
}

/// Whether a request type is control-plane (metadata: registration,
/// pin/unpin, release, lease renewal) as opposed to data-plane (carrying
/// payload bytes). The `xtra_rtt_budget` experiment counts the two classes
/// separately.
pub fn is_control(ty: u8) -> bool {
    !matches!(
        ty,
        req::READ
            | req::WRITE
            | req::READ_REF
            | req::PUT_REF
            | req::WRITE_CREATE_REF
            | req::PUT_REF_AT
            | req::MIGRATE_IN
    )
}

/// The single source of truth for the `DmError` ↔ wire-code mapping.
/// Encode and decode both walk this table, so they cannot disagree and
/// every code (including 5 = `Malformed`) has an explicit entry.
const ERR_TABLE: &[(DmError, u8)] = &[
    (DmError::OutOfMemory, 1),
    (DmError::InvalidAddress, 2),
    (DmError::InvalidRef, 3),
    (DmError::OutOfBounds, 4),
    (DmError::Malformed, 5),
    (DmError::Transport, 6),
    // 7 is CODE_MOVED (a redirect, not an error); Busy takes the next slot.
    (DmError::Busy, 8),
];

fn err_code(e: DmError) -> u8 {
    ERR_TABLE
        .iter()
        .find(|&&(err, _)| err == e)
        .map(|&(_, c)| c)
        .expect("every DmError variant is in ERR_TABLE")
}

fn code_err(c: u8) -> DmError {
    ERR_TABLE
        .iter()
        .find(|&&(_, code)| code == c)
        .map(|&(e, _)| e)
        .unwrap_or(DmError::Malformed)
}

/// Encode a successful response with `body`, carrying the server's current
/// invalidation `epoch`.
pub fn ok_response(epoch: u64, body: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(9 + body.len());
    b.extend_from_slice(&[0u8]);
    b.extend_from_slice(&epoch.to_le_bytes());
    b.extend_from_slice(body);
    b.freeze()
}

/// Encode an error response, carrying the server's current `epoch`.
pub fn err_response(epoch: u64, e: DmError) -> Bytes {
    let mut b = BytesMut::with_capacity(9);
    b.extend_from_slice(&[err_code(e)]);
    b.extend_from_slice(&epoch.to_le_bytes());
    b.freeze()
}

/// Split a response into its piggybacked epoch plus body-or-error. A
/// response too short to carry an epoch decodes as `(0, Err(Malformed))`.
pub fn split_response(resp: &Bytes) -> (u64, DmResult<Bytes>) {
    if resp.len() < 9 {
        return (0, Err(DmError::Malformed));
    }
    let epoch = u64::from_le_bytes(resp[1..9].try_into().expect("len checked"));
    match resp[0] {
        0 => (epoch, Ok(resp.slice(9..))),
        c => (epoch, Err(code_err(c))),
    }
}

/// Split a response into its body or error, discarding the epoch.
pub fn parse_response(resp: &Bytes) -> DmResult<Bytes> {
    split_response(resp).1
}

/// Encode a successful response whose body carries a per-ref version
/// trailer (DESIGN.md §15): `body`, then `n × ([key u64][ver u64])`, then
/// `[n u8]` as the very last byte. A coherence-mode server wraps *every*
/// successful response this way (an untouched response gets `n = 0`), so
/// a fine-grained client can strip the trailer unambiguously.
pub fn ok_response_versioned(epoch: u64, body: &[u8], touched: &[(u64, u64)]) -> Bytes {
    assert!(touched.len() <= u8::MAX as usize, "trailer count is a u8");
    let mut b = BytesMut::with_capacity(9 + body.len() + 16 * touched.len() + 1);
    b.extend_from_slice(&[0u8]);
    b.extend_from_slice(&epoch.to_le_bytes());
    b.extend_from_slice(body);
    for &(key, ver) in touched {
        b.extend_from_slice(&key.to_le_bytes());
        b.extend_from_slice(&ver.to_le_bytes());
    }
    b.extend_from_slice(&[touched.len() as u8]);
    b.freeze()
}

/// Strip a [`ok_response_versioned`] trailer off a success body, returning
/// the inner body plus the `(key, version)` pairs the response touched.
/// Only meaningful on bodies produced by a coherence-mode server.
pub fn split_versions(body: &Bytes) -> DmResult<(Bytes, Vec<(u64, u64)>)> {
    let len = body.len();
    if len < 1 {
        return Err(DmError::Malformed);
    }
    let n = body[len - 1] as usize;
    let trailer = 16 * n + 1;
    if len < trailer {
        return Err(DmError::Malformed);
    }
    let base = len - trailer;
    let mut touched = Vec::with_capacity(n);
    for i in 0..n {
        let at = base + 16 * i;
        let key = u64::from_le_bytes(body[at..at + 8].try_into().expect("len checked"));
        let ver = u64::from_le_bytes(body[at + 8..at + 16].try_into().expect("len checked"));
        touched.push((key, ver));
    }
    Ok((body.slice(..base), touched))
}

/// Status byte of a *redirect* response (DESIGN.md §13): the named gkey
/// migrated away and the body carries the forwarding address. Deliberately
/// not a [`DmError`] — only gkey-routed clients can receive it, and they
/// decode with [`split_response_routed`]; a legacy decoder maps the code
/// to `Malformed`, which such a client could only see through a bug.
pub const CODE_MOVED: u8 = 7;

/// Outcome of a gkey-routed request: a body, a one-hop redirect, or an
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routed {
    /// Success body.
    Ok(Bytes),
    /// The gkey migrated to the server at `node:port`; retry there.
    Moved {
        /// Forwarding fabric node.
        node: u32,
        /// Forwarding port.
        port: u16,
    },
    /// Typed failure.
    Err(DmError),
}

/// Encode a redirect response: the gkey now lives at `node:port`.
pub fn moved_response(epoch: u64, node: u32, port: u16) -> Bytes {
    let mut b = BytesMut::with_capacity(15);
    b.extend_from_slice(&[CODE_MOVED]);
    b.extend_from_slice(&epoch.to_le_bytes());
    b.extend_from_slice(&node.to_le_bytes());
    b.extend_from_slice(&port.to_le_bytes());
    b.freeze()
}

/// [`split_response`] for gkey-routed requests: additionally decodes
/// [`CODE_MOVED`] redirects.
pub fn split_response_routed(resp: &Bytes) -> (u64, Routed) {
    if resp.len() < 9 {
        return (0, Routed::Err(DmError::Malformed));
    }
    let epoch = u64::from_le_bytes(resp[1..9].try_into().expect("len checked"));
    match resp[0] {
        0 => (epoch, Routed::Ok(resp.slice(9..))),
        CODE_MOVED => {
            if resp.len() < 15 {
                return (epoch, Routed::Err(DmError::Malformed));
            }
            let node = u32::from_le_bytes(resp[9..13].try_into().expect("len checked"));
            let port = u16::from_le_bytes(resp[13..15].try_into().expect("len checked"));
            (epoch, Routed::Moved { node, port })
        }
        c => (epoch, Routed::Err(code_err(c))),
    }
}

/// High bit of a batch item tag: set when the item body starts with a
/// 16-byte trace context (`trace_id` LE u64, `span_id` LE u64) captured
/// where the op was enqueued. Request types stay ≤ [`req::MIGRATE_IN`]
/// (25), so the bit is free; untraced batches are byte-identical to the
/// pre-telemetry encoding.
pub const BATCH_TRACE_BIT: u8 = 0x80;

/// Frame `items` (req type, body) as a [`req::BATCH`] request body
/// (rpclib's tagged multi-op framing), with no trace contexts.
pub fn encode_batch(items: &[(u8, Bytes)]) -> Bytes {
    let untraced: Vec<(u8, Bytes, Option<TraceCtx>)> = items
        .iter()
        .map(|(ty, body)| (*ty, body.clone(), None))
        .collect();
    encode_batch_traced(&untraced)
}

/// Frame `items` (req type, body, optional trace context) as a
/// [`req::BATCH`] request body. Items carrying a context get the
/// [`BATCH_TRACE_BIT`] tag bit and a 16-byte context prefix, so batched
/// control ops stay attributable to the request that enqueued them even
/// though the flush RPC itself runs in a timer task.
pub fn encode_batch_traced(items: &[(u8, Bytes, Option<TraceCtx>)]) -> Bytes {
    let framed: Vec<(u8, Bytes)> = items
        .iter()
        .map(|(ty, body, ctx)| match ctx {
            None => (*ty, body.clone()),
            Some(c) => {
                let mut b = BytesMut::with_capacity(16 + body.len());
                b.extend_from_slice(&c.trace_id.to_le_bytes());
                b.extend_from_slice(&c.span_id.to_le_bytes());
                b.extend_from_slice(body);
                (*ty | BATCH_TRACE_BIT, b.freeze())
            }
        })
        .collect();
    rpclib::multiframe::encode_tagged(&framed)
}

/// Decode a [`req::BATCH`] request body into (req type, body, optional
/// trace context) items. Zero-copy: the returned bodies share the input
/// buffer's storage (traced items slice past their context prefix).
pub fn decode_batch(body: &Bytes) -> DmResult<Vec<(u8, Bytes, Option<TraceCtx>)>> {
    let raw = rpclib::multiframe::decode_tagged(body).ok_or(DmError::Malformed)?;
    raw.into_iter()
        .map(|(tag, body)| {
            if tag & BATCH_TRACE_BIT == 0 {
                return Ok((tag, body, None));
            }
            if body.len() < 16 {
                return Err(DmError::Malformed);
            }
            let trace_id = u64::from_le_bytes(body[..8].try_into().expect("len checked"));
            let span_id = u64::from_le_bytes(body[8..16].try_into().expect("len checked"));
            Ok((
                tag & !BATCH_TRACE_BIT,
                body.slice(16..),
                Some(TraceCtx { trace_id, span_id }),
            ))
        })
        .collect()
}

/// Frame per-sub-request responses as a batch response body (rpclib's
/// untagged multi-op framing; order mirrors the request).
pub fn encode_batch_responses(resps: &[Bytes]) -> Bytes {
    rpclib::multiframe::encode_plain(resps)
}

/// Decode a batch response body into the framed per-sub-request responses.
pub fn decode_batch_responses(body: &Bytes) -> DmResult<Vec<Bytes>> {
    rpclib::multiframe::decode_plain(body).ok_or(DmError::Malformed)
}

/// Cursor-style reader for request/response bodies.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Read a u32.
    pub fn u32(&mut self) -> DmResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> DmResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len checked")))
    }

    /// Read a PID.
    pub fn pid(&mut self) -> DmResult<GlobalPid> {
        Ok(GlobalPid(self.u32()?))
    }

    /// Remaining bytes.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> DmResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DmError::Malformed);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Builder for request/response bodies.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty body.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Append a u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a PID.
    pub fn pid(self, p: GlobalPid) -> Self {
        self.u32(p.0)
    }

    /// Append raw bytes.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Finish into `Bytes`.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_roundtrip() {
        let ok = ok_response(42, b"abc");
        assert_eq!(&parse_response(&ok).unwrap()[..], b"abc");
        let (epoch, body) = split_response(&ok);
        assert_eq!(epoch, 42);
        assert_eq!(&body.unwrap()[..], b"abc");
        let err = err_response(7, DmError::OutOfMemory);
        assert_eq!(parse_response(&err).unwrap_err(), DmError::OutOfMemory);
        assert_eq!(split_response(&err).0, 7);
        assert_eq!(
            parse_response(&Bytes::new()).unwrap_err(),
            DmError::Malformed
        );
        // Too short to carry an epoch: malformed, epoch reads as 0.
        assert_eq!(
            split_response(&Bytes::from_static(&[0, 1, 2])),
            (0, Err(DmError::Malformed))
        );
    }

    #[test]
    fn all_error_codes_roundtrip() {
        // Every variant must survive encode → decode through the shared
        // table, including Malformed (code 5).
        for &(e, code) in ERR_TABLE {
            assert_eq!(err_code(e), code);
            assert_eq!(code_err(code), e);
            assert_eq!(parse_response(&err_response(0, e)).unwrap_err(), e);
        }
        // Unknown codes (and 0 in error position) decode as Malformed.
        assert_eq!(code_err(0), DmError::Malformed);
        assert_eq!(code_err(99), DmError::Malformed);
    }

    #[test]
    fn batch_framing_roundtrip() {
        let items = vec![
            (req::RELEASE_REF, Writer::new().u64(11).finish()),
            (req::FREE, Writer::new().pid(GlobalPid(3)).u64(22).finish()),
            (req::RELEASE_REF, Bytes::new()),
        ];
        let decoded = decode_batch(&encode_batch(&items)).unwrap();
        let expect: Vec<(u8, Bytes, Option<TraceCtx>)> = items
            .iter()
            .map(|(ty, body)| (*ty, body.clone(), None))
            .collect();
        assert_eq!(decoded, expect);

        let resps = vec![ok_response(1, b""), err_response(2, DmError::InvalidRef)];
        let back = decode_batch_responses(&encode_batch_responses(&resps)).unwrap();
        assert_eq!(back, resps);
    }

    #[test]
    fn traced_batch_items_roundtrip_and_mix_with_untraced() {
        let ctx = TraceCtx {
            trace_id: 0x1111_2222_3333_4444,
            span_id: 0x5555_6666_7777_8888,
        };
        let items = vec![
            (req::RELEASE_REF, Writer::new().u64(11).finish(), Some(ctx)),
            (
                req::FREE,
                Writer::new().pid(GlobalPid(3)).u64(22).finish(),
                None,
            ),
            (req::RELEASE_REF, Bytes::new(), Some(ctx)),
        ];
        let body = encode_batch_traced(&items);
        assert_eq!(decode_batch(&body).unwrap(), items);

        // An all-untraced batch is byte-identical to the legacy encoding:
        // the trace bit never appears on the wire unless a context rode in.
        let plain = vec![(req::RELEASE_REF, Writer::new().u64(11).finish())];
        let traced_none: Vec<(u8, Bytes, Option<TraceCtx>)> =
            plain.iter().map(|(ty, b)| (*ty, b.clone(), None)).collect();
        assert_eq!(encode_batch(&plain), encode_batch_traced(&traced_none));
    }

    #[test]
    fn traced_batch_truncated_context_is_malformed() {
        // Tag claims a context prefix but the body is too short for one.
        let raw = rpclib::multiframe::encode_tagged(&[(
            req::RELEASE_REF | BATCH_TRACE_BIT,
            Bytes::from_static(&[0u8; 15]),
        )]);
        assert_eq!(decode_batch(&raw).unwrap_err(), DmError::Malformed);
    }

    #[test]
    fn batch_decode_rejects_garbage() {
        assert!(decode_batch(&Bytes::from_static(&[1, 2])).is_err());
        // Count claims more items than the body could possibly hold.
        let huge = Writer::new().u32(u32::MAX).finish();
        assert_eq!(decode_batch(&huge).unwrap_err(), DmError::Malformed);
        // Truncated item body.
        let trunc = Writer::new()
            .u32(1)
            .bytes(&[req::FREE])
            .u32(100)
            .bytes(b"short")
            .finish();
        assert_eq!(decode_batch(&trunc).unwrap_err(), DmError::Malformed);
    }

    #[test]
    fn control_plane_classification() {
        for ty in [
            req::REGISTER,
            req::ALLOC,
            req::FREE,
            req::CREATE_REF,
            req::MAP_REF,
            req::RELEASE_REF,
            req::RENEW_LEASE,
            req::BATCH,
            req::MIGRATE,
        ] {
            assert!(is_control(ty), "type {ty} is control-plane");
        }
        for ty in [
            req::READ,
            req::WRITE,
            req::READ_REF,
            req::PUT_REF,
            req::WRITE_CREATE_REF,
            req::PUT_REF_AT,
            req::MIGRATE_IN,
        ] {
            assert!(!is_control(ty), "type {ty} is data-plane");
        }
    }

    #[test]
    fn version_trailer_roundtrip() {
        // Data bytes plus two touched refs; the trailer strips cleanly.
        let resp = ok_response_versioned(5, b"payload", &[(11, 2), (GKEY_TEST, 7)]);
        let (epoch, body) = split_response(&resp);
        assert_eq!(epoch, 5);
        let (inner, touched) = split_versions(&body.unwrap()).unwrap();
        assert_eq!(&inner[..], b"payload");
        assert_eq!(touched, vec![(11, 2), (GKEY_TEST, 7)]);
        // Untouched responses still carry an (empty) trailer.
        let resp = ok_response_versioned(5, b"", &[]);
        let (inner, touched) = split_versions(&split_response(&resp).1.unwrap()).unwrap();
        assert!(inner.is_empty() && touched.is_empty());
        // A claimed trailer bigger than the body is malformed.
        assert_eq!(
            split_versions(&Bytes::from_static(&[0, 0, 3])).unwrap_err(),
            DmError::Malformed
        );
        assert_eq!(
            split_versions(&Bytes::new()).unwrap_err(),
            DmError::Malformed
        );
    }

    const GKEY_TEST: u64 = 1 << 63 | 42;

    #[test]
    fn moved_response_roundtrip() {
        let m = moved_response(9, 42, 7000);
        let (epoch, routed) = split_response_routed(&m);
        assert_eq!(epoch, 9);
        assert_eq!(
            routed,
            Routed::Moved {
                node: 42,
                port: 7000
            }
        );
        // Ok and Err responses decode identically to split_response.
        let (e2, r2) = split_response_routed(&ok_response(3, b"xy"));
        assert_eq!((e2, r2), (3, Routed::Ok(Bytes::from_static(b"xy"))));
        let (e3, r3) = split_response_routed(&err_response(4, DmError::InvalidRef));
        assert_eq!((e3, r3), (4, Routed::Err(DmError::InvalidRef)));
        // A legacy decoder treats the redirect as Malformed, never Ok.
        assert_eq!(parse_response(&m).unwrap_err(), DmError::Malformed);
        // Truncated redirect body.
        let (_, rt) = split_response_routed(&m.slice(..12));
        assert_eq!(rt, Routed::Err(DmError::Malformed));
    }

    #[test]
    fn reader_writer_roundtrip() {
        let body = Writer::new()
            .pid(GlobalPid(9))
            .u64(0xABCD)
            .u32(77)
            .bytes(b"tail")
            .finish();
        let mut r = Reader::new(&body);
        assert_eq!(r.pid().unwrap(), GlobalPid(9));
        assert_eq!(r.u64().unwrap(), 0xABCD);
        assert_eq!(r.u32().unwrap(), 77);
        assert_eq!(r.rest(), b"tail");
    }

    #[test]
    fn reader_underflow_is_malformed() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u64().unwrap_err(), DmError::Malformed);
    }
}
