//! Server-side overload control: a bounded admission queue plus
//! CoDel-style queue-delay shedding (DESIGN.md §14).
//!
//! Two independent mechanisms, both answering "should this request be
//! rejected *now*, before any work is done on it":
//!
//! - **Bounded admission.** At most `max_inflight` requests may be in
//!   flight (admitted but not yet answered). Beyond that the server is
//!   already saturated — queueing more requests only converts offered
//!   load into latency, so the request is refused with the typed
//!   [`DmError::Busy`](dmcommon::DmError) wire code and the client
//!   retries with backoff.
//! - **CoDel-style shedding.** Bounding the queue caps *depth*, not
//!   *delay*: a queue of 256 slow requests still blows any latency SLO.
//!   Following CoDel (Nichols & Jacobson, CACM 2012) the controller
//!   watches the *sojourn time* of completing requests (admission →
//!   response ready). When every completion in a full `interval` has
//!   been above `target`, the standing queue is too long and new
//!   arrivals are shed until a completion dips back under `target`.
//!
//! The struct is deliberately passive — a counter/deadline state machine
//! with no tasks, timers, or RNG draws — so installing it changes
//! nothing about the event schedule until the moment it rejects a
//! request. Servers built without an [`AdmissionConfig`] skip it
//! entirely; every committed fault-free CSV is generated on that path.

use std::cell::Cell;
use std::time::Duration;

use simcore::SimTime;

/// Tuning for [`Admission`]. `Copy` so cluster configs stay `Copy`.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum admitted-but-unanswered requests before new arrivals are
    /// refused with `Busy`.
    pub max_inflight: u64,
    /// Sojourn-time target: completions above this indicate a standing
    /// queue.
    pub codel_target: Duration,
    /// How long completions must stay above target before shedding
    /// engages.
    pub codel_interval: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 256,
            codel_target: Duration::from_micros(50),
            codel_interval: Duration::from_micros(200),
        }
    }
}

/// The admission state machine. See the module docs for semantics.
pub struct Admission {
    cfg: AdmissionConfig,
    inflight: Cell<u64>,
    rejected: Cell<u64>,
    shed: Cell<u64>,
    /// Start of the current above-target streak, if any.
    above_since: Cell<Option<SimTime>>,
    shedding: Cell<bool>,
}

impl Admission {
    /// A fresh controller with zeroed counters.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            inflight: Cell::new(0),
            rejected: Cell::new(0),
            shed: Cell::new(0),
            above_since: Cell::new(None),
            shedding: Cell::new(false),
        }
    }

    /// Try to admit one request. `None` means the request must be
    /// refused (the rejected/shed counter has already been bumped); the
    /// returned guard tracks the request's sojourn and releases its slot
    /// on drop — including when the handler future is cancelled by a
    /// crash, so slots can never leak.
    pub fn try_admit(&self) -> Option<AdmitGuard<'_>> {
        if self.inflight.get() >= self.cfg.max_inflight {
            self.rejected.set(self.rejected.get() + 1);
            return None;
        }
        // While shedding, refuse arrivals — except when nothing is in
        // flight: then one request is admitted as a *probe* (there is no
        // completion left to ever clear the state otherwise). A probe
        // finishing under target ends shedding; one finishing over it
        // keeps the controller serialised at probe rate, which is the
        // CoDel drop-mode analogue.
        if self.shedding.get() && self.inflight.get() > 0 {
            self.shed.set(self.shed.get() + 1);
            return None;
        }
        self.inflight.set(self.inflight.get() + 1);
        Some(AdmitGuard {
            adm: self,
            entered: simcore::now(),
        })
    }

    /// CoDel observation, fed by [`AdmitGuard::drop`] with the sojourn
    /// of each completing request.
    fn observe(&self, sojourn: Duration) {
        if sojourn > self.cfg.codel_target {
            let now = simcore::now();
            match self.above_since.get() {
                None => self.above_since.set(Some(now)),
                Some(t0) => {
                    if now - t0 >= self.cfg.codel_interval {
                        self.shedding.set(true);
                    }
                }
            }
        } else {
            // One fast completion ends both the streak and any shedding.
            self.above_since.set(None);
            self.shedding.set(false);
        }
    }

    /// Requests currently admitted and unanswered.
    pub fn inflight(&self) -> u64 {
        self.inflight.get()
    }

    /// Requests refused because the inflight bound was hit.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Requests refused by CoDel shedding.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Whether the controller is currently shedding new arrivals.
    pub fn is_shedding(&self) -> bool {
        self.shedding.get()
    }

    /// Forget transient state (streaks, shedding) across a server
    /// restart; cumulative counters survive for observability.
    pub fn reset_transient(&self) {
        self.above_since.set(None);
        self.shedding.set(false);
    }
}

/// Slot held by an admitted request; see [`Admission::try_admit`].
pub struct AdmitGuard<'a> {
    adm: &'a Admission,
    entered: SimTime,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let a = self.adm;
        a.inflight.set(a.inflight.get().saturating_sub(1));
        a.observe(simcore::now() - self.entered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 2,
            codel_target: Duration::from_micros(50),
            codel_interval: Duration::from_micros(200),
        }
    }

    #[test]
    fn inflight_bound_rejects_and_releases() {
        let sim = Sim::new();
        sim.block_on(async {
            let a = Admission::new(cfg());
            let g1 = a.try_admit().unwrap();
            let _g2 = a.try_admit().unwrap();
            assert!(a.try_admit().is_none(), "third request over the bound");
            assert_eq!(a.rejected(), 1);
            drop(g1);
            assert!(a.try_admit().is_some(), "slot released on drop");
        });
    }

    #[test]
    fn codel_sheds_after_sustained_delay_and_recovers() {
        let sim = Sim::new();
        sim.block_on(async {
            let a = Admission::new(cfg());
            // Slow completions spanning more than one interval: the
            // first starts the streak, later ones trip shedding.
            for _ in 0..3 {
                let g = a.try_admit().unwrap();
                simcore::sleep(Duration::from_micros(120)).await;
                drop(g);
            }
            assert!(a.is_shedding(), "sustained over-target sojourns shed");
            // With a probe in flight, further arrivals are shed.
            let probe = a.try_admit().expect("empty server admits a probe");
            assert!(a.try_admit().is_none());
            assert_eq!(a.shed(), 1);
            // The probe completing under target ends shedding.
            drop(probe);
            assert!(!a.is_shedding());
            assert!(a.try_admit().is_some());
        });
    }

    #[test]
    fn restart_clears_transient_state_not_counters() {
        let sim = Sim::new();
        sim.block_on(async {
            let a = Admission::new(cfg());
            for _ in 0..3 {
                let g = a.try_admit().unwrap();
                simcore::sleep(Duration::from_micros(120)).await;
                drop(g);
            }
            let probe = a.try_admit().unwrap();
            assert!(a.try_admit().is_none());
            a.reset_transient();
            assert!(!a.is_shedding(), "restart clears shedding");
            assert_eq!(a.shed(), 1, "cumulative counters survive restart");
            drop(probe);
        });
    }
}
