//! Client-side DM library (the "DM lib" of paper §VI-A).
//!
//! Provides the Table-II API — `ralloc`, `rfree`, `create_ref`, `map_ref`,
//! `rread`, `rwrite` (the latter two are specific to DmRPC-net) — by talking
//! the [`crate::proto`] protocol to a pool of DM servers. Allocation
//! requests are spread round-robin across the pool (paper §VI-A: "its
//! allocation request would be forwarded to one of the memory servers in a
//! round-robin manner").

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{DmError, DmResult, DmServerId, GlobalPid, Ref, RemoteAddr};
use rpclib::Rpc;
use simnet::Addr;

use crate::proto::{parse_response, req, Reader, Writer};

/// Handle to the DM pool for one process.
///
/// The same server list (in the same order) must be used by every client in
/// the simulation: [`DmServerId`]s inside [`RemoteAddr`]s and [`Ref`]s index
/// into it.
pub struct DmNetClient {
    rpc: Rc<Rpc>,
    servers: Vec<Addr>,
    pids: Vec<GlobalPid>,
    next_rr: Cell<usize>,
    /// Lease TTL granted by the pool (`None` when the servers do not grant
    /// leases). When set, a background task renews every lease at TTL/3.
    lease_ttl: Option<Duration>,
    /// Shared liveness flag: cleared on drop or simulated crash, which
    /// stops the renewal task.
    alive: Rc<Cell<bool>>,
}

impl DmNetClient {
    /// Register this process with every DM server in the pool. If the
    /// servers grant leases, a background task renews them until the client
    /// is dropped or [`DmNetClient::simulate_crash`] is called.
    pub async fn connect(rpc: Rc<Rpc>, servers: Vec<Addr>) -> DmResult<DmNetClient> {
        assert!(!servers.is_empty(), "DM pool must have at least one server");
        let mut pids = Vec::with_capacity(servers.len());
        let mut lease_ttl = None;
        for &s in &servers {
            let resp = rpc
                .call(s, req::REGISTER, Bytes::new())
                .await
                .map_err(|_| DmError::Transport)?;
            let body = parse_response(&resp)?;
            let mut r = Reader::new(&body);
            pids.push(r.pid()?);
            if let Ok(ns) = r.u64() {
                lease_ttl = Some(Duration::from_nanos(ns));
            }
        }
        let alive = Rc::new(Cell::new(true));
        if let Some(ttl) = lease_ttl {
            // One renewal task per server: a renewal stalled on a crashed
            // server (waiting out the retry budget) must not delay the
            // renewals that keep the healthy servers' leases alive.
            for (i, &s) in servers.iter().enumerate() {
                let rpc = rpc.clone();
                let pid = pids[i];
                let alive = alive.clone();
                simcore::spawn(async move {
                    // Renew well inside the TTL so one lost renewal (or a
                    // short partition) does not expire the lease.
                    let period = ttl / 3;
                    loop {
                        simcore::sleep(period).await;
                        if !alive.get() {
                            return;
                        }
                        let body = Writer::new().pid(pid).finish();
                        let _ = rpc.call(s, req::RENEW_LEASE, body).await;
                        if !alive.get() {
                            return;
                        }
                    }
                });
            }
        }
        Ok(DmNetClient {
            rpc,
            servers,
            pids,
            next_rr: Cell::new(0),
            lease_ttl,
            alive,
        })
    }

    /// The lease TTL granted by the pool, if any.
    pub fn lease_ttl(&self) -> Option<Duration> {
        self.lease_ttl
    }

    /// Chaos hook: fail-stop this client. Lease renewal ceases and the
    /// underlying RPC endpoint goes silent, so the servers reclaim every
    /// pin of this process once its lease expires.
    pub fn simulate_crash(&self) {
        self.alive.set(false);
        self.rpc.set_offline(true);
    }

    /// The DM server addresses this client uses.
    pub fn servers(&self) -> &[Addr] {
        &self.servers
    }

    fn server_addr(&self, id: DmServerId) -> DmResult<Addr> {
        self.servers
            .get(id.0 as usize)
            .copied()
            .ok_or(DmError::InvalidAddress)
    }

    fn pid_at(&self, id: DmServerId) -> GlobalPid {
        self.pids[id.0 as usize]
    }

    async fn request(&self, server: DmServerId, ty: u8, body: Bytes) -> DmResult<Bytes> {
        let addr = self.server_addr(server)?;
        let resp = self
            .rpc
            .call(addr, ty, body)
            .await
            .map_err(|_| DmError::Transport)?;
        parse_response(&resp)
    }

    /// Allocate `len` bytes of disaggregated memory (round-robin across the
    /// pool). Table II: `ralloc(size)`.
    pub async fn ralloc(&self, len: u64) -> DmResult<RemoteAddr> {
        let idx = self.next_rr.get() % self.servers.len();
        self.next_rr.set(idx + 1);
        let server = DmServerId(idx as u8);
        let pid = self.pid_at(server);
        let body = Writer::new().pid(pid).u64(len).finish();
        let resp = self.request(server, req::ALLOC, body).await?;
        let mut r = Reader::new(&resp);
        Ok(RemoteAddr {
            server,
            pid,
            va: r.u64()?,
        })
    }

    /// Deallocate a region. Table II: `rfree(remote_addr)`.
    pub async fn rfree(&self, addr: RemoteAddr) -> DmResult<()> {
        let body = Writer::new().pid(addr.pid).u64(addr.va).finish();
        self.request(addr.server, req::FREE, body).await?;
        Ok(())
    }

    /// Write `data` to DM at `addr`. Table II: `rwrite`.
    pub async fn rwrite(&self, addr: RemoteAddr, data: &Bytes) -> DmResult<()> {
        let body = Writer::new()
            .pid(addr.pid)
            .u64(addr.va)
            .bytes(data)
            .finish();
        self.request(addr.server, req::WRITE, body).await?;
        Ok(())
    }

    /// Read `len` bytes of DM from `addr`. Table II: `rread`.
    pub async fn rread(&self, addr: RemoteAddr, len: u64) -> DmResult<Bytes> {
        let body = Writer::new().pid(addr.pid).u64(addr.va).u64(len).finish();
        self.request(addr.server, req::READ, body).await
    }

    /// Create a shared reference to `[addr, addr+len)`. Table II:
    /// `create_ref(remote_addr, size)`.
    pub async fn create_ref(&self, addr: RemoteAddr, len: u64) -> DmResult<Ref> {
        let body = Writer::new().pid(addr.pid).u64(addr.va).u64(len).finish();
        let resp = self.request(addr.server, req::CREATE_REF, body).await?;
        let mut r = Reader::new(&resp);
        Ok(Ref::Net {
            server: addr.server,
            key: r.u64()?,
            len,
        })
    }

    /// Map a reference into this process's DM address space. Table II:
    /// `map_ref(ref)`.
    pub async fn map_ref(&self, r: &Ref) -> DmResult<RemoteAddr> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        let pid = self.pid_at(*server);
        let body = Writer::new().pid(pid).u64(*key).finish();
        let resp = self.request(*server, req::MAP_REF, body).await?;
        let mut rd = Reader::new(&resp);
        let va = rd.u64()?;
        let _len = rd.u64()?;
        Ok(RemoteAddr {
            server: *server,
            pid,
            va,
        })
    }

    /// Fast path: write `data` into a freshly-allocated region and create a
    /// shared reference in one round trip (DESIGN.md §6 optimization).
    pub async fn write_create_ref(&self, addr: RemoteAddr, data: &Bytes) -> DmResult<Ref> {
        let body = Writer::new()
            .pid(addr.pid)
            .u64(addr.va)
            .bytes(data)
            .finish();
        let resp = self
            .request(addr.server, req::WRITE_CREATE_REF, body)
            .await?;
        let mut r = Reader::new(&resp);
        Ok(Ref::Net {
            server: addr.server,
            key: r.u64()?,
            len: data.len() as u64,
        })
    }

    /// Fast path: publish `data` as a new reference in one round trip
    /// (round-robin across the pool; no creator mapping to free).
    pub async fn put_ref(&self, data: &Bytes) -> DmResult<Ref> {
        let idx = self.next_rr.get() % self.servers.len();
        self.next_rr.set(idx + 1);
        let server = DmServerId(idx as u8);
        let resp = self.request(server, req::PUT_REF, data.clone()).await?;
        let mut r = Reader::new(&resp);
        Ok(Ref::Net {
            server,
            key: r.u64()?,
            len: data.len() as u64,
        })
    }

    /// Fast path: read `len` bytes at `off` of a reference without mapping.
    pub async fn read_ref(&self, r: &Ref, off: u64, len: u64) -> DmResult<Bytes> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        let body = Writer::new().u64(*key).u64(off).u64(len).finish();
        self.request(*server, req::READ_REF, body).await
    }

    /// Release a reference (API extension; see DESIGN.md §6).
    pub async fn release_ref(&self, r: &Ref) -> DmResult<()> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        let body = Writer::new().u64(*key).finish();
        self.request(*server, req::RELEASE_REF, body).await?;
        Ok(())
    }
}

impl Drop for DmNetClient {
    fn drop(&mut self) {
        // Stop the lease-renewal task; the servers will reclaim this
        // process's pins after the TTL (a graceful client frees them
        // explicitly before dropping).
        self.alive.set(false);
    }
}
