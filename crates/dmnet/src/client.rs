//! Client-side DM library (the "DM lib" of paper §VI-A).
//!
//! Provides the Table-II API — `ralloc`, `rfree`, `create_ref`, `map_ref`,
//! `rread`, `rwrite` (the latter two are specific to DmRPC-net) — by talking
//! the [`crate::proto`] protocol to a pool of DM servers. Allocation
//! requests are spread round-robin across the pool (paper §VI-A: "its
//! allocation request would be forwarded to one of the memory servers in a
//! round-robin manner").
//!
//! [`DmNetClient::connect_with`] additionally layers the DESIGN.md §9
//! translation/ref cache and control-op coalescer over the wire protocol:
//! repeat `read_ref`/`map_ref` of a live ref are served locally, and small
//! control ops (`release_ref`, deferred mapping frees) ride a single
//! [`req::BATCH`] message per flush window. [`DmNetClient::connect`] keeps
//! both off, preserving the raw one-op-one-RPC behavior.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{DmError, DmResult, DmServerId, GlobalPid, Ref, RemoteAddr};
use rpclib::{Backoff, Rpc};
use simcore::sync::Semaphore;
use simnet::Addr;

use crate::cache::{CacheConfig, CacheStats, ClientCache, FreeAction};
use crate::proto::{self, req, split_response, Reader, Routed, Writer};
use crate::shard::{HashRing, ShardConfig, GKEY_BIT};

/// Queued control ops per server before a flush is forced ahead of the
/// timer (bounds batch size and client-side queue memory).
const MAX_BATCH_OPS: usize = 64;

/// Client-side overload behavior (DESIGN.md §14): an optional token
/// limit bounding this process's concurrent DM wire ops, and a
/// backpressure-aware retry policy for the server's typed
/// [`DmError::Busy`] rejection. The default turns both off — a client
/// built with it behaves draw-for-draw like one built before overload
/// control existed (`Busy` then surfaces to the caller like any error).
#[derive(Clone, Copy, Debug)]
pub struct ClientLimitConfig {
    /// Max concurrent wire requests from this client (`None` = unlimited).
    /// Excess callers wait locally — backpressure instead of offered load.
    pub max_inflight: Option<u64>,
    /// How many times a `Busy` rejection is retried (with backoff) before
    /// surfacing to the caller. 0 = never retry.
    pub busy_retries: u32,
    /// First retry wait; doubles per attempt (the PR 2 backoff schedule,
    /// via [`rpclib::Backoff`]).
    pub busy_backoff: Duration,
    /// Backoff saturation.
    pub busy_backoff_cap: Duration,
}

impl Default for ClientLimitConfig {
    fn default() -> Self {
        ClientLimitConfig {
            max_inflight: None,
            busy_retries: 0,
            busy_backoff: Duration::from_micros(20),
            busy_backoff_cap: Duration::from_micros(640),
        }
    }
}

impl ClientLimitConfig {
    /// A sensible "on" policy for overload experiments: bounded client
    /// concurrency plus three backed-off retries.
    pub fn enabled() -> ClientLimitConfig {
        ClientLimitConfig {
            max_inflight: Some(64),
            busy_retries: 3,
            ..ClientLimitConfig::default()
        }
    }
}

/// Client-side shard router (DESIGN.md §13). Present only on clients built
/// with [`DmNetClient::connect_sharded`]: `put_ref` then mints global keys
/// and places them by consistent hashing, and every gkey-named op resolves
/// its target locally — relocation cache first (learned from redirect
/// chases, so tombstone chains collapse to one hop), ring second.
struct ShardRouter {
    ring: RefCell<HashRing>,
    /// gkey → observed home, learned by chasing redirects. Entries drop
    /// when the gkey answers at its ring home again or is released.
    reloc: RefCell<HashMap<u64, DmServerId>>,
    next_gkey: Cell<u32>,
    redirects_chased: Cell<u64>,
    /// This client's fabric address, baked into every minted gkey so two
    /// clients can never mint the same key.
    node: u32,
    port: u16,
}

impl ShardRouter {
    /// Mint a fresh globally-unique key: bit 63, 15 bits of node, 16 bits
    /// of port, 32 bits of counter.
    fn mint(&self) -> u64 {
        let c = self.next_gkey.get();
        self.next_gkey.set(c + 1);
        GKEY_BIT | ((self.node as u64) << 48) | ((self.port as u64) << 32) | c as u64
    }
}

/// Handle to the DM pool for one process.
///
/// The same server list (in the same order) must be used by every client in
/// the simulation: [`DmServerId`]s inside [`RemoteAddr`]s and [`Ref`]s index
/// into it.
pub struct DmNetClient {
    rpc: Rc<Rpc>,
    servers: Vec<Addr>,
    pids: Vec<GlobalPid>,
    next_rr: Cell<usize>,
    /// Lease TTL granted by the pool (`None` when the servers do not grant
    /// leases). When set, a background task renews every lease at TTL/3.
    lease_ttl: Option<Duration>,
    /// Shared liveness flag: cleared on drop or simulated crash, which
    /// stops the renewal task and any pending batch flush.
    alive: Rc<Cell<bool>>,
    cache: Rc<ClientCache>,
    /// Sharded placement (DESIGN.md §13), present only on clients built
    /// with [`DmNetClient::connect_sharded`].
    router: Option<ShardRouter>,
    /// Overload behavior (DESIGN.md §14).
    limit: ClientLimitConfig,
    /// Token pool bounding concurrent wire ops, when `limit.max_inflight`
    /// is set.
    tokens: Option<Semaphore>,
    /// `Busy` rejections absorbed by the retry loop (observability).
    busy_retried: Cell<u64>,
}

impl DmNetClient {
    /// Register this process with every DM server in the pool, with the
    /// client cache and coalescer off ([`CacheConfig::default`]).
    pub async fn connect(rpc: Rc<Rpc>, servers: Vec<Addr>) -> DmResult<DmNetClient> {
        DmNetClient::connect_with(rpc, servers, CacheConfig::default()).await
    }

    /// Register this process with every DM server in the pool. If the
    /// servers grant leases, a background task renews them until the client
    /// is dropped or [`DmNetClient::simulate_crash`] is called. `cache`
    /// selects the DESIGN.md §9 caching/batching behavior.
    pub async fn connect_with(
        rpc: Rc<Rpc>,
        servers: Vec<Addr>,
        cache: CacheConfig,
    ) -> DmResult<DmNetClient> {
        DmNetClient::connect_limited(rpc, servers, cache, ClientLimitConfig::default()).await
    }

    /// [`DmNetClient::connect_with`] plus client-side overload behavior
    /// (DESIGN.md §14): a token pool bounding this process's concurrent
    /// wire ops and a backed-off retry loop for typed `Busy` rejections.
    pub async fn connect_limited(
        rpc: Rc<Rpc>,
        servers: Vec<Addr>,
        cache: CacheConfig,
        limit: ClientLimitConfig,
    ) -> DmResult<DmNetClient> {
        assert!(!servers.is_empty(), "DM pool must have at least one server");
        let cache = Rc::new(ClientCache::new(servers.len(), cache));
        let mut pids = Vec::with_capacity(servers.len());
        let mut lease_ttl = None;
        for (i, &s) in servers.iter().enumerate() {
            cache.count_wire(req::REGISTER);
            let resp = rpc
                .call(s, req::REGISTER, Bytes::new())
                .await
                .map_err(|_| DmError::Transport)?;
            let (epoch, body) = split_response(&resp);
            cache.observe_epoch(i, epoch);
            let body = body?;
            // Coherent servers append a version trailer to every ok
            // response (n = 0 here: REGISTER touches no refs).
            let body = if cache.config().fine_grained {
                proto::split_versions(&body)?.0
            } else {
                body
            };
            let mut r = Reader::new(&body);
            pids.push(r.pid()?);
            if let Ok(ns) = r.u64() {
                lease_ttl = Some(Duration::from_nanos(ns));
            }
        }
        let alive = Rc::new(Cell::new(true));
        if cache.config().fine_grained {
            // Targeted invalidation push (DESIGN.md §15): a coherent server
            // that bumps a ref's version sends `[key u64][ver u64]` to every
            // read-lease holder. Folding the version drops exactly the named
            // key's cached entries; everything else keeps serving.
            let cache_h = cache.clone();
            let servers_h = servers.clone();
            let pids_h = pids.clone();
            let rpc_h = rpc.clone();
            let alive_h = alive.clone();
            let window = cache.config().flush_window;
            rpc.register(req::INVALIDATE, move |ctx| {
                let cache = cache_h.clone();
                let servers = servers_h.clone();
                let pids = pids_h.clone();
                let rpc = rpc_h.clone();
                let alive = alive_h.clone();
                async move {
                    let mut r = Reader::new(&ctx.payload);
                    if let (Ok(key), Ok(ver)) = (r.u64(), r.u64()) {
                        let idx = servers
                            .iter()
                            .position(|a| a.node.0 == ctx.src.node.0 && a.port == ctx.src.port);
                        if let Some(idx) = idx {
                            // An invalidated idle mapping becomes a queued
                            // free; drain it on the usual flush window.
                            if cache.observe_version(idx, key, ver, true) && alive.get() {
                                let addr = servers[idx];
                                let pid = pids[idx];
                                simcore::spawn(async move {
                                    loop {
                                        simcore::sleep(window).await;
                                        flush_batch(&rpc, &cache, &alive, idx, addr, pid).await;
                                        if !alive.get() || !cache.has_pending(idx) {
                                            return;
                                        }
                                    }
                                });
                            }
                        }
                    }
                    Bytes::new()
                }
            });
        }
        if let Some(ttl) = lease_ttl {
            // One renewal task per server: a renewal stalled on a crashed
            // server (waiting out the retry budget) must not delay the
            // renewals that keep the healthy servers' leases alive.
            for (i, &s) in servers.iter().enumerate() {
                let rpc = rpc.clone();
                let pid = pids[i];
                let alive = alive.clone();
                simcore::spawn(async move {
                    // Renew well inside the TTL so one lost renewal (or a
                    // short partition) does not expire the lease.
                    let period = ttl / 3;
                    loop {
                        simcore::sleep(period).await;
                        if !alive.get() {
                            return;
                        }
                        let body = Writer::new().pid(pid).finish();
                        let _ = rpc.call(s, req::RENEW_LEASE, body).await;
                        if !alive.get() {
                            return;
                        }
                    }
                });
            }
        }
        Ok(DmNetClient {
            rpc,
            servers,
            pids,
            next_rr: Cell::new(0),
            lease_ttl,
            alive,
            cache,
            router: None,
            limit,
            tokens: limit.max_inflight.map(Semaphore::new),
            busy_retried: Cell::new(0),
        })
    }

    /// [`DmNetClient::connect_with`] plus the shard router: `put_ref`
    /// places refs by consistent hashing over the pool (ring derived from
    /// `seed`, so every client and every run agree), and gkey-named ops
    /// chase migration redirects transparently.
    pub async fn connect_sharded(
        rpc: Rc<Rpc>,
        servers: Vec<Addr>,
        cache: CacheConfig,
        shard: ShardConfig,
        seed: u64,
    ) -> DmResult<DmNetClient> {
        DmNetClient::connect_sharded_limited(
            rpc,
            servers,
            cache,
            shard,
            seed,
            ClientLimitConfig::default(),
        )
        .await
    }

    /// [`DmNetClient::connect_sharded`] with client-side overload
    /// behavior (DESIGN.md §14).
    pub async fn connect_sharded_limited(
        rpc: Rc<Rpc>,
        servers: Vec<Addr>,
        cache: CacheConfig,
        shard: ShardConfig,
        seed: u64,
        limit: ClientLimitConfig,
    ) -> DmResult<DmNetClient> {
        let n = servers.len();
        let mut client = DmNetClient::connect_limited(rpc, servers, cache, limit).await?;
        let addr = client.rpc.addr();
        assert!(addr.node.0 < (1 << 15), "gkey node space is 15 bits");
        client.router = Some(ShardRouter {
            ring: RefCell::new(HashRing::new(n, shard, seed)),
            reloc: RefCell::new(HashMap::new()),
            next_gkey: Cell::new(0),
            redirects_chased: Cell::new(0),
            node: addr.node.0,
            port: addr.port,
        });
        Ok(client)
    }

    /// Whether this client routes `put_ref` through the shard ring.
    pub fn is_sharded(&self) -> bool {
        self.router.is_some()
    }

    /// Redirect hops this client chased (sharded clients only).
    pub fn redirects_chased(&self) -> u64 {
        self.router.as_ref().map_or(0, |r| r.redirects_chased.get())
    }

    /// The lease TTL granted by the pool, if any.
    pub fn lease_ttl(&self) -> Option<Duration> {
        self.lease_ttl
    }

    /// Chaos hook: fail-stop this client. Lease renewal ceases and the
    /// underlying RPC endpoint goes silent, so the servers reclaim every
    /// pin of this process once its lease expires. Queued control ops are
    /// lost with the process, like any unsent traffic.
    pub fn simulate_crash(&self) {
        self.alive.set(false);
        self.rpc.set_offline(true);
    }

    /// The DM server addresses this client uses.
    pub fn servers(&self) -> &[Addr] {
        &self.servers
    }

    /// Cache hit/miss/invalidation and batching counters (DESIGN.md §9).
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The cache configuration this client was connected with.
    pub fn cache_config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// Wire messages sent for request type `ty` (includes batched
    /// envelopes under [`req::BATCH`], not their folded sub-ops).
    pub fn wire_count(&self, ty: u8) -> u64 {
        self.cache.wire_count(ty)
    }

    /// Total (control-plane, data-plane) wire messages sent by this
    /// client, classified by [`proto::is_control`].
    pub fn wire_messages(&self) -> (u64, u64) {
        self.cache.wire_totals()
    }

    fn server_addr(&self, id: DmServerId) -> DmResult<Addr> {
        self.servers
            .get(id.0 as usize)
            .copied()
            .ok_or(DmError::InvalidAddress)
    }

    fn pid_at(&self, id: DmServerId) -> GlobalPid {
        self.pids[id.0 as usize]
    }

    /// `Busy` rejections this client absorbed by retrying (0 unless a
    /// [`ClientLimitConfig`] with retries is installed).
    pub fn busy_retried(&self) -> u64 {
        self.busy_retried.get()
    }

    /// Fresh backoff for one op's `Busy`-retry loop (the PR 2 schedule).
    fn busy_backoff(&self) -> Backoff {
        Backoff::new(self.limit.busy_backoff, self.limit.busy_backoff_cap)
    }

    /// Send one wire request and fold the piggybacked invalidation epoch
    /// into the cache. Returns the epoch alongside the decoded result so
    /// fill paths can stamp entries with the epoch their bytes were read
    /// under. Wraps the raw send in the client-side overload behavior:
    /// token acquisition (when a concurrency limit is installed) and a
    /// backed-off retry of typed `Busy` rejections. With the default
    /// (off) config neither path touches an await point or RNG, so the
    /// schedule is identical to the raw send.
    async fn request_ep(&self, server: DmServerId, ty: u8, body: Bytes) -> (u64, DmResult<Bytes>) {
        let _token = match &self.tokens {
            Some(sem) => Some(sem.acquire_one().await),
            None => None,
        };
        let mut backoff = self.busy_backoff();
        let mut retries_left = self.limit.busy_retries;
        loop {
            let (epoch, result) = self.request_ep_raw(server, ty, body.clone()).await;
            match result {
                Err(DmError::Busy) if retries_left > 0 => {
                    retries_left -= 1;
                    self.busy_retried.set(self.busy_retried.get() + 1);
                    simcore::sleep(backoff.next_wait()).await;
                }
                _ => return (epoch, result),
            }
        }
    }

    async fn request_ep_raw(
        &self,
        server: DmServerId,
        ty: u8,
        body: Bytes,
    ) -> (u64, DmResult<Bytes>) {
        let addr = match self.server_addr(server) {
            Ok(a) => a,
            Err(e) => return (0, Err(e)),
        };
        self.cache.count_wire(ty);
        let resp = match self.rpc.call(addr, ty, body).await {
            Ok(r) => r,
            Err(_) => return (0, Err(DmError::Transport)),
        };
        let (epoch, result) = split_response(&resp);
        if self.cache.observe_epoch(server.0 as usize, epoch) {
            self.schedule_flush(server);
        }
        let result = match result {
            Ok(body) => self.fold_versions(server, body),
            e => e,
        };
        (epoch, result)
    }

    /// Strip the per-ref version trailer a coherent server appends to every
    /// ok response and fold each `(key, version)` into the cache, dropping
    /// any entry the trailer proves stale. No-op (and no copy) for clients
    /// connected without [`CacheConfig::fine_grained`].
    fn fold_versions(&self, server: DmServerId, body: Bytes) -> DmResult<Bytes> {
        if !self.cache.config().fine_grained {
            return Ok(body);
        }
        let (body, touched) = proto::split_versions(&body)?;
        let idx = server.0 as usize;
        let mut needs_flush = false;
        for (key, ver) in touched {
            needs_flush |= self.cache.observe_version(idx, key, ver, false);
        }
        if needs_flush {
            self.schedule_flush(server);
        }
        Ok(body)
    }

    async fn request(&self, server: DmServerId, ty: u8, body: Bytes) -> DmResult<Bytes> {
        self.request_ep(server, ty, body).await.1
    }

    /// Current target for `gkey`: relocation cache first (a chased
    /// redirect), ring placement second.
    fn route_gkey(&self, gkey: u64) -> DmServerId {
        let router = self.router.as_ref().expect("gkey routing without router");
        if let Some(&s) = router.reloc.borrow().get(&gkey) {
            return s;
        }
        router.ring.borrow().route(gkey)
    }

    fn addr_to_server(&self, node: u32, port: u16) -> Option<DmServerId> {
        self.servers
            .iter()
            .position(|a| a.node.0 == node && a.port == port)
            .map(|i| DmServerId(i as u8))
    }

    /// Send a gkey-named request, chasing `Moved` redirects. Each hop
    /// follows a tombstone laid by a distinct migration and updates the
    /// relocation cache, so the next op on the same gkey goes direct; the
    /// chase is bounded by the pool size (a tombstone chain cannot revisit
    /// a server without the gkey having answered there).
    async fn request_routed(&self, gkey: u64, ty: u8, body: Bytes) -> (u64, DmResult<Bytes>) {
        let _token = match &self.tokens {
            Some(sem) => Some(sem.acquire_one().await),
            None => None,
        };
        let mut backoff = self.busy_backoff();
        let mut retries_left = self.limit.busy_retries;
        loop {
            let (epoch, result) = self.request_routed_raw(gkey, ty, body.clone()).await;
            match result {
                Err(DmError::Busy) if retries_left > 0 => {
                    retries_left -= 1;
                    self.busy_retried.set(self.busy_retried.get() + 1);
                    // Re-resolve the route after the wait: the gkey may
                    // have migrated while the server was saturated.
                    simcore::sleep(backoff.next_wait()).await;
                }
                _ => return (epoch, result),
            }
        }
    }

    async fn request_routed_raw(&self, gkey: u64, ty: u8, body: Bytes) -> (u64, DmResult<Bytes>) {
        let mut server = self.route_gkey(gkey);
        for _ in 0..self.servers.len() + 1 {
            let addr = match self.server_addr(server) {
                Ok(a) => a,
                Err(e) => return (0, Err(e)),
            };
            self.cache.count_wire(ty);
            let resp = match self.rpc.call(addr, ty, body.clone()).await {
                Ok(r) => r,
                Err(_) => return (0, Err(DmError::Transport)),
            };
            let (epoch, routed) = proto::split_response_routed(&resp);
            if self.cache.observe_epoch(server.0 as usize, epoch) {
                self.schedule_flush(server);
            }
            let router = self.router.as_ref().expect("routed request without router");
            match routed {
                Routed::Ok(b) => {
                    let b = match self.fold_versions(server, b) {
                        Ok(b) => b,
                        Err(e) => return (epoch, Err(e)),
                    };
                    // Remember an off-ring home; forget a stale entry the
                    // moment the gkey answers at its ring home again.
                    if router.ring.borrow().route(gkey) != server {
                        router.reloc.borrow_mut().insert(gkey, server);
                    } else {
                        router.reloc.borrow_mut().remove(&gkey);
                    }
                    return (epoch, Ok(b));
                }
                Routed::Moved { node, port } => {
                    let Some(next) = self.addr_to_server(node, port) else {
                        return (epoch, Err(DmError::InvalidAddress));
                    };
                    // The tombstone proves the gkey left this server: its
                    // cached bytes/mappings under this index are orphaned
                    // (the general epoch sweep would only reap them after
                    // an unrelated bump). Drop them now so a future
                    // migration back cannot resurrect pre-move bytes.
                    if self.cache.config().enabled
                        && self.cache.invalidate_key(server.0 as usize, gkey)
                    {
                        self.schedule_flush(server);
                    }
                    router
                        .redirects_chased
                        .set(router.redirects_chased.get() + 1);
                    router.reloc.borrow_mut().insert(gkey, next);
                    server = next;
                }
                Routed::Err(e) => return (epoch, Err(e)),
            }
        }
        (0, Err(DmError::InvalidRef))
    }

    /// Spawn the bounded-window flush timer for `server`'s queued control
    /// ops (DESIGN.md §9). Called whenever an enqueue reports no timer is
    /// pending.
    fn schedule_flush(&self, server: DmServerId) {
        let idx = server.0 as usize;
        let rpc = self.rpc.clone();
        let cache = self.cache.clone();
        let alive = self.alive.clone();
        let addr = self.servers[idx];
        let pid = self.pids[idx];
        let window = self.cache.config().flush_window;
        simcore::spawn(async move {
            loop {
                simcore::sleep(window).await;
                flush_batch(&rpc, &cache, &alive, idx, addr, pid).await;
                // The flush response's epoch may have turned deferred
                // mapping releases into queued frees; drain those too.
                if !alive.get() || !cache.has_pending(idx) {
                    return;
                }
            }
        });
    }

    /// Flush `server`'s queued control ops now (ahead of the timer).
    async fn flush_server(&self, server: DmServerId) {
        let idx = server.0 as usize;
        flush_batch(
            &self.rpc,
            &self.cache,
            &self.alive,
            idx,
            self.servers[idx],
            self.pids[idx],
        )
        .await;
        if self.cache.has_pending(idx) {
            self.schedule_flush(server);
        }
    }

    /// Program-order fence: a synchronous request that names a queued
    /// ref key must not overtake the queued op.
    async fn flush_if_pending_key(&self, server: DmServerId, key: u64) {
        if self.cache.pending_names_key(server.0 as usize, key) {
            self.flush_server(server).await;
        }
    }

    /// Program-order fence for requests naming a region with a queued free.
    async fn flush_if_pending_va(&self, server: DmServerId, va: u64) {
        if self.cache.pending_names_va(server.0 as usize, va) {
            self.flush_server(server).await;
        }
    }

    /// Flush every queued control op and release every deferred mapping,
    /// returning the client to a no-hidden-state condition (all its pins
    /// and pages are visible server-side). Tests and graceful teardown use
    /// this before asserting server-side invariants.
    pub async fn flush_cache(&self) {
        for i in 0..self.servers.len() {
            let server = DmServerId(i as u8);
            self.cache.purge_deferred(i);
            while self.cache.has_pending(i) {
                self.flush_server(server).await;
            }
        }
    }

    /// Allocate `len` bytes of disaggregated memory (round-robin across the
    /// pool). Table II: `ralloc(size)`.
    pub async fn ralloc(&self, len: u64) -> DmResult<RemoteAddr> {
        let idx = self.next_rr.get() % self.servers.len();
        self.next_rr.set(idx + 1);
        let server = DmServerId(idx as u8);
        let pid = self.pid_at(server);
        let body = Writer::new().pid(pid).u64(len).finish();
        let resp = self.request(server, req::ALLOC, body).await?;
        let mut r = Reader::new(&resp);
        Ok(RemoteAddr {
            server,
            pid,
            va: r.u64()?,
        })
    }

    /// Deallocate a region. Table II: `rfree(remote_addr)`.
    ///
    /// Freeing this client's own clean mapping of a ref defers the release
    /// (the mapping is kept for reuse by the next `map_ref` of the same
    /// key); the real free is sent when the entry is invalidated or
    /// [`DmNetClient::flush_cache`] runs.
    pub async fn rfree(&self, addr: RemoteAddr) -> DmResult<()> {
        let idx = addr.server.0 as usize;
        self.flush_if_pending_va(addr.server, addr.va).await;
        if self.cache.config().enabled {
            match self.cache.on_rfree(idx, addr.va) {
                FreeAction::Deferred => return Ok(()),
                // Double free of a deferred mapping: fail locally exactly
                // as the server would.
                FreeAction::AlreadyFreed => return Err(DmError::InvalidAddress),
                FreeAction::PassThrough => {}
            }
        }
        let body = Writer::new().pid(addr.pid).u64(addr.va).finish();
        self.request(addr.server, req::FREE, body).await?;
        Ok(())
    }

    /// Write `data` to DM at `addr`. Table II: `rwrite`.
    pub async fn rwrite(&self, addr: RemoteAddr, data: &Bytes) -> DmResult<()> {
        self.flush_if_pending_va(addr.server, addr.va).await;
        if self.cache.config().enabled {
            // A written-through mapping may COW-diverge from its ref; it
            // must never be handed back by a cached `map_ref`.
            self.cache.mark_dirty(addr.server.0 as usize, addr.va);
        }
        let body = Writer::new()
            .pid(addr.pid)
            .u64(addr.va)
            .bytes(data)
            .finish();
        self.request(addr.server, req::WRITE, body).await?;
        Ok(())
    }

    /// Read `len` bytes of DM from `addr`. Table II: `rread`.
    pub async fn rread(&self, addr: RemoteAddr, len: u64) -> DmResult<Bytes> {
        self.flush_if_pending_va(addr.server, addr.va).await;
        let body = Writer::new().pid(addr.pid).u64(addr.va).u64(len).finish();
        self.request(addr.server, req::READ, body).await
    }

    /// Create a shared reference to `[addr, addr+len)`. Table II:
    /// `create_ref(remote_addr, size)`.
    pub async fn create_ref(&self, addr: RemoteAddr, len: u64) -> DmResult<Ref> {
        self.flush_if_pending_va(addr.server, addr.va).await;
        let body = Writer::new().pid(addr.pid).u64(addr.va).u64(len).finish();
        let resp = self.request(addr.server, req::CREATE_REF, body).await?;
        let mut r = Reader::new(&resp);
        Ok(Ref::Net {
            server: addr.server,
            key: r.u64()?,
            len,
        })
    }

    /// Map a reference into this process's DM address space. Table II:
    /// `map_ref(ref)`. A back-to-back re-map of a ref this client already
    /// mapped (and cleanly freed) is served from the cache without a round
    /// trip.
    pub async fn map_ref(&self, r: &Ref) -> DmResult<RemoteAddr> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        if self.router.is_some() && *key & GKEY_BIT != 0 {
            let gkey = *key;
            let target = self.route_gkey(gkey);
            let pid = self.pid_at(target);
            self.flush_if_pending_key(target, gkey).await;
            if self.cache.config().enabled {
                if let Some((va, _len)) = self.cache.take_mapping(target.0 as usize, gkey) {
                    return Ok(RemoteAddr {
                        server: target,
                        pid,
                        va,
                    });
                }
            }
            let body = Writer::new().pid(pid).u64(gkey).finish();
            let (epoch, res) = self.request_routed(gkey, req::MAP_REF, body).await;
            let resp = res?;
            let mut rd = Reader::new(&resp);
            let va = rd.u64()?;
            let len = rd.u64()?;
            // The mapping lives on whichever server answered (the
            // post-chase home); the RemoteAddr must name it so rread /
            // rfree go there directly.
            let home = self.route_gkey(gkey);
            if self.cache.config().enabled {
                self.cache
                    .note_mapping(home.0 as usize, gkey, va, len, epoch);
            }
            return Ok(RemoteAddr {
                server: home,
                pid: self.pid_at(home),
                va,
            });
        }
        let idx = server.0 as usize;
        let pid = self.pid_at(*server);
        self.flush_if_pending_key(*server, *key).await;
        if self.cache.config().enabled {
            if let Some((va, _len)) = self.cache.take_mapping(idx, *key) {
                return Ok(RemoteAddr {
                    server: *server,
                    pid,
                    va,
                });
            }
        }
        let body = Writer::new().pid(pid).u64(*key).finish();
        let (epoch, res) = self.request_ep(*server, req::MAP_REF, body).await;
        let resp = res?;
        let mut rd = Reader::new(&resp);
        let va = rd.u64()?;
        let len = rd.u64()?;
        if self.cache.config().enabled {
            self.cache.note_mapping(idx, *key, va, len, epoch);
        }
        Ok(RemoteAddr {
            server: *server,
            pid,
            va,
        })
    }

    /// Fast path: write `data` into a freshly-allocated region and create a
    /// shared reference in one round trip (DESIGN.md §6 optimization).
    pub async fn write_create_ref(&self, addr: RemoteAddr, data: &Bytes) -> DmResult<Ref> {
        self.flush_if_pending_va(addr.server, addr.va).await;
        let body = Writer::new()
            .pid(addr.pid)
            .u64(addr.va)
            .bytes(data)
            .finish();
        let (epoch, res) = self
            .request_ep(addr.server, req::WRITE_CREATE_REF, body)
            .await;
        let resp = res?;
        let mut r = Reader::new(&resp);
        let key = r.u64()?;
        if self.cache.config().enabled {
            // The publisher knows the ref's (immutable) bytes; cache them.
            self.cache
                .fill_data(addr.server.0 as usize, key, epoch, data.clone());
        }
        Ok(Ref::Net {
            server: addr.server,
            key,
            len: data.len() as u64,
        })
    }

    /// Fast path: publish `data` as a new reference in one round trip.
    /// Unsharded clients spread refs round-robin across the pool; sharded
    /// clients mint a global key and place it by consistent hashing, so
    /// every client agrees on the ref's home without coordination.
    pub async fn put_ref(&self, data: &Bytes) -> DmResult<Ref> {
        if let Some(router) = &self.router {
            let gkey = router.mint();
            let body = Writer::new().u64(gkey).bytes(data).finish();
            let (epoch, res) = self.request_routed(gkey, req::PUT_REF_AT, body).await;
            res?;
            let server = self.route_gkey(gkey);
            if self.cache.config().enabled {
                self.cache
                    .fill_data(server.0 as usize, gkey, epoch, data.clone());
            }
            return Ok(Ref::Net {
                server,
                key: gkey,
                len: data.len() as u64,
            });
        }
        let idx = self.next_rr.get() % self.servers.len();
        self.next_rr.set(idx + 1);
        let server = DmServerId(idx as u8);
        let (epoch, res) = self.request_ep(server, req::PUT_REF, data.clone()).await;
        let resp = res?;
        let mut r = Reader::new(&resp);
        let key = r.u64()?;
        if self.cache.config().enabled {
            // Write-allocate: the publisher knows the ref's bytes.
            self.cache.fill_data(idx, key, epoch, data.clone());
        }
        Ok(Ref::Net {
            server,
            key,
            len: data.len() as u64,
        })
    }

    /// Fast path: read `len` bytes at `off` of a reference without mapping.
    /// Served from the client cache when a fresh entry covers the range.
    pub async fn read_ref(&self, r: &Ref, off: u64, len: u64) -> DmResult<Bytes> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        if self.router.is_some() && *key & GKEY_BIT != 0 {
            let gkey = *key;
            let target = self.route_gkey(gkey);
            self.flush_if_pending_key(target, gkey).await;
            if self.cache.config().enabled {
                if let Some(bytes) = self.cache.lookup_data(target.0 as usize, gkey, off, len) {
                    return Ok(bytes);
                }
            }
            let body = Writer::new().u64(gkey).u64(off).u64(len).finish();
            let (epoch, res) = self.request_routed(gkey, req::READ_REF, body).await;
            if self.cache.config().enabled && off == 0 {
                if let Ok(bytes) = &res {
                    // Fill under the post-chase home so the next read hits.
                    let home = self.route_gkey(gkey).0 as usize;
                    self.cache.fill_data(home, gkey, epoch, bytes.clone());
                }
            }
            return res;
        }
        let idx = server.0 as usize;
        self.flush_if_pending_key(*server, *key).await;
        if self.cache.config().enabled {
            if let Some(bytes) = self.cache.lookup_data(idx, *key, off, len) {
                return Ok(bytes);
            }
        }
        let body = Writer::new().u64(*key).u64(off).u64(len).finish();
        let (epoch, res) = self.request_ep(*server, req::READ_REF, body).await;
        if self.cache.config().enabled && off == 0 {
            if let Ok(bytes) = &res {
                self.cache.fill_data(idx, *key, epoch, bytes.clone());
            }
        }
        res
    }

    /// Release a reference (API extension; see DESIGN.md §6). With
    /// batching on, the release is queued and folded into the next
    /// coalesced [`req::BATCH`] message (bounded by the flush window); the
    /// local cache entries for the key are dropped immediately.
    pub async fn release_ref(&self, r: &Ref) -> DmResult<()> {
        let Ref::Net { server, key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        if self.router.is_some() && *key & GKEY_BIT != 0 {
            let gkey = *key;
            let target = self.route_gkey(gkey);
            if self.cache.config().enabled && self.cache.invalidate_key(target.0 as usize, gkey) {
                self.schedule_flush(target);
            }
            // Gkey releases never ride the batch coalescer: a batched slot
            // is fire-and-forget, so a `Moved` redirect laid down by a
            // concurrent migration would be dropped silently and the ref
            // leaked. The synchronous path chases redirects like any other
            // gkey op.
            let body = Writer::new().u64(gkey).finish();
            let (_, res) = self.request_routed(gkey, req::RELEASE_REF, body).await;
            res?;
            if let Some(router) = &self.router {
                router.reloc.borrow_mut().remove(&gkey);
            }
            return Ok(());
        }
        let idx = server.0 as usize;
        if self.cache.config().enabled && self.cache.invalidate_key(idx, *key) {
            self.schedule_flush(*server);
        }
        let body = Writer::new().u64(*key).finish();
        if self.cache.config().batching {
            if self.cache.pending_len(idx) >= MAX_BATCH_OPS {
                self.flush_server(*server).await;
            }
            if self
                .cache
                .enqueue(idx, req::RELEASE_REF, body, Some(*key), None)
            {
                self.schedule_flush(*server);
            }
            // Fire-and-forget, like `DmRpc::release_async`: a failed
            // release of an already-dead ref is reported per-slot in the
            // batch response and dropped.
            return Ok(());
        }
        self.flush_if_pending_key(*server, *key).await;
        self.request(*server, req::RELEASE_REF, body).await?;
        Ok(())
    }

    /// Migrate a gkey-bound ref to `dst` (sharded clients only): the
    /// current home transfers the pages server-to-server, releases its
    /// copy and leaves a redirect tombstone; other clients chase one hop,
    /// and this client's relocation cache learns the new home immediately.
    pub async fn migrate_ref(&self, r: &Ref, dst: DmServerId) -> DmResult<()> {
        let router = self.router.as_ref().ok_or(DmError::InvalidRef)?;
        let Ref::Net { key, .. } = r else {
            return Err(DmError::InvalidRef);
        };
        if *key & GKEY_BIT == 0 {
            return Err(DmError::InvalidRef);
        }
        let dst_addr = self.server_addr(dst)?;
        let body = Writer::new()
            .u64(*key)
            .u32(dst_addr.node.0)
            .u32(dst_addr.port as u32)
            .finish();
        let (_, res) = self.request_routed(*key, req::MIGRATE, body).await;
        res?;
        router.reloc.borrow_mut().insert(*key, dst);
        Ok(())
    }
}

/// Drain and send one coalesced [`req::BATCH`] for server `idx`. Deferred
/// mapping frees are queued by the cache as bare-va markers (the cache
/// layer does not know pids); they are framed into real `FREE` bodies
/// here. Sub-op failures are reported per-slot by the server and dropped,
/// matching the fire-and-forget contract of the batched ops.
async fn flush_batch(
    rpc: &Rc<Rpc>,
    cache: &Rc<ClientCache>,
    alive: &Rc<Cell<bool>>,
    idx: usize,
    addr: Addr,
    pid: GlobalPid,
) {
    let ops = cache.drain(idx);
    if ops.is_empty() || !alive.get() {
        return;
    }
    let ops: Vec<(u8, Bytes, Option<telemetry::TraceCtx>)> = ops
        .into_iter()
        .map(|(ty, body, ctx)| {
            if ty == req::FREE {
                let va = crate::cache::read_free_marker(&body);
                (ty, Writer::new().pid(pid).u64(va).finish(), ctx)
            } else {
                (ty, body, ctx)
            }
        })
        .collect();
    cache.count_wire(req::BATCH);
    cache.note_batch(ops.len());
    let body = proto::encode_batch_traced(&ops);
    let Ok(resp) = rpc.call(addr, req::BATCH, body).await else {
        return;
    };
    let (epoch, _results) = split_response(&resp);
    cache.observe_epoch(idx, epoch);
}

impl Drop for DmNetClient {
    fn drop(&mut self) {
        // Stop the lease-renewal task; the servers will reclaim this
        // process's pins after the TTL (a graceful client frees them
        // explicitly before dropping). Queued control ops die with the
        // client for the same reason.
        self.alive.set(false);
    }
}
