//! Client-side translation/ref cache and control-op coalescer
//! (DESIGN.md §9).
//!
//! COW makes a live ref's bytes immutable: every write goes through a
//! `(pid, va)` translation and copies first whenever the ref still pins the
//! page, and a ref without any mapping cannot be written at all. So a
//! client may cache both a ref's bytes (`read_ref`) and its own idle
//! mapping of a ref (`map_ref`) and reuse them without a round trip — the
//! only hazard is a ref that has *died* (released explicitly or reclaimed
//! with its owner's lease). The server therefore piggybacks an
//! *invalidation epoch* on every response, advanced on each ref-releasing
//! event; entries are only served while their fill epoch equals the latest
//! epoch this client has observed from that server. A stale entry can thus
//! never serve bytes that diverge from what the ref held while it was
//! alive; at worst a read that raced a foreign release returns the ref's
//! final bytes instead of `InvalidRef`, exactly the race an uncached
//! client loses to in-flight.
//!
//! The coalescer queues small control ops (`release_ref`, deferred
//! mapping frees) per server and folds them into one [`req::BATCH`] wire
//! message within a bounded flush window. Any synchronous request that
//! names a queued key or region flushes first, preserving program order.
//!
//! **Fine-grained mode** (DESIGN.md §15) replaces the all-or-nothing
//! epoch with per-ref versions: responses from a coherence-enabled server
//! piggyback `(key, version)` pairs for the refs they touched, and the
//! server pushes targeted [`req::INVALIDATE`] messages to clients whose
//! cached copy of a ref just died. Entries are stamped with the version
//! known at fill time plus a bounded *read lease*; a serve requires the
//! entry's version to be at least the latest known version of its key
//! **and** the lease to be unexpired, so an invalidation lost to the
//! network can delay eviction only until the lease runs out — and even
//! then the stale entry can only hold the dead ref's final (immutable)
//! bytes, never diverged ones.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use dmcommon::GlobalPid;
use telemetry::TraceCtx;

use crate::proto::req;

/// Highest request-type value tracked by the per-type wire counters.
const MAX_REQ: usize = req::INVALIDATE as usize + 1;

/// Known-version entries kept per server in fine-grained mode (FIFO).
/// A forgotten entry is re-learned from the next trailer or push for the
/// key; forgetting can only delay an invalidation until the entry's read
/// lease expires, never serve diverged bytes.
const KNOWN_MAX: usize = 1024;

/// Tuning for the client-side cache and coalescer. The default disables
/// both, keeping a raw [`crate::DmNetClient`]'s wire behavior identical to
/// the pre-cache client; [`CacheConfig::all_on`] is what the cluster layer
/// uses for DmRPC-net.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Cache ref bytes and idle ref mappings client-side.
    pub enabled: bool,
    /// Coalesce control ops into batched wire messages.
    pub batching: bool,
    /// How long queued control ops may wait for company before a batch is
    /// flushed (virtual time).
    pub flush_window: Duration,
    /// Ref-data entries kept per server (FIFO eviction).
    pub max_entries: usize,
    /// Per-ref coherence: fold piggybacked `(key, version)` trailers and
    /// targeted [`req::INVALIDATE`] pushes instead of relying on the
    /// global epoch alone. Must match the server's `coherence` setting
    /// (the trailer changes the ok-response wire format).
    pub fine_grained: bool,
    /// How long a fine-grained data entry may be served without hearing
    /// from the server (virtual time). Bounds the staleness window when a
    /// targeted invalidation is lost.
    pub read_lease: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            batching: false,
            flush_window: Duration::from_micros(10),
            max_entries: 256,
            fine_grained: false,
            read_lease: Duration::from_micros(50),
        }
    }
}

impl CacheConfig {
    /// Caching and batching both on (the DmRPC-net cluster default).
    pub fn all_on() -> CacheConfig {
        CacheConfig {
            enabled: true,
            batching: true,
            ..CacheConfig::default()
        }
    }

    /// Everything on plus per-ref coherence (requires a server started
    /// with `coherence: Some(..)`).
    pub fn fine_grained() -> CacheConfig {
        CacheConfig {
            fine_grained: true,
            ..CacheConfig::all_on()
        }
    }
}

/// Cache observability counters ([`crate::translator::Translator`]-style),
/// fed into the bench report by `xtra_rtt_budget`.
#[derive(Default)]
pub struct CacheStats {
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidations: Cell<u64>,
    batched_ops: Cell<u64>,
    batches: Cell<u64>,
    targeted_inv: Cell<u64>,
    broadcast_inv: Cell<u64>,
}

impl CacheStats {
    /// Lookups served without a round trip (data reads + mapping reuses).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that went to the wire.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries dropped by epoch advances or local releases.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.get()
    }

    /// Control ops that rode a coalesced batch instead of their own RPC.
    pub fn batched_ops(&self) -> u64 {
        self.batched_ops.get()
    }

    /// Batch wire messages sent.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Targeted invalidation pushes received (fine-grained mode).
    pub fn targeted_inv(&self) -> u64 {
        self.targeted_inv.get()
    }

    /// Epoch advances observed while in fine-grained mode (the server's
    /// broadcast fallback, e.g. directory overflow or restart).
    pub fn broadcast_inv(&self) -> u64 {
        self.broadcast_inv.get()
    }
}

/// A cached prefix of a ref's bytes (always starting at offset 0).
struct DataEntry {
    epoch: u64,
    bytes: Bytes,
    /// Version of the ref known when the entry was filled (fine-grained
    /// mode; 0 when the key's version has never been reported).
    ver: u64,
    /// Serve deadline (fine-grained mode only; `None` otherwise).
    leased_until: Option<simcore::SimTime>,
}

/// This client's own mapping of a ref, tracked for sequential reuse: after
/// the app frees a *clean* mapping the release is deferred and the mapping
/// handed back on the next `map_ref` of the same key without a round trip.
struct MapEntry {
    va: u64,
    len: u64,
    epoch: u64,
    /// Version of the ref known when the mapping was noted (fine-grained
    /// mode; 0 otherwise).
    ver: u64,
    /// The app currently holds this mapping (not reusable).
    in_use: bool,
    /// Written through since mapped; a dirty mapping is never reused (its
    /// pages may have COW-diverged from the ref) and its free is not
    /// deferred.
    dirty: bool,
}

/// What the client should do with an `rfree` aimed at a tracked mapping.
pub(crate) enum FreeAction {
    /// Clean idle-able mapping: release deferred, no wire op.
    Deferred,
    /// The va matches a mapping the app already freed: the double free
    /// fails locally exactly as the server would fail it.
    AlreadyFreed,
    /// Untracked (or dirty / epoch-stale) mapping: send the wire free.
    PassThrough,
}

#[derive(Default)]
struct ServerCache {
    /// Latest invalidation epoch observed from this server.
    epoch: Cell<u64>,
    data: RefCell<HashMap<u64, DataEntry>>,
    /// Insertion order of `data` keys (FIFO eviction).
    data_order: RefCell<VecDeque<u64>>,
    /// Tracked mappings by ref key (BTreeMap: drain order must be
    /// deterministic).
    maps: RefCell<BTreeMap<u64, MapEntry>>,
    /// Coalescer queue: framed control ops awaiting a flush, each with
    /// the trace context of the request that enqueued it (if sampled).
    pending: RefCell<Vec<(u8, Bytes, Option<TraceCtx>)>>,
    /// Ref keys named by queued ops (conflict detection).
    pending_keys: RefCell<BTreeSet<u64>>,
    /// Regions named by queued ops (conflict detection).
    pending_vas: RefCell<BTreeSet<(u32, u64)>>,
    /// A flush timer is already scheduled for this server.
    flush_scheduled: Cell<bool>,
    /// Latest per-ref versions reported by this server (fine-grained
    /// mode), FIFO-bounded by [`KNOWN_MAX`].
    known: RefCell<HashMap<u64, u64>>,
    /// Insertion order of `known` keys.
    known_order: RefCell<VecDeque<u64>>,
}

impl ServerCache {
    /// Latest version this client has heard for `key` (0 if never).
    fn known_ver(&self, key: u64) -> u64 {
        self.known.borrow().get(&key).copied().unwrap_or(0)
    }
}

/// Per-client cache state: one [`ServerCache`] per DM server plus shared
/// configuration, cache counters and wire-message counters.
pub(crate) struct ClientCache {
    config: CacheConfig,
    servers: Vec<ServerCache>,
    stats: CacheStats,
    wire: RefCell<[u64; MAX_REQ]>,
}

impl ClientCache {
    pub(crate) fn new(n_servers: usize, config: CacheConfig) -> ClientCache {
        ClientCache {
            config,
            servers: (0..n_servers).map(|_| ServerCache::default()).collect(),
            stats: CacheStats::default(),
            wire: RefCell::new([0; MAX_REQ]),
        }
    }

    pub(crate) fn config(&self) -> &CacheConfig {
        &self.config
    }

    pub(crate) fn stats(&self) -> &CacheStats {
        &self.stats
    }

    // -- wire accounting -----------------------------------------------------

    /// Count one outgoing wire message of `ty`.
    pub(crate) fn count_wire(&self, ty: u8) {
        self.wire.borrow_mut()[ty as usize] += 1;
    }

    pub(crate) fn wire_count(&self, ty: u8) -> u64 {
        self.wire.borrow()[ty as usize]
    }

    /// (control-plane, data-plane) wire messages sent so far.
    pub(crate) fn wire_totals(&self) -> (u64, u64) {
        let w = self.wire.borrow();
        let mut control = 0;
        let mut data = 0;
        for (ty, &n) in w.iter().enumerate() {
            if crate::proto::is_control(ty as u8) {
                control += n;
            } else {
                data += n;
            }
        }
        (control, data)
    }

    // -- epochs --------------------------------------------------------------

    /// Fold a response's piggybacked epoch in. An advance invalidates every
    /// cached entry filled before it; idle deferred mappings are enqueued
    /// for their real frees (their pins must not outlive the entry).
    /// Returns true if the caller should (re)schedule a flush.
    pub(crate) fn observe_epoch(&self, idx: usize, epoch: u64) -> bool {
        let s = &self.servers[idx];
        if epoch <= s.epoch.get() {
            return false;
        }
        s.epoch.set(epoch);
        if self.config.fine_grained {
            // In fine-grained mode an epoch advance is the server's
            // broadcast fallback (directory overflow or restart).
            self.stats
                .broadcast_inv
                .set(self.stats.broadcast_inv.get() + 1);
        }
        let dropped = s.data.borrow().len();
        s.data.borrow_mut().clear();
        s.data_order.borrow_mut().clear();
        let mut invalidated = dropped as u64;
        let mut needs_flush = false;
        // Idle mappings filled under an older epoch are no longer
        // reusable; turn their deferred releases into queued wire frees.
        let mut maps = s.maps.borrow_mut();
        let stale: Vec<u64> = maps
            .iter()
            .filter(|&(_, e)| !e.in_use && e.epoch < epoch)
            .map(|(&k, _)| k)
            .collect();
        for key in stale {
            let e = maps.remove(&key).expect("key collected above");
            invalidated += 1;
            needs_flush |= self.queue_free_locked(s, e.va);
        }
        self.stats
            .invalidations
            .set(self.stats.invalidations.get() + invalidated);
        needs_flush
    }

    // -- per-ref versions (fine-grained mode) --------------------------------

    /// Fold a `(key, version)` report in — from a response trailer
    /// (`targeted == false`) or a server invalidation push
    /// (`targeted == true`). A version advance drops the key's stale data
    /// entry and turns its stale idle mapping's deferred release into a
    /// queued wire free. Returns true if the caller should schedule a
    /// flush. No-op unless fine-grained mode is on.
    pub(crate) fn observe_version(&self, idx: usize, key: u64, ver: u64, targeted: bool) -> bool {
        if !self.config.fine_grained {
            return false;
        }
        if targeted {
            self.stats
                .targeted_inv
                .set(self.stats.targeted_inv.get() + 1);
        }
        let s = &self.servers[idx];
        if ver <= s.known_ver(key) {
            return false;
        }
        {
            let mut known = s.known.borrow_mut();
            if known.insert(key, ver).is_none() {
                let mut order = s.known_order.borrow_mut();
                order.push_back(key);
                while known.len() > KNOWN_MAX {
                    let oldest = order.pop_front().expect("order tracks known");
                    known.remove(&oldest);
                }
            }
        }
        let mut invalidated = 0u64;
        let stale_data = matches!(s.data.borrow().get(&key), Some(e) if e.ver < ver);
        if stale_data {
            s.data.borrow_mut().remove(&key);
            s.data_order.borrow_mut().retain(|&k| k != key);
            invalidated += 1;
        }
        let mut needs_flush = false;
        let idle_stale = matches!(s.maps.borrow().get(&key), Some(e) if !e.in_use && e.ver < ver);
        if idle_stale {
            let e = s.maps.borrow_mut().remove(&key).expect("checked above");
            invalidated += 1;
            needs_flush = self.queue_free_locked(s, e.va);
        }
        if invalidated > 0 {
            self.stats
                .invalidations
                .set(self.stats.invalidations.get() + invalidated);
        }
        needs_flush
    }

    // -- ref data ------------------------------------------------------------

    /// Serve `[off, off+len)` of `key` from cache, if a fresh entry covers
    /// it.
    pub(crate) fn lookup_data(&self, idx: usize, key: u64, off: u64, len: u64) -> Option<Bytes> {
        let s = &self.servers[idx];
        // Fine-grained freshness: the entry's fill-time version must still
        // be current and its read lease unexpired.
        let fg = self.config.fine_grained;
        let stale = fg
            && matches!(s.data.borrow().get(&key), Some(e) if e.ver < s.known_ver(key)
                || e.leased_until.is_some_and(|t| t <= simcore::now()));
        if stale {
            s.data.borrow_mut().remove(&key);
            s.data_order.borrow_mut().retain(|&k| k != key);
            self.stats
                .invalidations
                .set(self.stats.invalidations.get() + 1);
        }
        let data = s.data.borrow();
        let hit = data.get(&key).and_then(|e| {
            let covered = e.epoch == s.epoch.get() && off + len <= e.bytes.len() as u64;
            covered.then(|| e.bytes.slice(off as usize..(off + len) as usize))
        });
        match &hit {
            Some(_) => self.stats.hits.set(self.stats.hits.get() + 1),
            None => self.stats.misses.set(self.stats.misses.get() + 1),
        }
        hit
    }

    /// Cache `bytes` as the prefix of `key`, filled under `resp_epoch` (the
    /// epoch piggybacked on the response that produced the bytes). A fill
    /// from before the latest observed epoch is discarded.
    pub(crate) fn fill_data(&self, idx: usize, key: u64, resp_epoch: u64, bytes: Bytes) {
        let s = &self.servers[idx];
        if resp_epoch < s.epoch.get() {
            return;
        }
        // Stamp the version known *now*: the response's trailer was folded
        // into `known` before this fill (synchronously, no await between),
        // so an entry can never outrank what its own response reported.
        let (ver, leased_until) = if self.config.fine_grained {
            (
                s.known_ver(key),
                Some(simcore::now() + self.config.read_lease),
            )
        } else {
            (0, None)
        };
        let mut data = s.data.borrow_mut();
        let mut order = s.data_order.borrow_mut();
        if data
            .insert(
                key,
                DataEntry {
                    epoch: resp_epoch,
                    bytes,
                    ver,
                    leased_until,
                },
            )
            .is_none()
        {
            order.push_back(key);
        }
        while data.len() > self.config.max_entries {
            let oldest = order.pop_front().expect("order tracks data");
            data.remove(&oldest);
        }
    }

    /// Drop everything cached under `key` (the client is releasing it).
    /// Returns true if the caller should schedule a flush.
    pub(crate) fn invalidate_key(&self, idx: usize, key: u64) -> bool {
        let s = &self.servers[idx];
        let mut invalidated = 0;
        if s.data.borrow_mut().remove(&key).is_some() {
            s.data_order.borrow_mut().retain(|&k| k != key);
            invalidated += 1;
        }
        let mut needs_flush = false;
        let idle = matches!(s.maps.borrow().get(&key), Some(e) if !e.in_use);
        if idle {
            let e = s.maps.borrow_mut().remove(&key).expect("checked above");
            invalidated += 1;
            needs_flush = self.queue_free_locked(s, e.va);
        }
        self.stats
            .invalidations
            .set(self.stats.invalidations.get() + invalidated);
        needs_flush
    }

    // -- mappings ------------------------------------------------------------

    /// Reuse this client's idle, clean, epoch-fresh mapping of `key`.
    pub(crate) fn take_mapping(&self, idx: usize, key: u64) -> Option<(u64, u64)> {
        let s = &self.servers[idx];
        let mut maps = s.maps.borrow_mut();
        // Mappings are real server-side pins, so unlike data entries they
        // need no read lease: a reused mapping of a dead ref still holds
        // its (immutable) pages. Version-gate them anyway so a known-dead
        // ref's mapping is not handed back.
        let reusable = matches!(
            maps.get(&key),
            Some(e) if !e.in_use && !e.dirty && e.epoch == s.epoch.get()
                && (!self.config.fine_grained || e.ver >= s.known_ver(key))
        );
        if reusable {
            let e = maps.get_mut(&key).expect("checked above");
            e.in_use = true;
            self.stats.hits.set(self.stats.hits.get() + 1);
            Some((e.va, e.len))
        } else {
            self.stats.misses.set(self.stats.misses.get() + 1);
            None
        }
    }

    /// Track a fresh server-side mapping of `key`. A key whose previous
    /// mapping the app still holds is left untracked: two live mappings of
    /// one ref must stay distinct (COW isolation between them).
    pub(crate) fn note_mapping(&self, idx: usize, key: u64, va: u64, len: u64, resp_epoch: u64) {
        let s = &self.servers[idx];
        let mut maps = s.maps.borrow_mut();
        if maps.contains_key(&key) {
            return;
        }
        maps.insert(
            key,
            MapEntry {
                va,
                len,
                epoch: resp_epoch.max(s.epoch.get()),
                ver: if self.config.fine_grained {
                    s.known_ver(key)
                } else {
                    0
                },
                in_use: true,
                dirty: false,
            },
        );
    }

    /// Note a write through `va`: a tracked mapping containing it becomes
    /// dirty (its pages may COW-diverge from the ref, so it is never
    /// reused).
    pub(crate) fn mark_dirty(&self, idx: usize, va: u64) {
        let mut maps = self.servers[idx].maps.borrow_mut();
        if let Some(e) = maps.values_mut().find(|e| e.va <= va && va < e.va + e.len) {
            e.dirty = true;
        }
    }

    /// Decide how an `rfree(va)` interacts with tracked mappings.
    pub(crate) fn on_rfree(&self, idx: usize, va: u64) -> FreeAction {
        let s = &self.servers[idx];
        let mut maps = s.maps.borrow_mut();
        let Some((&key, e)) = maps.iter_mut().find(|(_, e)| e.va == va) else {
            return FreeAction::PassThrough;
        };
        if !e.in_use {
            return FreeAction::AlreadyFreed;
        }
        if !e.dirty
            && e.epoch == s.epoch.get()
            && (!self.config.fine_grained || e.ver >= s.known_ver(key))
        {
            e.in_use = false;
            return FreeAction::Deferred;
        }
        maps.remove(&key);
        FreeAction::PassThrough
    }

    /// Remove every deferred (idle) mapping, queueing their real frees.
    /// Returns true if the caller should flush. Used by
    /// [`crate::DmNetClient::flush_cache`].
    pub(crate) fn purge_deferred(&self, idx: usize) -> bool {
        let s = &self.servers[idx];
        let mut maps = s.maps.borrow_mut();
        let idle: Vec<u64> = maps
            .iter()
            .filter(|&(_, e)| !e.in_use)
            .map(|(&k, _)| k)
            .collect();
        let mut needs_flush = false;
        for key in idle {
            let e = maps.remove(&key).expect("key collected above");
            needs_flush |= self.queue_free_locked(s, e.va);
        }
        needs_flush
    }

    // -- coalescer -----------------------------------------------------------

    /// Queue a framed control op. Returns true if the caller should
    /// schedule a flush timer (none is pending yet).
    pub(crate) fn enqueue(
        &self,
        idx: usize,
        ty: u8,
        body: Bytes,
        key: Option<u64>,
        region: Option<(GlobalPid, u64)>,
    ) -> bool {
        let s = &self.servers[idx];
        // Captured here, not at flush: the flush timer task has no trace
        // context, but the request that queued the op does.
        s.pending
            .borrow_mut()
            .push((ty, body, telemetry::current_ctx()));
        if let Some(k) = key {
            s.pending_keys.borrow_mut().insert(k);
        }
        if let Some((pid, va)) = region {
            s.pending_vas.borrow_mut().insert((pid.0, va));
        }
        self.stats.batched_ops.set(self.stats.batched_ops.get() + 1);
        !s.flush_scheduled.replace(true)
    }

    /// Queue a deferred-mapping free (pid is filled by the client when the
    /// batch is encoded — the cache does not know pids). Returns true if a
    /// flush should be scheduled.
    fn queue_free_locked(&self, s: &ServerCache, va: u64) -> bool {
        // The pid placeholder is resolved by the client before encoding;
        // see `DmNetClient::frame_free`. To keep the cache self-contained
        // we store the va and let the client frame the body.
        s.pending
            .borrow_mut()
            .push((req::FREE, free_marker(va), telemetry::current_ctx()));
        s.pending_vas.borrow_mut().insert((u32::MAX, va));
        self.stats.batched_ops.set(self.stats.batched_ops.get() + 1);
        !s.flush_scheduled.replace(true)
    }

    /// Take the queued ops for `idx`, clearing conflict sets and the
    /// flush-scheduled flag.
    pub(crate) fn drain(&self, idx: usize) -> Vec<(u8, Bytes, Option<TraceCtx>)> {
        let s = &self.servers[idx];
        s.flush_scheduled.set(false);
        s.pending_keys.borrow_mut().clear();
        s.pending_vas.borrow_mut().clear();
        std::mem::take(&mut *s.pending.borrow_mut())
    }

    pub(crate) fn has_pending(&self, idx: usize) -> bool {
        !self.servers[idx].pending.borrow().is_empty()
    }

    pub(crate) fn pending_len(&self, idx: usize) -> usize {
        self.servers[idx].pending.borrow().len()
    }

    /// Whether a queued op names `key`.
    pub(crate) fn pending_names_key(&self, idx: usize, key: u64) -> bool {
        self.servers[idx].pending_keys.borrow().contains(&key)
    }

    /// Whether a queued op names the region at `va` (any pid).
    pub(crate) fn pending_names_va(&self, idx: usize, va: u64) -> bool {
        self.servers[idx]
            .pending_vas
            .borrow()
            .iter()
            .any(|&(_, v)| v == va)
    }

    /// Count one flushed batch of `ops` ops.
    pub(crate) fn note_batch(&self, ops: usize) {
        self.stats.batches.set(self.stats.batches.get() + 1);
        // The ops themselves were counted at enqueue; nothing more here —
        // the batch envelope is counted via `count_wire(req::BATCH)`.
        let _ = ops;
    }
}

/// Marker body for a deferred free queued before the client frames the
/// real `[pid][va]` body (the cache layer does not know pids).
fn free_marker(va: u64) -> Bytes {
    Bytes::from(va.to_le_bytes().to_vec())
}

/// Decode a [`free_marker`] body back into its va.
pub(crate) fn read_free_marker(body: &Bytes) -> u64 {
    u64::from_le_bytes(body[..8].try_into().expect("marker is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(max_entries: usize) -> ClientCache {
        ClientCache::new(
            1,
            CacheConfig {
                enabled: true,
                batching: true,
                max_entries,
                ..CacheConfig::default()
            },
        )
    }

    #[test]
    fn data_fifo_eviction() {
        let c = cache(2);
        c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
        c.fill_data(0, 2, 0, Bytes::from_static(b"b"));
        c.fill_data(0, 3, 0, Bytes::from_static(b"c"));
        assert!(c.lookup_data(0, 1, 0, 1).is_none(), "oldest evicted");
        assert_eq!(c.lookup_data(0, 2, 0, 1).unwrap(), Bytes::from_static(b"b"));
        assert_eq!(c.lookup_data(0, 3, 0, 1).unwrap(), Bytes::from_static(b"c"));
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn epoch_advance_invalidates_everything() {
        let c = cache(8);
        c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
        assert!(c.lookup_data(0, 1, 0, 1).is_some());
        assert!(!c.observe_epoch(0, 3), "no deferred mappings to free");
        assert!(c.lookup_data(0, 1, 0, 1).is_none());
        assert_eq!(c.stats().invalidations(), 1);
        // A late fill from before the advance is discarded.
        c.fill_data(0, 2, 1, Bytes::from_static(b"old"));
        assert!(c.lookup_data(0, 2, 0, 3).is_none());
        // A fill at the current epoch sticks.
        c.fill_data(0, 2, 3, Bytes::from_static(b"new"));
        assert!(c.lookup_data(0, 2, 0, 3).is_some());
    }

    #[test]
    fn partial_reads_served_from_prefix() {
        let c = cache(8);
        c.fill_data(0, 7, 0, Bytes::from_static(b"abcdef"));
        assert_eq!(
            c.lookup_data(0, 7, 2, 3).unwrap(),
            Bytes::from_static(b"cde")
        );
        assert!(c.lookup_data(0, 7, 4, 4).is_none(), "beyond cached prefix");
    }

    #[test]
    fn mapping_defer_and_reuse_state_machine() {
        let c = cache(8);
        c.note_mapping(0, 9, 0x1000, 4096, 0);
        // In use: a second map of the same key is not served from cache.
        assert!(c.take_mapping(0, 9).is_none());
        // Clean free defers; the next map reuses without a round trip.
        assert!(matches!(c.on_rfree(0, 0x1000), FreeAction::Deferred));
        assert!(matches!(c.on_rfree(0, 0x1000), FreeAction::AlreadyFreed));
        assert_eq!(c.take_mapping(0, 9), Some((0x1000, 4096)));
        // Dirty mappings are never deferred.
        c.mark_dirty(0, 0x1000 + 64);
        assert!(matches!(c.on_rfree(0, 0x1000), FreeAction::PassThrough));
        assert!(
            c.take_mapping(0, 9).is_none(),
            "entry dropped with the free"
        );
    }

    #[test]
    fn epoch_advance_frees_deferred_mappings() {
        let c = cache(8);
        c.note_mapping(0, 9, 0x1000, 4096, 0);
        assert!(matches!(c.on_rfree(0, 0x1000), FreeAction::Deferred));
        // The advance must queue the real free and ask for a flush.
        assert!(c.observe_epoch(0, 1));
        assert!(c.take_mapping(0, 9).is_none());
        let ops = c.drain(0);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, req::FREE);
        assert_eq!(read_free_marker(&ops[0].1), 0x1000);
    }

    #[test]
    fn conflict_sets_track_queued_ops() {
        let c = cache(8);
        assert!(c.enqueue(0, req::RELEASE_REF, Bytes::new(), Some(5), None));
        assert!(
            !c.enqueue(0, req::RELEASE_REF, Bytes::new(), Some(6), None),
            "flush already scheduled"
        );
        assert!(c.pending_names_key(0, 5));
        assert!(c.pending_names_key(0, 6));
        assert!(!c.pending_names_key(0, 7));
        assert_eq!(c.drain(0).len(), 2);
        assert!(!c.pending_names_key(0, 5), "drain clears conflicts");
        assert!(!c.has_pending(0));
    }

    fn fg_cache() -> ClientCache {
        ClientCache::new(1, CacheConfig::fine_grained())
    }

    #[test]
    fn version_advance_drops_only_the_named_key() {
        let sim = simcore::Sim::new();
        sim.block_on(async {
            let c = fg_cache();
            c.observe_version(0, 1, 1, false);
            c.observe_version(0, 2, 1, false);
            c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
            c.fill_data(0, 2, 0, Bytes::from_static(b"b"));
            assert!(!c.observe_version(0, 1, 2, true), "no mapping to free");
            assert!(c.lookup_data(0, 1, 0, 1).is_none(), "stale key dropped");
            assert!(c.lookup_data(0, 2, 0, 1).is_some(), "unrelated key kept");
            assert_eq!(c.stats().targeted_inv(), 1);
            assert_eq!(c.stats().broadcast_inv(), 0);
            // Replayed/reordered push for an older version is a no-op.
            c.observe_version(0, 2, 1, true);
            assert!(c.lookup_data(0, 2, 0, 1).is_some());
        });
    }

    #[test]
    fn read_lease_expiry_stops_serving() {
        let sim = simcore::Sim::new();
        sim.block_on(async {
            let c = fg_cache();
            c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
            assert!(c.lookup_data(0, 1, 0, 1).is_some());
            simcore::sleep(CacheConfig::default().read_lease * 2).await;
            assert!(c.lookup_data(0, 1, 0, 1).is_none(), "lease expired");
            // A refill re-arms the lease.
            c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
            assert!(c.lookup_data(0, 1, 0, 1).is_some());
        });
    }

    #[test]
    fn version_advance_reclaims_stale_idle_mapping() {
        let sim = simcore::Sim::new();
        sim.block_on(async {
            let c = fg_cache();
            c.observe_version(0, 9, 1, false);
            c.note_mapping(0, 9, 0x1000, 4096, 0);
            assert!(matches!(c.on_rfree(0, 0x1000), FreeAction::Deferred));
            assert!(c.observe_version(0, 9, 2, true), "queues the real free");
            assert!(c.take_mapping(0, 9).is_none());
            let ops = c.drain(0);
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].0, req::FREE);
            assert_eq!(read_free_marker(&ops[0].1), 0x1000);
        });
    }

    #[test]
    fn epoch_advance_counts_as_broadcast_in_fine_grained_mode() {
        let sim = simcore::Sim::new();
        sim.block_on(async {
            let c = fg_cache();
            c.fill_data(0, 1, 0, Bytes::from_static(b"a"));
            c.observe_epoch(0, 1);
            assert_eq!(c.stats().broadcast_inv(), 1);
            assert!(c.lookup_data(0, 1, 0, 1).is_none());
        });
    }
}
