//! Consistent-hash placement for the sharded DM plane (DESIGN.md §13).
//!
//! A [`HashRing`] places client-minted *global ref keys* (gkeys) across N
//! DM servers: each server contributes [`ShardConfig::vnodes`] points on a
//! u64 ring, every point a pure hash of `(seed, server, vnode)`, and a
//! gkey homes at the first point clockwise of its own hash. The ring is a
//! pure function of `(n_servers, vnodes, seed)` — every client in a
//! simulation builds bit-identical rings with no coordination, and two
//! runs with the same seed place every ref identically (the determinism
//! contract of the whole simulator).
//!
//! Virtual nodes give the classic stability property: growing the pool
//! from N to N+1 servers re-homes only ~1/(N+1) of the keys (tested as a
//! ≤ 2/N oracle in `tests/shard.rs`), which is what makes ownership
//! migration (the MIGRATE protocol op) a rebalancing tool rather than a
//! full reshuffle.

use dmcommon::DmServerId;

/// Bit 63 of a ref key marks a *global* key minted by a sharded client.
/// Local keys tag their intra-server shard in the top 16 bits, but shard
/// counts never approach 2^15, so the bit is free (asserted at tag time).
pub const GKEY_BIT: u64 = 1 << 63;

/// Sharded-placement tuning (a field of `ClusterConfig`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Ring points per server. More points smooth placement and shrink
    /// the variance of the N→N+1 movement fraction.
    pub vnodes: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { vnodes: 64 }
    }
}

/// SplitMix64: the statistically solid 64-bit mixer used for both ring
/// points and key hashes. Pure and dependency-free, so every client and
/// every run agrees.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The consistent-hash ring: sorted `(point, server)` pairs plus the
/// topology epoch that client caches key their relocation entries under.
#[derive(Clone, Debug)]
pub struct HashRing {
    points: Vec<(u64, u8)>,
    n_servers: usize,
    vnodes: usize,
    seed: u64,
    epoch: u64,
}

impl HashRing {
    /// Build the ring for `n_servers` servers at topology epoch 0.
    pub fn new(n_servers: usize, config: ShardConfig, seed: u64) -> HashRing {
        HashRing::at_epoch(n_servers, config, seed, 0)
    }

    fn at_epoch(n_servers: usize, config: ShardConfig, seed: u64, epoch: u64) -> HashRing {
        assert!(n_servers >= 1, "ring needs at least one server");
        assert!(n_servers <= u8::MAX as usize + 1, "DmServerId is a u8");
        assert!(config.vnodes >= 1, "ring needs at least one vnode");
        let mut points = Vec::with_capacity(n_servers * config.vnodes);
        for server in 0..n_servers {
            for v in 0..config.vnodes {
                let point = mix64(
                    seed ^ ((server as u64) << 32 | v as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                points.push((point, server as u8));
            }
        }
        // Ties (astronomically rare) resolve by server id so every client
        // sorts identically.
        points.sort_unstable();
        HashRing {
            points,
            n_servers,
            vnodes: config.vnodes,
            seed,
            epoch,
        }
    }

    /// Home server of `key`: the first ring point clockwise of the key's
    /// hash (wrapping past the top of the u64 space).
    pub fn route(&self, key: u64) -> DmServerId {
        let h = mix64(key ^ self.seed);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, server) = self.points[idx % self.points.len()];
        DmServerId(server)
    }

    /// Topology epoch: bumps on every [`HashRing::grow`], invalidating
    /// relocation caches keyed to the old topology.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of servers on the ring.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The ring for the same pool grown by one server (epoch + 1). Only
    /// keys whose arc the new server's points claim re-home — ~1/(N+1)
    /// of them.
    pub fn grow(&self) -> HashRing {
        HashRing::at_epoch(
            self.n_servers + 1,
            ShardConfig {
                vnodes: self.vnodes,
            },
            self.seed,
            self.epoch + 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(4, ShardConfig::default(), 42);
        let b = HashRing::new(4, ShardConfig::default(), 42);
        for k in 0..10_000u64 {
            assert_eq!(a.route(k), b.route(k));
        }
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn different_seeds_place_differently() {
        let a = HashRing::new(4, ShardConfig::default(), 1);
        let b = HashRing::new(4, ShardConfig::default(), 2);
        let moved = (0..10_000u64).filter(|&k| a.route(k) != b.route(k)).count();
        assert!(moved > 5_000, "seed must reshuffle placement ({moved})");
    }

    #[test]
    fn placement_covers_all_servers_roughly_evenly() {
        let ring = HashRing::new(8, ShardConfig::default(), 7);
        let mut counts = [0usize; 8];
        for k in 0..80_000u64 {
            counts[ring.route(k).0 as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Each server holds its fair share within a loose 2x band.
            assert!(c > 5_000 && c < 20_000, "server {i} holds {c}");
        }
    }

    #[test]
    fn grow_moves_a_small_fraction_and_bumps_epoch() {
        let ring = HashRing::new(8, ShardConfig::default(), 3);
        let grown = ring.grow();
        assert_eq!(grown.epoch(), ring.epoch() + 1);
        assert_eq!(grown.n_servers(), 9);
        let keys = 40_000u64;
        let moved = (0..keys)
            .filter(|&k| ring.route(k) != grown.route(k))
            .count();
        // Expected ~1/9; the oracle bound is 2/N = 1/4.
        assert!(
            (moved as f64) < keys as f64 * 2.0 / 8.0,
            "grow moved {moved}/{keys}"
        );
        // And everything that moved went to the new server.
        for k in 0..keys {
            if ring.route(k) != grown.route(k) {
                assert_eq!(grown.route(k), DmServerId(8));
            }
        }
    }

    #[test]
    fn mix64_reference_values() {
        // SplitMix64 known-answer vectors (seed 0 stream).
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
