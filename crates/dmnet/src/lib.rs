//! # dmnet — network-attached disaggregated memory (DmRPC-net's DM layer)
//!
//! Implements the paper's §V-A design: regular servers act as DM servers,
//! reachable over the (simulated) Ethernet fabric. Each DM server runs:
//!
//! * a **Page manager** ([`page_manager::PageManager`]): pinned pages in a
//!   FIFO free list, per-page refcounts, per-process VA allocation trees
//!   ([`va_tree::VaTree`]), and the `create_ref` key → pages map;
//! * an **Address translator** ([`translator::Translator`]): one in-memory
//!   hash table from DM virtual addresses to pinned pages;
//! * **centralized copy-on-write**: a write to a page with refcount > 1
//!   copies the page at the server and retargets the writer's translation.
//!
//! Compute-side processes use [`client::DmNetClient`], which exposes the
//! Table-II API (`ralloc`/`rfree`/`create_ref`/`map_ref`/`rread`/`rwrite`)
//! and routes requests to the owning server, spreading allocations
//! round-robin across the pool.
//!
//! End-to-end tests live at the bottom of this file; pure data-structure
//! tests live with their modules; property-based tests are in
//! `tests/proptest_dm.rs`.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod page_manager;
pub mod proto;
pub mod server;
pub mod shard;
pub mod translator;
pub mod wal;

/// Re-export of the shared VA-range allocator (lives in [`dmcommon`]).
pub use dmcommon::va_tree;

pub use admission::{Admission, AdmissionConfig};
pub use cache::{CacheConfig, CacheStats};
pub use client::{ClientLimitConfig, DmNetClient};
pub use page_manager::{OpCost, PageManager};
pub use server::{start_pool, CoherenceConfig, DmServer, DmServerConfig, RecoveryReport};
pub use shard::{HashRing, ShardConfig, GKEY_BIT};
pub use wal::{Record, Wal, WalConfig};

#[cfg(test)]
mod e2e_tests {
    use std::rc::Rc;

    use bytes::Bytes;
    use dmcommon::{CopyMode, DmError, Ref};
    use memsim::ModelParams;
    use rpclib::{Rpc, RpcBuilder};
    use simcore::Sim;
    use simnet::{FabricConfig, Network, NicConfig, NodeId};

    use super::*;

    struct Rig {
        sim: Sim,
        net: Network,
        params: ModelParams,
        dm_nodes: Vec<NodeId>,
        compute: Vec<NodeId>,
    }

    fn rig(n_dm: usize, n_compute: usize) -> Rig {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 11);
        let dm_nodes = (0..n_dm)
            .map(|i| net.add_node(format!("dm{i}"), NicConfig::default()))
            .collect();
        let compute = (0..n_compute)
            .map(|i| net.add_node(format!("c{i}"), NicConfig::default()))
            .collect();
        Rig {
            sim,
            net,
            params: ModelParams::new(),
            dm_nodes,
            compute,
        }
    }

    fn client_rpc(net: &Network, node: NodeId, port: u16) -> Rc<Rpc> {
        RpcBuilder::new(net, node, port).build()
    }

    #[test]
    fn alloc_write_read_free_over_network() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let rpc = client_rpc(&net, c0, 100);
            let dm = DmNetClient::connect(rpc, vec![servers[0].addr()])
                .await
                .unwrap();

            let addr = dm.ralloc(10_000).await.unwrap();
            let data = Bytes::from((0..10_000u32).map(|i| (i % 251) as u8).collect::<Vec<_>>());
            dm.rwrite(addr, &data).await.unwrap();
            let back = dm.rread(addr, 10_000).await.unwrap();
            assert_eq!(back, data);
            // Unaligned partial read.
            let part = dm.rread(addr.offset(4097), 100).await.unwrap();
            assert_eq!(&part[..], &data[4097..4197]);
            dm.rfree(addr).await.unwrap();
            assert_eq!(
                dm.rread(addr, 1).await.unwrap_err(),
                DmError::InvalidAddress
            );
            servers[0].with_page_manager(|pm| pm.check_invariants());
        });
    }

    #[test]
    fn pass_by_reference_between_two_processes() {
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let pool = vec![servers[0].addr()];
            let producer = DmNetClient::connect(client_rpc(&net, c0, 100), pool.clone())
                .await
                .unwrap();
            let consumer = DmNetClient::connect(client_rpc(&net, c1, 100), pool)
                .await
                .unwrap();

            let addr = producer.ralloc(8192).await.unwrap();
            let data = Bytes::from(vec![0x5A; 8192]);
            producer.rwrite(addr, &data).await.unwrap();
            let r = producer.create_ref(addr, 8192).await.unwrap();
            assert!(matches!(r, Ref::Net { .. }));
            assert_eq!(r.wire_bytes(), 18, "the Ref is small");
            // Producer can free its own mapping; the ref keeps data alive.
            producer.rfree(addr).await.unwrap();

            // Consumer (a different process on a different server) maps it.
            let caddr = consumer.map_ref(&r).await.unwrap();
            let back = consumer.rread(caddr, 8192).await.unwrap();
            assert_eq!(back, data);

            // Consumer writes one page: COW isolates it from the ref.
            consumer
                .rwrite(caddr, &Bytes::from(vec![0xA5; 10]))
                .await
                .unwrap();
            let again = consumer.rread(caddr, 10).await.unwrap();
            assert_eq!(&again[..], &[0xA5; 10]);

            // A second consumer mapping still sees the original bytes.
            let caddr2 = consumer.map_ref(&r).await.unwrap();
            let orig = consumer.rread(caddr2, 10).await.unwrap();
            assert_eq!(&orig[..], &[0x5A; 10]);

            consumer.rfree(caddr).await.unwrap();
            consumer.rfree(caddr2).await.unwrap();
            consumer.release_ref(&r).await.unwrap();
            servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                assert_eq!(pm.free_pages(), pm.capacity_pages(), "all pages reclaimed");
            });
        });
    }

    #[test]
    fn lease_expiry_reclaims_crashed_clients_pins() {
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let ttl = std::time::Duration::from_millis(2);
            let cfg = DmServerConfig {
                lease_ttl: Some(ttl),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let pool = vec![servers[0].addr()];
            let baseline = servers[0].free_pages_total();

            let doomed = DmNetClient::connect(client_rpc(&net, c0, 100), pool.clone())
                .await
                .unwrap();
            assert_eq!(doomed.lease_ttl(), Some(ttl));
            let survivor = DmNetClient::connect(client_rpc(&net, c1, 100), pool)
                .await
                .unwrap();

            // The doomed client pins pages three ways: a mapped region, a
            // shared ref it created, and a mapping of the survivor's ref.
            let addr = doomed.ralloc(8 * 4096).await.unwrap();
            doomed
                .rwrite(addr, &Bytes::from(vec![7u8; 8 * 4096]))
                .await
                .unwrap();
            let doomed_ref = doomed.create_ref(addr, 8 * 4096).await.unwrap();

            let s_addr = survivor.ralloc(4096).await.unwrap();
            survivor
                .rwrite(s_addr, &Bytes::from(vec![9u8; 4096]))
                .await
                .unwrap();
            let s_ref = survivor.create_ref(s_addr, 4096).await.unwrap();
            let mapped = doomed.map_ref(&s_ref).await.unwrap();
            doomed.rread(mapped, 4096).await.unwrap();

            assert!(servers[0].free_pages_total() < baseline);

            // Fail-stop: renewals cease, the endpoint goes dark.
            doomed.simulate_crash();

            // The survivor keeps renewing across several TTLs; only the
            // crashed process's lease may expire.
            simcore::sleep(5 * ttl).await;

            assert!(servers[0].leases_reclaimed() >= 1, "lease never expired");
            // The survivor's data is untouched by the reclamation.
            let back = survivor.rread(s_addr, 4096).await.unwrap();
            assert!(back.iter().all(|&b| b == 9));
            // The doomed process's ref is gone along with its pins.
            assert_eq!(
                survivor.read_ref(&doomed_ref, 0, 16).await.unwrap_err(),
                DmError::InvalidRef
            );

            // Once the survivor releases its own resources, the free list
            // returns to baseline: the crashed client leaked nothing.
            survivor.rfree(s_addr).await.unwrap();
            survivor.release_ref(&s_ref).await.unwrap();
            servers[0].check_invariants_all();
            assert_eq!(servers[0].free_pages_total(), baseline, "pages leaked");
            servers[0].shutdown(); // stops the lease sweeper
        });
    }

    #[test]
    fn server_restart_grants_lease_grace() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let ttl = std::time::Duration::from_millis(2);
            let cfg = DmServerConfig {
                lease_ttl: Some(ttl),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(4096).await.unwrap();
            dm.rwrite(addr, &Bytes::from(vec![1u8; 4096]))
                .await
                .unwrap();

            // Crash the server across more than a full TTL. The live
            // client's renewals are lost while the server is down, but
            // restart() grants a grace period instead of reclaiming.
            servers[0].crash();
            assert!(servers[0].is_crashed());
            simcore::sleep(2 * ttl).await;
            servers[0].restart();
            simcore::sleep(ttl / 2).await;

            assert_eq!(servers[0].leases_reclaimed(), 0, "live client reclaimed");
            let back = dm.rread(addr, 4096).await.unwrap();
            assert!(back.iter().all(|&b| b == 1));
            dm.rfree(addr).await.unwrap();
            servers[0].shutdown(); // stops the lease sweeper
        });
    }

    #[test]
    fn crash_cancels_sweeper_outright() {
        // Regression: crash() used to leave the sweeper task armed forever
        // on the dead replica (it skipped per-tick). It must cancel at its
        // next tick, and the restart paths must re-arm exactly one.
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let ttl = std::time::Duration::from_millis(2);
            let cfg = DmServerConfig {
                lease_ttl: Some(ttl),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            assert!(servers[0].sweeper_armed(), "sweeper armed at start");

            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(4096).await.unwrap();

            servers[0].crash();
            // Still armed until its next tick fires, then cancelled.
            simcore::sleep(2 * ttl).await;
            assert!(
                !servers[0].sweeper_armed(),
                "crash left the sweeper armed on a dead replica"
            );

            // Restart re-arms exactly one sweeper, which still works: a
            // client that crashes afterwards is reclaimed as usual.
            servers[0].restart();
            assert!(servers[0].sweeper_armed(), "restart must re-arm");
            servers[0].restart(); // idempotent: no second sweeper
            dm.rwrite(addr, &Bytes::from(vec![3u8; 16])).await.unwrap();
            dm.simulate_crash();
            simcore::sleep(5 * ttl).await;
            assert!(servers[0].leases_reclaimed() >= 1, "re-armed sweeper dead");
            servers[0].check_invariants_all();
            assert_eq!(
                servers[0].free_pages_total(),
                servers[0].capacity_pages_total()
            );
            servers[0].shutdown();
            simcore::sleep(2 * ttl).await;
            assert!(!servers[0].sweeper_armed(), "shutdown stops the sweeper");
        });
    }

    #[test]
    fn durable_server_recovers_exact_state_after_crash() {
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                durability: Some(WalConfig::zero_cost()),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let pool = vec![servers[0].addr()];
            let a = DmNetClient::connect(client_rpc(&net, c0, 100), pool.clone())
                .await
                .unwrap();
            let b = DmNetClient::connect(client_rpc(&net, c1, 100), pool)
                .await
                .unwrap();

            // Build up real state: mapped pages, a shared COW ref, a
            // diverged writer page, a released region.
            let addr = a.ralloc(3 * 4096).await.unwrap();
            let data = Bytes::from(
                (0..3 * 4096u32)
                    .map(|i| (i % 241) as u8)
                    .collect::<Vec<_>>(),
            );
            a.rwrite(addr, &data).await.unwrap();
            let shared = a.create_ref(addr, 2 * 4096).await.unwrap();
            let mapped = b.map_ref(&shared).await.unwrap();
            b.rwrite(mapped, &Bytes::from_static(b"diverge"))
                .await
                .unwrap();
            let gone = a.ralloc(4096).await.unwrap();
            a.rfree(gone).await.unwrap();

            let pre_digest = servers[0].pages_digest();
            let pre_epoch = servers[0].epoch();
            assert!(servers[0].wal().unwrap().records() > 0, "ops were logged");

            servers[0].crash();
            let report = servers[0].restart_from_log().await;
            assert!(!report.torn_tail);
            assert!(report.records_replayed > 0);
            assert_eq!(servers[0].recoveries(), 1);

            // Zero lost acknowledged ops, zero resurrected frees: the
            // memory plane is byte-identical to the pre-crash state.
            assert_eq!(servers[0].pages_digest(), pre_digest);
            assert!(
                servers[0].epoch() > pre_epoch,
                "epoch-after-restart must advance past everything clients saw"
            );
            servers[0].check_invariants_all();

            // Clients keep working against the recovered server: old data
            // readable, freed region still gone, new ops fine.
            assert_eq!(a.rread(addr, 3 * 4096).await.unwrap(), data);
            assert_eq!(&b.rread(mapped, 7).await.unwrap()[..], b"diverge");
            assert_eq!(
                a.rread(gone, 1).await.unwrap_err(),
                DmError::InvalidAddress,
                "resurrected free"
            );
            let post = a.ralloc(4096).await.unwrap();
            a.rwrite(post, &Bytes::from_static(b"after")).await.unwrap();
            assert_eq!(&a.rread(post, 5).await.unwrap()[..], b"after");
            servers[0].check_invariants_all();
        });
    }

    #[test]
    fn round_robin_across_two_servers() {
        let r = rig(2, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (d0, d1, c0) = (r.dm_nodes[0], r.dm_nodes[1], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[d0, d1], &params, DmServerConfig::default());
            let dm = DmNetClient::connect(
                client_rpc(&net, c0, 100),
                servers.iter().map(|s| s.addr()).collect(),
            )
            .await
            .unwrap();
            let a0 = dm.ralloc(4096).await.unwrap();
            let a1 = dm.ralloc(4096).await.unwrap();
            let a2 = dm.ralloc(4096).await.unwrap();
            assert_eq!(a0.server.0, 0);
            assert_eq!(a1.server.0, 1);
            assert_eq!(a2.server.0, 0);
            // Data lands on the right server.
            dm.rwrite(a1, &Bytes::from_static(b"on-server-1"))
                .await
                .unwrap();
            assert_eq!(&dm.rread(a1, 11).await.unwrap()[..], b"on-server-1");
        });
    }

    #[test]
    fn eager_copy_pool_copies_on_create_ref() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                copy_mode: CopyMode::Eager,
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(16 * 4096).await.unwrap();
            dm.rwrite(addr, &Bytes::from(vec![3u8; 16 * 4096]))
                .await
                .unwrap();
            let traffic_before = servers[0].memory().traffic_bytes();
            let _ = dm.create_ref(addr, 16 * 4096).await.unwrap();
            let traffic_after = servers[0].memory().traffic_bytes();
            // Eager copy moves 16 pages through memory (2x for read+write).
            assert!(
                traffic_after - traffic_before >= 2 * 16 * 4096,
                "copy traffic missing: {}",
                traffic_after - traffic_before
            );
        });
    }

    #[test]
    fn cow_create_ref_is_cheap_in_traffic_and_time() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(256 * 4096).await.unwrap(); // 1 MiB
            dm.rwrite(addr, &Bytes::from(vec![3u8; 256 * 4096]))
                .await
                .unwrap();
            let traffic_before = servers[0].memory().traffic_bytes();
            let t0 = simcore::now();
            let _ = dm.create_ref(addr, 256 * 4096).await.unwrap();
            let elapsed = simcore::now() - t0;
            let delta = servers[0].memory().traffic_bytes() - traffic_before;
            assert!(delta < 4096, "COW create_ref moved {delta} bytes");
            assert!(
                elapsed < std::time::Duration::from_micros(50),
                "COW create_ref took {elapsed:?}"
            );
        });
    }

    #[test]
    fn out_of_memory_propagates_to_client() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                capacity_pages: 4,
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(8 * 4096).await.unwrap();
            let r = dm.rwrite(addr, &Bytes::from(vec![1u8; 8 * 4096])).await;
            assert_eq!(r.unwrap_err(), DmError::OutOfMemory);
        });
    }

    #[test]
    fn concurrent_clients_keep_invariants() {
        let r = rig(1, 4);
        let (net, params) = (r.net.clone(), r.params.clone());
        let dm0 = r.dm_nodes[0];
        let compute = r.compute.clone();
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let pool = vec![servers[0].addr()];
            let mut handles = Vec::new();
            for (i, &node) in compute.iter().enumerate() {
                let net = net.clone();
                let pool = pool.clone();
                handles.push(simcore::spawn(async move {
                    let dm = DmNetClient::connect(client_rpc(&net, node, 100), pool)
                        .await
                        .unwrap();
                    for round in 0..10u64 {
                        let len = 4096 * (1 + (round % 4));
                        let addr = dm.ralloc(len).await.unwrap();
                        let fill = (i as u8) ^ (round as u8);
                        dm.rwrite(addr, &Bytes::from(vec![fill; len as usize]))
                            .await
                            .unwrap();
                        let back = dm.rread(addr, len).await.unwrap();
                        assert!(back.iter().all(|&b| b == fill));
                        let r = dm.create_ref(addr, len).await.unwrap();
                        let m = dm.map_ref(&r).await.unwrap();
                        dm.rwrite(m, &Bytes::from(vec![0xFF; 16])).await.unwrap();
                        dm.rfree(m).await.unwrap();
                        dm.rfree(addr).await.unwrap();
                        dm.release_ref(&r).await.unwrap();
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                assert_eq!(pm.free_pages(), pm.capacity_pages());
            });
        });
    }

    #[test]
    fn sharded_server_routes_and_recovers() {
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                shards: 4,
                capacity_pages: 4096,
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            assert_eq!(servers[0].shard_count(), 4);
            let pool = vec![servers[0].addr()];
            let a = DmNetClient::connect(client_rpc(&net, c0, 100), pool.clone())
                .await
                .unwrap();
            let b = DmNetClient::connect(client_rpc(&net, c1, 100), pool)
                .await
                .unwrap();

            // Allocations land on different shards (round-robin) but behave
            // identically; refs created on one shard resolve from any client.
            let mut refs = Vec::new();
            for i in 0..8u8 {
                let len = 2 * 4096u64;
                let addr = a.ralloc(len).await.unwrap();
                a.rwrite(addr, &Bytes::from(vec![i; len as usize]))
                    .await
                    .unwrap();
                let r = a.create_ref(addr, len).await.unwrap();
                a.rfree(addr).await.unwrap();
                refs.push((i, r));
            }
            for (i, r) in &refs {
                let m = b.map_ref(r).await.unwrap();
                let back = b.rread(m, 16).await.unwrap();
                assert!(back.iter().all(|&v| v == *i), "shard routing mixed up data");
                // COW write stays isolated per shard too.
                b.rwrite(m, &Bytes::from_static(b"zz")).await.unwrap();
                assert_eq!(&b.read_ref(r, 0, 2).await.unwrap()[..], &[*i, *i]);
                b.rfree(m).await.unwrap();
            }
            for (_, r) in &refs {
                b.release_ref(r).await.unwrap();
            }
            servers[0].check_invariants_all();
            assert_eq!(
                servers[0].free_pages_total(),
                servers[0].capacity_pages_total(),
                "all shards fully reclaimed"
            );
        });
    }

    #[test]
    fn sharding_scales_create_ref_rate() {
        // One core/one shard vs four shards: saturated small create_ref
        // rate should scale with shards (paper 's VI-C dispatching claim).
        let run = |shards: usize| {
            let r = rig(1, 1);
            let (net, params) = (r.net.clone(), r.params.clone());
            let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
            r.sim.block_on(async move {
                let cfg = DmServerConfig {
                    shards,
                    cores: 1,
                    capacity_pages: 8192,
                    ..Default::default()
                };
                let servers = start_pool(&net, &[dm0], &params, cfg);
                let dm = Rc::new(
                    DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                        .await
                        .unwrap(),
                );
                // Pre-create one region per shard so create_ref spreads.
                let mut addrs = Vec::new();
                for _ in 0..shards.max(1) {
                    let a = dm.ralloc(64 * 4096).await.unwrap();
                    dm.rwrite(a, &Bytes::from(vec![1u8; 64 * 4096]))
                        .await
                        .unwrap();
                    addrs.push(a);
                }
                let t0 = simcore::now();
                let mut handles = Vec::new();
                for w in 0..16usize {
                    let dm = dm.clone();
                    let addr = addrs[w % addrs.len()];
                    handles.push(simcore::spawn(async move {
                        for _ in 0..50 {
                            let r = dm.create_ref(addr, 64 * 4096).await.unwrap();
                            dm.release_ref(&r).await.unwrap();
                        }
                    }));
                }
                for h in handles {
                    h.await;
                }
                (simcore::now() - t0).as_nanos() as u64
            })
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four * 2 < one,
            "4 shards should be >2x faster than 1 core: {one} vs {four}"
        );
    }

    #[test]
    fn translation_fraction_is_tiny() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let dm = DmNetClient::connect(client_rpc(&net, c0, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let addr = dm.ralloc(64 * 4096).await.unwrap();
            let data = Bytes::from(vec![9u8; 64 * 4096]);
            dm.rwrite(addr, &data).await.unwrap();
            for _ in 0..20 {
                dm.rread(addr, 64 * 4096).await.unwrap();
            }
            let frac = servers[0].translation_fraction();
            assert!(frac > 0.0 && frac < 0.25, "translation fraction {frac}");
        });
    }

    #[test]
    fn map_ref_memoizes_repeat_maps() {
        // Regression: back-to-back map_ref of the same ref used to issue a
        // duplicate round trip. With the cache on, the second map (after a
        // clean rfree) is served locally: exactly one MAP_REF wire message
        // and zero FREE wire messages until the cache is flushed.
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let dm = DmNetClient::connect_with(
                client_rpc(&net, c0, 100),
                vec![servers[0].addr()],
                CacheConfig::all_on(),
            )
            .await
            .unwrap();

            let addr = dm.ralloc(8192).await.unwrap();
            dm.rwrite(addr, &Bytes::from(vec![0x42; 8192]))
                .await
                .unwrap();
            let r = dm.create_ref(addr, 8192).await.unwrap();
            dm.rfree(addr).await.unwrap();

            let m1 = dm.map_ref(&r).await.unwrap();
            assert_eq!(&dm.rread(m1, 8).await.unwrap()[..], &[0x42; 8]);
            dm.rfree(m1).await.unwrap(); // clean: release deferred
            let m2 = dm.map_ref(&r).await.unwrap();
            assert_eq!(m2.va, m1.va, "same mapping handed back");
            assert_eq!(&dm.rread(m2, 8).await.unwrap()[..], &[0x42; 8]);

            assert_eq!(dm.wire_count(proto::req::MAP_REF), 1, "duplicate map RTT");
            // Exactly one wire FREE so far: the raw region free above. The
            // mapping free was deferred, not sent.
            assert_eq!(dm.wire_count(proto::req::FREE), 1, "deferred free leaked");
            assert!(dm.cache_stats().hits() >= 1);

            // Double free of the deferred mapping fails locally, like the
            // server would fail it.
            dm.rfree(m2).await.unwrap();
            assert_eq!(dm.rfree(m2).await.unwrap_err(), DmError::InvalidAddress);

            // Flushing surfaces the hidden state; everything reclaims.
            dm.release_ref(&r).await.unwrap();
            dm.flush_cache().await;
            servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                assert_eq!(pm.free_pages(), pm.capacity_pages(), "pages leaked");
            });
        });
    }

    #[test]
    fn cached_read_ref_hits_and_epoch_invalidates() {
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let pool = vec![servers[0].addr()];
            let owner = DmNetClient::connect(client_rpc(&net, c0, 100), pool.clone())
                .await
                .unwrap();
            let reader = DmNetClient::connect_with(
                client_rpc(&net, c1, 100),
                pool,
                CacheConfig {
                    enabled: true,
                    batching: false,
                    ..CacheConfig::default()
                },
            )
            .await
            .unwrap();

            let data = Bytes::from((0..8192u32).map(|i| (i % 241) as u8).collect::<Vec<_>>());
            let r = owner.put_ref(&data).await.unwrap();

            // First read fills; repeats (including sub-range reads) hit.
            assert_eq!(reader.read_ref(&r, 0, 8192).await.unwrap(), data);
            let wire_reads = reader.wire_count(proto::req::READ_REF);
            assert_eq!(reader.read_ref(&r, 0, 8192).await.unwrap(), data);
            assert_eq!(
                &reader.read_ref(&r, 100, 8).await.unwrap()[..],
                &data[100..108]
            );
            assert_eq!(reader.wire_count(proto::req::READ_REF), wire_reads);
            assert!(reader.cache_stats().hits() >= 2);

            // The owner releases the ref: the server's invalidation epoch
            // advances. The reader observes it on its next wire op, after
            // which the stale entry is gone and the read fails exactly as
            // an uncached read would.
            owner.release_ref(&r).await.unwrap();
            let scratch = reader.ralloc(4096).await.unwrap(); // observes epoch
            assert!(reader.cache_stats().invalidations() >= 1);
            assert_eq!(
                reader.read_ref(&r, 0, 8192).await.unwrap_err(),
                DmError::InvalidRef
            );
            reader.rfree(scratch).await.unwrap();
            reader.flush_cache().await;
            servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                assert_eq!(pm.free_pages(), pm.capacity_pages(), "pages leaked");
            });
        });
    }

    #[test]
    fn batched_releases_coalesce_into_one_wire_message() {
        let r = rig(1, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0) = (r.dm_nodes[0], r.compute[0]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &[dm0], &params, DmServerConfig::default());
            let dm = DmNetClient::connect_with(
                client_rpc(&net, c0, 100),
                vec![servers[0].addr()],
                CacheConfig::all_on(),
            )
            .await
            .unwrap();

            let mut refs = Vec::new();
            for i in 0..8u8 {
                refs.push(dm.put_ref(&Bytes::from(vec![i; 4096])).await.unwrap());
            }
            for r in &refs {
                dm.release_ref(r).await.unwrap(); // queued, not sent
            }
            assert_eq!(dm.wire_count(proto::req::RELEASE_REF), 0);
            // The flush window elapses; all eight releases ride one BATCH.
            simcore::sleep(std::time::Duration::from_millis(1)).await;
            assert_eq!(dm.wire_count(proto::req::BATCH), 1);
            assert_eq!(dm.cache_stats().batched_ops(), 8);
            servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                assert_eq!(pm.free_pages(), pm.capacity_pages(), "releases not applied");
            });
        });
    }

    #[test]
    fn sharded_placement_routes_by_ring() {
        // Two sharded clients with the same seed agree on every ref's home
        // without coordination, placement covers the whole pool, and no
        // redirects are chased when nothing migrates.
        let r = rig(4, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let dms = r.dm_nodes.clone();
        let (c0, c1) = (r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &dms, &params, DmServerConfig::default());
            let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            let writer = DmNetClient::connect_sharded(
                client_rpc(&net, c0, 100),
                pool.clone(),
                CacheConfig::default(),
                ShardConfig::default(),
                7,
            )
            .await
            .unwrap();
            let reader = DmNetClient::connect_sharded(
                client_rpc(&net, c1, 100),
                pool,
                CacheConfig::default(),
                ShardConfig::default(),
                7,
            )
            .await
            .unwrap();
            assert!(writer.is_sharded());

            let mut refs = Vec::new();
            for i in 0..32u8 {
                let data = Bytes::from(vec![i; 4096]);
                let r = writer.put_ref(&data).await.unwrap();
                let Ref::Net { key, .. } = r else {
                    unreachable!()
                };
                assert!(key & GKEY_BIT != 0, "sharded put_ref mints gkeys");
                refs.push((i, r));
            }
            // 32 refs over 4 servers: the ring spreads them (every server
            // holds at least one with overwhelming probability).
            for (idx, s) in servers.iter().enumerate() {
                assert!(s.gkeys_bound() > 0, "server {idx} got no refs");
            }
            // The second client resolves every gkey off its own ring copy.
            for (i, r) in &refs {
                let back = reader.read_ref(r, 0, 4096).await.unwrap();
                assert!(back.iter().all(|&b| b == *i), "wrong bytes for ref {i}");
            }
            assert_eq!(reader.redirects_chased(), 0, "no migrations, no hops");
            for (_, r) in &refs {
                reader.release_ref(r).await.unwrap();
            }
            for s in &servers {
                s.check_invariants_all();
                assert_eq!(s.free_pages_total(), s.capacity_pages_total());
                assert_eq!(s.gkeys_bound(), 0);
            }
        });
    }

    #[test]
    fn migration_redirects_one_hop_and_reloc_cache_goes_direct() {
        let r = rig(3, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let dms = r.dm_nodes.clone();
        let (c0, c1) = (r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let servers = start_pool(&net, &dms, &params, DmServerConfig::default());
            let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            // Caches off so every read is a wire op (redirects observable).
            let owner = DmNetClient::connect_sharded(
                client_rpc(&net, c0, 100),
                pool.clone(),
                CacheConfig::default(),
                ShardConfig::default(),
                3,
            )
            .await
            .unwrap();
            let other = DmNetClient::connect_sharded(
                client_rpc(&net, c1, 100),
                pool,
                CacheConfig::default(),
                ShardConfig::default(),
                3,
            )
            .await
            .unwrap();

            let data = Bytes::from((0..8192u32).map(|i| (i % 239) as u8).collect::<Vec<_>>());
            let r = owner.put_ref(&data).await.unwrap();
            let Ref::Net { server: home, .. } = r else {
                unreachable!()
            };
            // The other client reads once pre-migration (knows the home).
            assert_eq!(other.read_ref(&r, 0, 8192).await.unwrap(), data);
            assert_eq!(other.redirects_chased(), 0);

            // Migrate to a different server.
            let dst = dmcommon::DmServerId((home.0 + 1) % 3);
            owner.migrate_ref(&r, dst).await.unwrap();
            let src = &servers[home.0 as usize];
            let dstv = &servers[dst.0 as usize];
            assert_eq!(src.gkeys_bound(), 0, "source still holds the gkey");
            assert_eq!(src.tombstones(), 1, "no redirect tombstone");
            assert_eq!(dstv.gkeys_bound(), 1, "destination missing the gkey");
            assert_eq!(src.migrations(), 1);
            assert_eq!(dstv.migrations(), 1);

            // The other client's next read chases exactly one hop...
            assert_eq!(other.read_ref(&r, 0, 8192).await.unwrap(), data);
            assert_eq!(other.redirects_chased(), 1, "one-hop chase");
            assert_eq!(src.redirects(), 1);
            // ...and its relocation cache then goes direct: more reads, no
            // more hops.
            assert_eq!(
                other.read_ref(&r, 100, 64).await.unwrap()[..],
                data[100..164]
            );
            assert_eq!(other.redirects_chased(), 1, "reloc cache not used");
            // The migrating client learned the new home synchronously.
            assert_eq!(owner.read_ref(&r, 0, 16).await.unwrap()[..], data[..16]);
            assert_eq!(owner.redirects_chased(), 0);

            // Release through the redirect path reclaims everything.
            other.release_ref(&r).await.unwrap();
            for s in &servers {
                s.check_invariants_all();
                assert_eq!(s.free_pages_total(), s.capacity_pages_total());
                assert_eq!(s.gkeys_bound(), 0);
            }
        });
    }

    #[test]
    fn targeted_invalidation_drops_only_the_released_ref() {
        // Fine-grained coherence (DESIGN.md §15): releasing one ref pushes
        // an invalidation to its read-lease holders and bumps nothing else.
        // The global epoch stays put, so unrelated cached entries keep
        // serving.
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let lease = std::time::Duration::from_millis(10);
            let cfg = DmServerConfig {
                coherence: Some(CoherenceConfig {
                    read_lease: lease,
                    ..Default::default()
                }),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let pool = vec![servers[0].addr()];
            let ccfg = CacheConfig {
                read_lease: lease,
                ..CacheConfig::fine_grained()
            };
            let owner = DmNetClient::connect_with(client_rpc(&net, c0, 100), pool.clone(), ccfg)
                .await
                .unwrap();
            let reader = DmNetClient::connect_with(client_rpc(&net, c1, 100), pool, ccfg)
                .await
                .unwrap();

            let da = Bytes::from(vec![0xAA; 4096]);
            let db = Bytes::from(vec![0xBB; 4096]);
            let ra = owner.put_ref(&da).await.unwrap();
            let rb = owner.put_ref(&db).await.unwrap();
            assert_eq!(reader.read_ref(&ra, 0, 4096).await.unwrap(), da);
            assert_eq!(reader.read_ref(&rb, 0, 4096).await.unwrap(), db);

            let epoch_before = servers[0].epoch();
            owner.release_ref(&ra).await.unwrap();
            owner.flush_cache().await; // send the queued release
            simcore::sleep(std::time::Duration::from_micros(100)).await; // push lands

            assert!(servers[0].invalidations_pushed() >= 1, "no push sent");
            assert_eq!(
                servers[0].epoch(),
                epoch_before,
                "a coherent release must not move the global epoch"
            );
            assert!(reader.cache_stats().targeted_inv() >= 1, "push not folded");
            assert_eq!(reader.cache_stats().broadcast_inv(), 0);

            // The untouched ref keeps serving from cache: zero wire reads.
            let wire = reader.wire_count(proto::req::READ_REF);
            assert_eq!(reader.read_ref(&rb, 0, 4096).await.unwrap(), db);
            assert_eq!(reader.wire_count(proto::req::READ_REF), wire);

            // The released ref's entry is gone; the wire reports the truth.
            assert_eq!(
                reader.read_ref(&ra, 0, 4096).await.unwrap_err(),
                DmError::InvalidRef
            );
            owner.release_ref(&rb).await.unwrap();
            owner.flush_cache().await;
            reader.flush_cache().await;
            servers[0].check_invariants_all();
        });
    }

    #[test]
    fn lost_invalidation_is_bounded_by_the_read_lease() {
        // Safety under a lost push: a partitioned holder may serve the
        // ref's final bytes until its read lease expires (COW refs are
        // immutable, so those bytes are never diverged), after which the
        // entry stops serving and the wire reports the release.
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let lease = std::time::Duration::from_micros(500);
            let cfg = DmServerConfig {
                coherence: Some(CoherenceConfig {
                    read_lease: lease,
                    ..Default::default()
                }),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let pool = vec![servers[0].addr()];
            let ccfg = CacheConfig {
                read_lease: lease,
                ..CacheConfig::fine_grained()
            };
            let owner = DmNetClient::connect_with(client_rpc(&net, c0, 100), pool.clone(), ccfg)
                .await
                .unwrap();
            let rrpc = client_rpc(&net, c1, 100);
            let reader = DmNetClient::connect_with(rrpc.clone(), pool, ccfg)
                .await
                .unwrap();

            let da = Bytes::from(vec![0xCD; 4096]);
            let ra = owner.put_ref(&da).await.unwrap();
            assert_eq!(reader.read_ref(&ra, 0, 4096).await.unwrap(), da);

            // Partition the holder; the release's push is lost on the wire.
            rrpc.set_offline(true);
            owner.release_ref(&ra).await.unwrap();
            owner.flush_cache().await;
            simcore::sleep(std::time::Duration::from_micros(100)).await;

            // Within the lease the cache still serves the final bytes —
            // stale, never diverged — without touching the (dead) wire.
            assert_eq!(reader.read_ref(&ra, 0, 4096).await.unwrap(), da);

            // Past the lease the entry stops serving on its own.
            simcore::sleep(lease).await;
            rrpc.set_offline(false);
            assert_eq!(
                reader.read_ref(&ra, 0, 4096).await.unwrap_err(),
                DmError::InvalidRef
            );
            owner.flush_cache().await;
            servers[0].check_invariants_all();
        });
    }

    #[test]
    fn directory_overflow_falls_back_to_epoch_broadcast() {
        // The holder directory is bounded: once grants exceed `dir_max`,
        // the server drops the directory and bumps the global epoch — the
        // pre-§15 broadcast — instead of growing without bound.
        let r = rig(1, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let (dm0, c0, c1) = (r.dm_nodes[0], r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                coherence: Some(CoherenceConfig {
                    dir_max: 2,
                    ..Default::default()
                }),
                ..Default::default()
            };
            let servers = start_pool(&net, &[dm0], &params, cfg);
            let epoch0 = servers[0].epoch();
            let pool = vec![servers[0].addr()];
            let owner = DmNetClient::connect_with(
                client_rpc(&net, c0, 100),
                pool.clone(),
                CacheConfig::fine_grained(),
            )
            .await
            .unwrap();
            let reader = DmNetClient::connect_with(
                client_rpc(&net, c1, 100),
                pool,
                CacheConfig::fine_grained(),
            )
            .await
            .unwrap();

            let mut refs = Vec::new();
            for i in 0..4u8 {
                refs.push(owner.put_ref(&Bytes::from(vec![i; 4096])).await.unwrap());
            }
            assert!(
                servers[0].coherence_broadcasts() >= 1,
                "4 grants through a 2-slot directory must overflow"
            );
            assert!(servers[0].epoch() > epoch0, "overflow must bump the epoch");

            // Correctness is unaffected: every ref still reads back, and
            // the reader accounts the epoch movement as a broadcast.
            for (i, r) in refs.iter().enumerate() {
                let back = reader.read_ref(r, 0, 4096).await.unwrap();
                assert!(back.iter().all(|&b| b == i as u8));
            }
            assert!(reader.cache_stats().broadcast_inv() >= 1);
            for r in &refs {
                owner.release_ref(r).await.unwrap();
            }
            owner.flush_cache().await;
            reader.flush_cache().await;
            servers[0].check_invariants_all();
        });
    }

    #[test]
    fn coherent_migration_bumps_version_and_survives_restart() {
        // MIGRATE under coherence: the version travels with the pages
        // (current + 1), holders of the old home get a targeted push, and
        // the destination's version table survives crash + replay (the
        // `GVer` WAL record).
        let r = rig(2, 2);
        let (net, params) = (r.net.clone(), r.params.clone());
        let dms = r.dm_nodes.clone();
        let (c0, c1) = (r.compute[0], r.compute[1]);
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                durability: Some(WalConfig::zero_cost()),
                coherence: Some(CoherenceConfig {
                    read_lease: std::time::Duration::from_millis(10),
                    ..Default::default()
                }),
                ..Default::default()
            };
            let servers = start_pool(&net, &dms, &params, cfg);
            let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            let ccfg = CacheConfig {
                read_lease: std::time::Duration::from_millis(10),
                ..CacheConfig::fine_grained()
            };
            let owner = DmNetClient::connect_sharded(
                client_rpc(&net, c0, 100),
                pool.clone(),
                ccfg,
                ShardConfig::default(),
                3,
            )
            .await
            .unwrap();
            let reader = DmNetClient::connect_sharded(
                client_rpc(&net, c1, 100),
                pool,
                ccfg,
                ShardConfig::default(),
                3,
            )
            .await
            .unwrap();

            let data = Bytes::from((0..8192u32).map(|i| (i % 239) as u8).collect::<Vec<_>>());
            let r = owner.put_ref(&data).await.unwrap();
            let Ref::Net {
                server: home, key, ..
            } = r
            else {
                unreachable!()
            };
            assert_eq!(reader.read_ref(&r, 0, 8192).await.unwrap(), data);

            let dst = dmcommon::DmServerId((home.0 + 1) % 2);
            owner.migrate_ref(&r, dst).await.unwrap();
            simcore::sleep(std::time::Duration::from_micros(100)).await;

            // The reader's stale entry under the old home was dropped by
            // the push; the re-read chases the tombstone and still agrees.
            assert!(reader.cache_stats().targeted_inv() >= 1, "no push folded");
            assert_eq!(reader.read_ref(&r, 0, 8192).await.unwrap(), data);
            assert_eq!(servers[dst.0 as usize].ref_version(key), 2);

            // The version table is durable: crash + replay restores it.
            servers[dst.0 as usize].crash();
            servers[dst.0 as usize].restart_from_log().await;
            assert_eq!(
                servers[dst.0 as usize].ref_version(key),
                2,
                "GVer lost in replay"
            );
            assert_eq!(
                reader.read_ref(&r, 100, 64).await.unwrap()[..],
                data[100..164]
            );

            reader.release_ref(&r).await.unwrap();
            owner.flush_cache().await;
            reader.flush_cache().await;
            for s in &servers {
                s.check_invariants_all();
                assert_eq!(s.free_pages_total(), s.capacity_pages_total());
            }
        });
    }

    #[test]
    fn sharded_recovery_restores_bindings_and_tombstones() {
        // Durable sharded plane: gkey bindings and redirect tombstones
        // survive a crash + restart_from_log, including across WAL
        // compaction (v2 checkpoints).
        let r = rig(2, 1);
        let (net, params) = (r.net.clone(), r.params.clone());
        let dms = r.dm_nodes.clone();
        let c0 = r.compute[0];
        r.sim.block_on(async move {
            let cfg = DmServerConfig {
                durability: Some(WalConfig::zero_cost()),
                ..Default::default()
            };
            let servers = start_pool(&net, &dms, &params, cfg);
            let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            let dm = DmNetClient::connect_sharded(
                client_rpc(&net, c0, 100),
                pool,
                CacheConfig::default(),
                ShardConfig::default(),
                5,
            )
            .await
            .unwrap();

            let mut refs = Vec::new();
            for i in 0..12u8 {
                let data = Bytes::from(vec![i ^ 0x5A; 4096]);
                refs.push(dm.put_ref(&data).await.unwrap());
            }
            // Migrate a few refs off server 0 so it holds tombstones and
            // server 1 holds migrated-in (possibly unowned-sentinel) refs.
            let mut moved = 0;
            for r in &refs {
                let Ref::Net { server, .. } = r else {
                    unreachable!()
                };
                if server.0 == 0 && moved < 3 {
                    dm.migrate_ref(r, dmcommon::DmServerId(1)).await.unwrap();
                    moved += 1;
                }
            }
            assert!(moved > 0, "seed 5 should place some refs on server 0");
            let pre: Vec<_> = servers
                .iter()
                .map(|s| (s.pages_digest(), s.gkeys_bound(), s.tombstones()))
                .collect();

            for s in &servers {
                s.crash();
                s.restart_from_log().await;
            }
            for (s, (digest, bound, tombs)) in servers.iter().zip(&pre) {
                assert_eq!(s.pages_digest(), *digest, "page state diverged");
                assert_eq!(s.gkeys_bound(), *bound, "gkey bindings lost");
                assert_eq!(s.tombstones(), *tombs, "tombstones lost");
            }
            // Every ref still reads back (through redirects where needed).
            for (i, r) in refs.iter().enumerate() {
                let back = dm.read_ref(r, 0, 4096).await.unwrap();
                assert!(back.iter().all(|&b| b == (i as u8) ^ 0x5A));
            }
            for r in &refs {
                dm.release_ref(r).await.unwrap();
            }
            for s in &servers {
                s.check_invariants_all();
                assert_eq!(s.free_pages_total(), s.capacity_pages_total());
            }
        });
    }
}
