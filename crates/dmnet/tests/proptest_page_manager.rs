//! Model-based property tests for the Page manager.
//!
//! A reference model tracks, in plain `Vec<u8>`s, what every live region
//! and every live `Ref` snapshot must contain. Random operation sequences
//! are applied to both the real [`PageManager`] and the model; after every
//! step reads must agree, and the page-pool invariants (refcount
//! conservation, free-list exclusivity) must hold.

use dmcommon::{CopyMode, GlobalPid, PAGE_SIZE};
use dmnet::PageManager;
use proptest::prelude::*;

const PS: u64 = PAGE_SIZE as u64;

#[derive(Clone, Debug)]
enum Op {
    Alloc {
        pages: u64,
    },
    Write {
        region: usize,
        off: u64,
        len: usize,
        fill: u8,
    },
    Read {
        region: usize,
        off: u64,
        len: usize,
    },
    CreateRef {
        region: usize,
    },
    MapRef {
        r: usize,
    },
    ReadRefDirect {
        r: usize,
    },
    Free {
        region: usize,
    },
    ReleaseRef {
        r: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..4).prop_map(|pages| Op::Alloc { pages }),
        (0usize..8, 0u64..3 * PS, 1usize..2000, any::<u8>()).prop_map(
            |(region, off, len, fill)| Op::Write {
                region,
                off,
                len,
                fill
            }
        ),
        (0usize..8, 0u64..3 * PS, 1usize..2000).prop_map(|(region, off, len)| Op::Read {
            region,
            off,
            len
        }),
        (0usize..8).prop_map(|region| Op::CreateRef { region }),
        (0usize..8).prop_map(|r| Op::MapRef { r }),
        (0usize..8).prop_map(|r| Op::ReadRefDirect { r }),
        (0usize..8).prop_map(|region| Op::Free { region }),
        (0usize..8).prop_map(|r| Op::ReleaseRef { r }),
    ]
}

/// A live region in the model: its owner, VA, length, and expected bytes.
struct ModelRegion {
    pid: GlobalPid,
    va: u64,
    len: u64,
    data: Vec<u8>,
}

/// A live ref in the model: key plus the immutable snapshot it must serve.
struct ModelRef {
    key: u64,
    snapshot: Vec<u8>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_manager_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        copy_mode in prop_oneof![Just(CopyMode::CopyOnWrite), Just(CopyMode::Eager)],
    ) {
        let mut pm = PageManager::new(512, copy_mode);
        let pid = pm.register_process();
        let mapper = pm.register_process();
        let mut regions: Vec<ModelRegion> = Vec::new();
        let mut refs: Vec<ModelRef> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { pages } => {
                    if let Ok(va) = pm.ralloc(pid, pages * PS) {
                        regions.push(ModelRegion {
                            pid,
                            va,
                            len: pages * PS,
                            data: vec![0u8; (pages * PS) as usize],
                        });
                    }
                }
                Op::Write { region, off, len, fill } => {
                    if regions.is_empty() { continue; }
                    let idx = region % regions.len();
                    let r = &mut regions[idx];
                    if off + len as u64 > r.len { continue; }
                    let buf = vec![fill; len];
                    pm.write(r.pid, r.va + off, &buf).expect("in-bounds write");
                    r.data[off as usize..off as usize + len].copy_from_slice(&buf);
                }
                Op::Read { region, off, len } => {
                    if regions.is_empty() { continue; }
                    let r = &regions[region % regions.len()];
                    if off + len as u64 > r.len { continue; }
                    let got = pm.read(r.pid, r.va + off, len as u64).expect("in-bounds read");
                    prop_assert_eq!(&got[..], &r.data[off as usize..off as usize + len]);
                }
                Op::CreateRef { region } => {
                    if regions.is_empty() { continue; }
                    let r = &regions[region % regions.len()];
                    if let Ok((key, _)) = pm.create_ref(r.pid, r.va, r.len) {
                        refs.push(ModelRef { key, snapshot: r.data.clone() });
                    }
                }
                Op::MapRef { r } => {
                    if refs.is_empty() { continue; }
                    let mr = &refs[r % refs.len()];
                    if let Ok((va, len, _)) = pm.map_ref(mapper, mr.key) {
                        // A new region for the mapper, seeded with the
                        // snapshot (shared until written).
                        regions.push(ModelRegion {
                            pid: mapper,
                            va,
                            len,
                            data: mr.snapshot.clone(),
                        });
                    }
                }
                Op::ReadRefDirect { r } => {
                    if refs.is_empty() { continue; }
                    let mr = &refs[r % refs.len()];
                    let got = pm
                        .read_ref(mr.key, 0, mr.snapshot.len() as u64)
                        .expect("ref read");
                    prop_assert_eq!(&got[..], &mr.snapshot[..]);
                }
                Op::Free { region } => {
                    if regions.is_empty() { continue; }
                    let idx = region % regions.len();
                    let r = regions.remove(idx);
                    pm.rfree(r.pid, r.va).expect("free live region");
                }
                Op::ReleaseRef { r } => {
                    if refs.is_empty() { continue; }
                    let idx = r % refs.len();
                    let mr = refs.remove(idx);
                    pm.release_ref(mr.key).expect("release live ref");
                }
            }
            pm.check_invariants();
        }

        // Every ref snapshot must still read back exactly, no matter what
        // writes happened elsewhere (COW isolation).
        for mr in &refs {
            let got = pm.read_ref(mr.key, 0, mr.snapshot.len() as u64).expect("ref read");
            prop_assert_eq!(&got[..], &mr.snapshot[..]);
        }
        // And every live region must still read back its model contents.
        for r in &regions {
            let got = pm.read(r.pid, r.va, r.len).expect("region read");
            prop_assert_eq!(&got[..], &r.data[..]);
        }

        // Tear everything down: the pool must fully recover.
        for r in regions {
            pm.rfree(r.pid, r.va).expect("final free");
        }
        for mr in refs {
            pm.release_ref(mr.key).expect("final release");
        }
        pm.check_invariants();
        prop_assert_eq!(pm.free_pages(), pm.capacity_pages());
    }

    #[test]
    fn va_allocations_never_overlap(
        sizes in proptest::collection::vec(1u64..100_000, 1..40),
        free_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut pm = PageManager::new(16, CopyMode::CopyOnWrite);
        let pid = pm.register_process();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            if let Ok(va) = pm.ralloc(pid, sz) {
                let len = sz.div_ceil(PS) * PS;
                for &(ova, olen) in &live {
                    prop_assert!(
                        va + len <= ova || ova + olen <= va,
                        "overlap: [{va},{}) vs [{ova},{})", va + len, ova + olen
                    );
                }
                live.push((va, len));
            }
            if free_mask.get(i).copied().unwrap_or(false) && !live.is_empty() {
                let (va, _) = live.remove(i % live.len());
                pm.rfree(pid, va).expect("free");
            }
        }
    }
}
