//! Cache-coherence oracle (ISSUE 3 satellite).
//!
//! Runs random interleavings of `put_ref` / `read_ref` / COW writes /
//! `rfree` / `release_ref` against two clients in one simulation: one with
//! the DESIGN.md §9 cache + coalescer all-on, one raw. Each client talks
//! to its own (identical) DM server, so their server-side states evolve
//! independently from the same operation sequence. After every operation
//! the two clients must return identical bytes (and agree with a plain
//! `Vec<u8>` model); after a final [`DmNetClient::flush_cache`] both
//! servers must reach the same fully-reclaimed state.

use std::rc::Rc;

use bytes::Bytes;
use dmcommon::Ref;
use dmnet::{start_pool, CacheConfig, CoherenceConfig, DmNetClient, DmServerConfig};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::{Rpc, RpcBuilder};
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig, NodeId};

#[derive(Clone, Debug)]
enum Op {
    /// Publish a fresh ref of `len+1` bytes filled with `fill`.
    Put { len: u16, fill: u8 },
    /// Read a sub-range of a live ref on both clients.
    ReadRef { slot: u8, off: u16, len: u16 },
    /// Map a live ref, COW-write through the mapping, read it back, free.
    CowWrite { slot: u8, fill: u8 },
    /// Map a live ref, read the snapshot, free the mapping (repeats of
    /// this hit the cached client's memoized mapping).
    MapReadFree { slot: u8 },
    /// Release a live ref on both clients.
    Release { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(len, fill)| Op::Put { len, fill }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(slot, off, len)| Op::ReadRef {
            slot,
            off,
            len
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(slot, fill)| Op::CowWrite { slot, fill }),
        any::<u8>().prop_map(|slot| Op::MapReadFree { slot }),
        any::<u8>().prop_map(|slot| Op::Release { slot }),
    ]
}

/// One tracked ref: the raw client's handle, the cached client's handle,
/// and the immutable bytes both must serve while it is alive.
type Slot = Option<(Ref, Ref, Vec<u8>)>;

/// Pick a live slot near `slot`, scanning forward with wraparound.
fn live_slot(refs: &[Slot], slot: u8) -> Option<usize> {
    if refs.is_empty() {
        return None;
    }
    let start = slot as usize % refs.len();
    (0..refs.len())
        .map(|d| (start + d) % refs.len())
        .find(|&i| refs[i].is_some())
}

fn client_rpc(net: &Network, node: NodeId, port: u16) -> Rc<Rpc> {
    RpcBuilder::new(net, node, port).build()
}

proptest! {
    #[test]
    fn cached_client_is_coherent_with_uncached(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 17);
            let params = ModelParams::new();
            let dm_a = net.add_node("dm-raw", NicConfig::default());
            let dm_b = net.add_node("dm-cached", NicConfig::default());
            let c_a = net.add_node("c-raw", NicConfig::default());
            let c_b = net.add_node("c-cached", NicConfig::default());
            let servers = start_pool(&net, &[dm_a, dm_b], &params, DmServerConfig::default());
            let raw = DmNetClient::connect(client_rpc(&net, c_a, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let cached = DmNetClient::connect_with(
                client_rpc(&net, c_b, 100),
                vec![servers[1].addr()],
                CacheConfig::all_on(),
            )
            .await
            .unwrap();

            let mut refs: Vec<Slot> = Vec::new();
            for op in ops {
                match op {
                    Op::Put { len, fill } => {
                        let len = len as usize % 12288 + 1;
                        let data = Bytes::from(vec![fill; len]);
                        let r1 = raw.put_ref(&data).await.unwrap();
                        let r2 = cached.put_ref(&data).await.unwrap();
                        refs.push(Some((r1, r2, data.to_vec())));
                    }
                    Op::ReadRef { slot, off, len } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let total = data.len() as u64;
                        let off = off as u64 % total;
                        let len = (len as u64 % (total - off)) + 1;
                        let a = raw.read_ref(r1, off, len).await.unwrap();
                        let b = cached.read_ref(r2, off, len).await.unwrap();
                        assert_eq!(a, b, "cached bytes diverge from uncached");
                        assert_eq!(
                            &a[..],
                            &data[off as usize..(off + len) as usize],
                            "bytes diverge from the model"
                        );
                    }
                    Op::CowWrite { slot, fill } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let m1 = raw.map_ref(r1).await.unwrap();
                        let m2 = cached.map_ref(r2).await.unwrap();
                        let patch = Bytes::from(vec![fill; 64.min(data.len())]);
                        raw.rwrite(m1, &patch).await.unwrap();
                        cached.rwrite(m2, &patch).await.unwrap();
                        let a = raw.rread(m1, patch.len() as u64).await.unwrap();
                        let b = cached.rread(m2, patch.len() as u64).await.unwrap();
                        assert_eq!(a, b, "COW mapping bytes diverge");
                        assert_eq!(a, patch);
                        // The write went to a private copy: the ref's
                        // snapshot is untouched on both systems.
                        let probe = 8.min(data.len() as u64);
                        let s1 = raw.read_ref(r1, 0, probe).await.unwrap();
                        let s2 = cached.read_ref(r2, 0, probe).await.unwrap();
                        assert_eq!(s1, s2, "ref snapshot diverges after COW");
                        assert_eq!(&s1[..], &data[..probe as usize]);
                        raw.rfree(m1).await.unwrap();
                        cached.rfree(m2).await.unwrap();
                    }
                    Op::MapReadFree { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let m1 = raw.map_ref(r1).await.unwrap();
                        let m2 = cached.map_ref(r2).await.unwrap();
                        let a = raw.rread(m1, data.len() as u64).await.unwrap();
                        let b = cached.rread(m2, data.len() as u64).await.unwrap();
                        assert_eq!(a, b, "mapped bytes diverge");
                        assert_eq!(&a[..], &data[..]);
                        raw.rfree(m1).await.unwrap();
                        cached.rfree(m2).await.unwrap();
                    }
                    Op::Release { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, _) = refs[i].take().unwrap();
                        raw.release_ref(&r1).await.unwrap();
                        cached.release_ref(&r2).await.unwrap();
                    }
                }
            }

            // Graceful teardown: release everything still live, surface
            // the cached client's hidden state, and require both servers
            // to converge to the same fully-reclaimed condition.
            for s in refs.iter_mut() {
                if let Some((r1, r2, _)) = s.take() {
                    raw.release_ref(&r1).await.unwrap();
                    cached.release_ref(&r2).await.unwrap();
                }
            }
            cached.flush_cache().await;
            for s in &servers {
                s.with_page_manager(|pm| pm.check_invariants());
            }
            let raw_free = servers[0].free_pages_total();
            let cached_free = servers[1].free_pages_total();
            assert_eq!(raw_free, cached_free, "final server states diverge");
            assert_eq!(
                cached_free,
                servers[1].capacity_pages_total(),
                "cached client leaked pages"
            );
        });
    }
}

/// Operations for the fine-grained (per-ref version + read lease) oracle:
/// the cached plane additionally has a second *writer* client whose
/// mutations reach the reader only through targeted invalidation pushes,
/// and a chaos op that loses those pushes on the wire.
#[derive(Clone, Debug)]
enum FgOp {
    Put {
        len: u16,
        fill: u8,
    },
    ReadRef {
        slot: u8,
        off: u16,
        len: u16,
    },
    /// The *writer* client maps a live ref on the coherent plane and
    /// COW-writes through the mapping (the raw plane mirrors it); the
    /// reader's cached snapshot must stay on the model bytes.
    WriterCow {
        slot: u8,
        fill: u8,
    },
    Release {
        slot: u8,
    },
    /// The reader is partitioned while the writer releases the ref, so the
    /// targeted invalidation push is lost. The ref becomes a zombie: its
    /// final bytes are recorded for the safety assertion.
    ChaosRelease {
        slot: u8,
    },
    /// Read a zombie ref on the reader. Allowed outcomes: the recorded
    /// final bytes (a lease-bounded stale serve) or an error — anything
    /// else means a lost invalidation served diverged bytes.
    ZombieRead {
        slot: u8,
        off: u16,
        len: u16,
    },
}

fn fg_op_strategy() -> impl Strategy<Value = FgOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(len, fill)| FgOp::Put { len, fill }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(slot, off, len)| FgOp::ReadRef {
            slot,
            off,
            len
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(slot, fill)| FgOp::WriterCow { slot, fill }),
        any::<u8>().prop_map(|slot| FgOp::Release { slot }),
        any::<u8>().prop_map(|slot| FgOp::ChaosRelease { slot }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(slot, off, len)| FgOp::ZombieRead {
            slot,
            off,
            len
        }),
    ]
}

proptest! {
    /// ISSUE 10 satellite: the fine-grained client stays coherent with an
    /// uncached client under interleaved multi-client writes, and a lost
    /// targeted invalidation can never make it serve diverged bytes —
    /// only the dead ref's final (immutable) bytes, until its read lease
    /// runs out.
    #[test]
    fn fine_grained_client_is_coherent_under_multi_client_writes(
        ops in proptest::collection::vec(fg_op_strategy(), 1..40)
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 23);
            let params = ModelParams::new();
            let dm_a = net.add_node("dm-raw", NicConfig::default());
            let dm_b = net.add_node("dm-fg", NicConfig::default());
            let c_a = net.add_node("c-raw", NicConfig::default());
            let c_b = net.add_node("c-reader", NicConfig::default());
            let c_w = net.add_node("c-writer", NicConfig::default());
            let lease = std::time::Duration::from_millis(5);
            let raw_srv = start_pool(&net, &[dm_a], &params, DmServerConfig::default());
            let fg_srv = start_pool(
                &net,
                &[dm_b],
                &params,
                DmServerConfig {
                    coherence: Some(CoherenceConfig {
                        read_lease: lease,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            );
            let fg_cfg = CacheConfig {
                read_lease: lease,
                ..CacheConfig::fine_grained()
            };
            let raw = DmNetClient::connect(client_rpc(&net, c_a, 100), vec![raw_srv[0].addr()])
                .await
                .unwrap();
            let reader_rpc = client_rpc(&net, c_b, 100);
            let reader =
                DmNetClient::connect_with(reader_rpc.clone(), vec![fg_srv[0].addr()], fg_cfg)
                    .await
                    .unwrap();
            let writer =
                DmNetClient::connect_with(client_rpc(&net, c_w, 100), vec![fg_srv[0].addr()], fg_cfg)
                    .await
                    .unwrap();

            let mut refs: Vec<Slot> = Vec::new();
            // Zombies: refs released while the reader was partitioned, with
            // the only bytes the reader may ever serve for them.
            let mut zombies: Vec<(Ref, Vec<u8>)> = Vec::new();
            for op in ops {
                match op {
                    FgOp::Put { len, fill } => {
                        let len = len as usize % 12288 + 1;
                        let data = Bytes::from(vec![fill; len]);
                        let r1 = raw.put_ref(&data).await.unwrap();
                        let r2 = reader.put_ref(&data).await.unwrap();
                        refs.push(Some((r1, r2, data.to_vec())));
                    }
                    FgOp::ReadRef { slot, off, len } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let total = data.len() as u64;
                        let off = off as u64 % total;
                        let len = (len as u64 % (total - off)) + 1;
                        let a = raw.read_ref(r1, off, len).await.unwrap();
                        let b = reader.read_ref(r2, off, len).await.unwrap();
                        assert_eq!(a, b, "fine-grained bytes diverge from uncached");
                        assert_eq!(
                            &a[..],
                            &data[off as usize..(off + len) as usize],
                            "bytes diverge from the model"
                        );
                    }
                    FgOp::WriterCow { slot, fill } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let m1 = raw.map_ref(r1).await.unwrap();
                        let m2 = writer.map_ref(r2).await.unwrap();
                        let patch = Bytes::from(vec![fill; 64.min(data.len())]);
                        raw.rwrite(m1, &patch).await.unwrap();
                        writer.rwrite(m2, &patch).await.unwrap();
                        // COW isolation: the writer's divergence must never
                        // leak into the reader's cached snapshot.
                        let probe = 8.min(data.len() as u64);
                        let s1 = raw.read_ref(r1, 0, probe).await.unwrap();
                        let s2 = reader.read_ref(r2, 0, probe).await.unwrap();
                        assert_eq!(s1, s2, "snapshot diverges after writer COW");
                        assert_eq!(&s1[..], &data[..probe as usize]);
                        raw.rfree(m1).await.unwrap();
                        writer.rfree(m2).await.unwrap();
                    }
                    FgOp::Release { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, _) = refs[i].take().unwrap();
                        raw.release_ref(&r1).await.unwrap();
                        reader.release_ref(&r2).await.unwrap();
                    }
                    FgOp::ChaosRelease { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].take().unwrap();
                        // Drain the reader's queued control ops first: a
                        // partition drops in-flight batches (fire-and-forget
                        // semantics), which is client-crash behavior, not
                        // the lost-push scenario under test.
                        reader.flush_cache().await;
                        // Lose the push: the reader is dark while the
                        // writer releases.
                        reader_rpc.set_offline(true);
                        raw.release_ref(&r1).await.unwrap();
                        writer.release_ref(&r2).await.unwrap();
                        writer.flush_cache().await; // queued release hits the wire now
                        simcore::sleep(std::time::Duration::from_micros(50)).await;
                        reader_rpc.set_offline(false);
                        zombies.push((r2, data));
                    }
                    FgOp::ZombieRead { slot, off, len } => {
                        if zombies.is_empty() {
                            continue;
                        }
                        let (r2, data) = &zombies[slot as usize % zombies.len()];
                        let total = data.len() as u64;
                        let off = off as u64 % total;
                        let len = (len as u64 % (total - off)) + 1;
                        // A stale serve inside the lease window must be the
                        // dead ref's final bytes, nothing else; past the
                        // lease (or after the entry dropped) the wire
                        // reports the release as an error.
                        if let Ok(b) = reader.read_ref(r2, off, len).await {
                            assert_eq!(
                                &b[..],
                                &data[off as usize..(off + len) as usize],
                                "lost invalidation served diverged bytes"
                            );
                        }
                    }
                }
            }

            for s in refs.iter_mut() {
                if let Some((r1, r2, _)) = s.take() {
                    raw.release_ref(&r1).await.unwrap();
                    reader.release_ref(&r2).await.unwrap();
                }
            }
            reader.flush_cache().await;
            writer.flush_cache().await;
            for s in raw_srv.iter().chain(fg_srv.iter()) {
                s.with_page_manager(|pm| pm.check_invariants());
            }
            assert_eq!(
                raw_srv[0].free_pages_total(),
                raw_srv[0].capacity_pages_total(),
                "raw plane leaked pages"
            );
            assert_eq!(
                fg_srv[0].free_pages_total(),
                fg_srv[0].capacity_pages_total(),
                "fine-grained plane leaked pages"
            );
        });
    }
}
