//! Cache-coherence oracle (ISSUE 3 satellite).
//!
//! Runs random interleavings of `put_ref` / `read_ref` / COW writes /
//! `rfree` / `release_ref` against two clients in one simulation: one with
//! the DESIGN.md §9 cache + coalescer all-on, one raw. Each client talks
//! to its own (identical) DM server, so their server-side states evolve
//! independently from the same operation sequence. After every operation
//! the two clients must return identical bytes (and agree with a plain
//! `Vec<u8>` model); after a final [`DmNetClient::flush_cache`] both
//! servers must reach the same fully-reclaimed state.

use std::rc::Rc;

use bytes::Bytes;
use dmcommon::Ref;
use dmnet::{start_pool, CacheConfig, DmNetClient, DmServerConfig};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::{Rpc, RpcBuilder};
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig, NodeId};

#[derive(Clone, Debug)]
enum Op {
    /// Publish a fresh ref of `len+1` bytes filled with `fill`.
    Put { len: u16, fill: u8 },
    /// Read a sub-range of a live ref on both clients.
    ReadRef { slot: u8, off: u16, len: u16 },
    /// Map a live ref, COW-write through the mapping, read it back, free.
    CowWrite { slot: u8, fill: u8 },
    /// Map a live ref, read the snapshot, free the mapping (repeats of
    /// this hit the cached client's memoized mapping).
    MapReadFree { slot: u8 },
    /// Release a live ref on both clients.
    Release { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(len, fill)| Op::Put { len, fill }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(slot, off, len)| Op::ReadRef {
            slot,
            off,
            len
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(slot, fill)| Op::CowWrite { slot, fill }),
        any::<u8>().prop_map(|slot| Op::MapReadFree { slot }),
        any::<u8>().prop_map(|slot| Op::Release { slot }),
    ]
}

/// One tracked ref: the raw client's handle, the cached client's handle,
/// and the immutable bytes both must serve while it is alive.
type Slot = Option<(Ref, Ref, Vec<u8>)>;

/// Pick a live slot near `slot`, scanning forward with wraparound.
fn live_slot(refs: &[Slot], slot: u8) -> Option<usize> {
    if refs.is_empty() {
        return None;
    }
    let start = slot as usize % refs.len();
    (0..refs.len())
        .map(|d| (start + d) % refs.len())
        .find(|&i| refs[i].is_some())
}

fn client_rpc(net: &Network, node: NodeId, port: u16) -> Rc<Rpc> {
    RpcBuilder::new(net, node, port).build()
}

proptest! {
    #[test]
    fn cached_client_is_coherent_with_uncached(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 17);
            let params = ModelParams::new();
            let dm_a = net.add_node("dm-raw", NicConfig::default());
            let dm_b = net.add_node("dm-cached", NicConfig::default());
            let c_a = net.add_node("c-raw", NicConfig::default());
            let c_b = net.add_node("c-cached", NicConfig::default());
            let servers = start_pool(&net, &[dm_a, dm_b], &params, DmServerConfig::default());
            let raw = DmNetClient::connect(client_rpc(&net, c_a, 100), vec![servers[0].addr()])
                .await
                .unwrap();
            let cached = DmNetClient::connect_with(
                client_rpc(&net, c_b, 100),
                vec![servers[1].addr()],
                CacheConfig::all_on(),
            )
            .await
            .unwrap();

            let mut refs: Vec<Slot> = Vec::new();
            for op in ops {
                match op {
                    Op::Put { len, fill } => {
                        let len = len as usize % 12288 + 1;
                        let data = Bytes::from(vec![fill; len]);
                        let r1 = raw.put_ref(&data).await.unwrap();
                        let r2 = cached.put_ref(&data).await.unwrap();
                        refs.push(Some((r1, r2, data.to_vec())));
                    }
                    Op::ReadRef { slot, off, len } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let total = data.len() as u64;
                        let off = off as u64 % total;
                        let len = (len as u64 % (total - off)) + 1;
                        let a = raw.read_ref(r1, off, len).await.unwrap();
                        let b = cached.read_ref(r2, off, len).await.unwrap();
                        assert_eq!(a, b, "cached bytes diverge from uncached");
                        assert_eq!(
                            &a[..],
                            &data[off as usize..(off + len) as usize],
                            "bytes diverge from the model"
                        );
                    }
                    Op::CowWrite { slot, fill } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let m1 = raw.map_ref(r1).await.unwrap();
                        let m2 = cached.map_ref(r2).await.unwrap();
                        let patch = Bytes::from(vec![fill; 64.min(data.len())]);
                        raw.rwrite(m1, &patch).await.unwrap();
                        cached.rwrite(m2, &patch).await.unwrap();
                        let a = raw.rread(m1, patch.len() as u64).await.unwrap();
                        let b = cached.rread(m2, patch.len() as u64).await.unwrap();
                        assert_eq!(a, b, "COW mapping bytes diverge");
                        assert_eq!(a, patch);
                        // The write went to a private copy: the ref's
                        // snapshot is untouched on both systems.
                        let probe = 8.min(data.len() as u64);
                        let s1 = raw.read_ref(r1, 0, probe).await.unwrap();
                        let s2 = cached.read_ref(r2, 0, probe).await.unwrap();
                        assert_eq!(s1, s2, "ref snapshot diverges after COW");
                        assert_eq!(&s1[..], &data[..probe as usize]);
                        raw.rfree(m1).await.unwrap();
                        cached.rfree(m2).await.unwrap();
                    }
                    Op::MapReadFree { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, data) = refs[i].as_ref().unwrap();
                        let m1 = raw.map_ref(r1).await.unwrap();
                        let m2 = cached.map_ref(r2).await.unwrap();
                        let a = raw.rread(m1, data.len() as u64).await.unwrap();
                        let b = cached.rread(m2, data.len() as u64).await.unwrap();
                        assert_eq!(a, b, "mapped bytes diverge");
                        assert_eq!(&a[..], &data[..]);
                        raw.rfree(m1).await.unwrap();
                        cached.rfree(m2).await.unwrap();
                    }
                    Op::Release { slot } => {
                        let Some(i) = live_slot(&refs, slot) else { continue };
                        let (r1, r2, _) = refs[i].take().unwrap();
                        raw.release_ref(&r1).await.unwrap();
                        cached.release_ref(&r2).await.unwrap();
                    }
                }
            }

            // Graceful teardown: release everything still live, surface
            // the cached client's hidden state, and require both servers
            // to converge to the same fully-reclaimed condition.
            for s in refs.iter_mut() {
                if let Some((r1, r2, _)) = s.take() {
                    raw.release_ref(&r1).await.unwrap();
                    cached.release_ref(&r2).await.unwrap();
                }
            }
            cached.flush_cache().await;
            for s in &servers {
                s.with_page_manager(|pm| pm.check_invariants());
            }
            let raw_free = servers[0].free_pages_total();
            let cached_free = servers[1].free_pages_total();
            assert_eq!(raw_free, cached_free, "final server states diverge");
            assert_eq!(
                cached_free,
                servers[1].capacity_pages_total(),
                "cached client leaked pages"
            );
        });
    }
}
