//! Hostile-input tests: malformed DM protocol bodies and raw garbage
//! datagrams must produce error responses (or be ignored), never crash the
//! server, and never corrupt the page pool.

use bytes::Bytes;
use dmcommon::DmError;
use dmnet::proto::{parse_response, req};
use dmnet::{start_pool, DmNetClient, DmServerConfig};
use memsim::ModelParams;
use proptest::prelude::*;
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

#[test]
fn malformed_bodies_get_error_responses() {
    let sim = Sim::new();
    sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), 3);
        let dm_node = net.add_node("dm", NicConfig::default());
        let c_node = net.add_node("c", NicConfig::default());
        let pool = start_pool(
            &net,
            &[dm_node],
            &ModelParams::new(),
            DmServerConfig::default(),
        );
        let rpc = RpcBuilder::new(&net, c_node, 100).build();

        // Truncated bodies for every op that requires arguments.
        for ty in [
            req::ALLOC,
            req::FREE,
            req::CREATE_REF,
            req::MAP_REF,
            req::READ,
            req::WRITE,
            req::RELEASE_REF,
            req::READ_REF,
        ] {
            let resp = rpc
                .call(pool[0].addr(), ty, Bytes::from_static(&[1, 2, 3]))
                .await
                .expect("transport ok");
            let err = parse_response(&resp).expect_err("must be a DM error");
            assert!(
                matches!(
                    err,
                    DmError::Malformed | DmError::InvalidAddress | DmError::InvalidRef
                ),
                "op {ty}: unexpected error {err:?}"
            );
        }
        // Bogus pid / addresses.
        let resp = rpc
            .call(pool[0].addr(), req::ALLOC, {
                let mut b = Vec::new();
                b.extend_from_slice(&999_999u32.to_le_bytes());
                b.extend_from_slice(&4096u64.to_le_bytes());
                Bytes::from(b)
            })
            .await
            .unwrap();
        assert!(parse_response(&resp).is_err(), "unknown pid rejected");

        // The server still works afterwards.
        let dm = DmNetClient::connect(rpc, vec![pool[0].addr()])
            .await
            .unwrap();
        let a = dm.ralloc(4096).await.unwrap();
        dm.rwrite(a, &Bytes::from_static(b"still alive"))
            .await
            .unwrap();
        assert_eq!(&dm.rread(a, 11).await.unwrap()[..], b"still alive");
        pool[0].with_page_manager(|pm| pm.check_invariants());
    });
}

#[test]
fn raw_garbage_datagrams_are_ignored() {
    let sim = Sim::new();
    sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), 9);
        let dm_node = net.add_node("dm", NicConfig::default());
        let c_node = net.add_node("c", NicConfig::default());
        let pool = start_pool(
            &net,
            &[dm_node],
            &ModelParams::new(),
            DmServerConfig::default(),
        );

        // Blast raw (non-RPC) datagrams straight at the DM port.
        let ep = net.bind(c_node, 4242);
        let rng = simcore::SimRng::new(5);
        for _ in 0..200 {
            let n = rng.gen_range(64) as usize;
            let mut buf = vec![0u8; n];
            rng.fill_bytes(&mut buf);
            ep.send_to(pool[0].addr(), Bytes::from(buf));
        }
        simcore::sleep(std::time::Duration::from_millis(1)).await;

        // Server is unharmed.
        let rpc = RpcBuilder::new(&net, c_node, 100).build();
        let dm = DmNetClient::connect(rpc, vec![pool[0].addr()])
            .await
            .unwrap();
        let a = dm.ralloc(8192).await.unwrap();
        dm.rwrite(a, &Bytes::from(vec![7u8; 8192])).await.unwrap();
        assert_eq!(
            dm.rread(a, 8192).await.unwrap(),
            Bytes::from(vec![7u8; 8192])
        );
    });
}

#[test]
fn pid_forgery_rejected() {
    let sim = Sim::new();
    sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), 3);
        let dm_node = net.add_node("dm", NicConfig::default());
        let a_node = net.add_node("a", NicConfig::default());
        let b_node = net.add_node("b", NicConfig::default());
        let pool = start_pool(
            &net,
            &[dm_node],
            &ModelParams::new(),
            DmServerConfig::default(),
        );
        let pool_addrs = vec![pool[0].addr()];

        let alice = DmNetClient::connect(
            RpcBuilder::new(&net, a_node, 100).build(),
            pool_addrs.clone(),
        )
        .await
        .unwrap();
        let addr = alice.ralloc(4096).await.unwrap();
        alice
            .rwrite(addr, &Bytes::from_static(b"secret"))
            .await
            .unwrap();

        // Mallory forges Alice's (pid, va) in raw protocol messages from a
        // different endpoint: every pid-bearing op must be rejected.
        let mallory = RpcBuilder::new(&net, b_node, 100).build();
        let forged_read = {
            let mut b = Vec::new();
            b.extend_from_slice(&addr.pid.0.to_le_bytes());
            b.extend_from_slice(&addr.va.to_le_bytes());
            b.extend_from_slice(&6u64.to_le_bytes());
            Bytes::from(b)
        };
        let resp = mallory
            .call(pool[0].addr(), req::READ, forged_read)
            .await
            .unwrap();
        assert!(parse_response(&resp).is_err(), "forged read must fail");
        let forged_free = {
            let mut b = Vec::new();
            b.extend_from_slice(&addr.pid.0.to_le_bytes());
            b.extend_from_slice(&addr.va.to_le_bytes());
            Bytes::from(b)
        };
        let resp = mallory
            .call(pool[0].addr(), req::FREE, forged_free)
            .await
            .unwrap();
        assert!(parse_response(&resp).is_err(), "forged free must fail");

        // Alice is unaffected.
        assert_eq!(&alice.rread(addr, 6).await.unwrap()[..], b"secret");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bodies to arbitrary DM ops never panic the server and
    /// never violate page-pool invariants.
    #[test]
    fn fuzz_dm_protocol(
        msgs in proptest::collection::vec(
            (10u8..=20, proptest::collection::vec(any::<u8>(), 0..64)),
            1..30
        ),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 3);
            let dm_node = net.add_node("dm", NicConfig::default());
            let c_node = net.add_node("c", NicConfig::default());
            let pool = start_pool(
                &net,
                &[dm_node],
                &ModelParams::new(),
                DmServerConfig {
                    capacity_pages: 256,
                    ..Default::default()
                },
            );
            let rpc = RpcBuilder::new(&net, c_node, 100).build();
            for (ty, body) in msgs {
                // Any response (ok or error) is fine; no panic, no hang.
                let _ = rpc.call(pool[0].addr(), ty, Bytes::from(body)).await;
            }
            pool[0].with_page_manager(|pm| pm.check_invariants());
        });
    }
}
