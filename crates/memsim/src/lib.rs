//! # memsim — server memory-subsystem model
//!
//! Charges virtual time and records traffic for every modeled memory
//! operation: heap `memcpy`s performed by RPC stacks and applications,
//! DM-server page copies, and CXL `load`/`store` accesses.
//!
//! Latency classes follow the paper's calibration (§VI-A):
//!
//! | class | latency | source |
//! |---|---|---|
//! | local DDR | 75 ns | \[33\], \[67\] |
//! | cross-socket (UPI) | 125 ns | §VI-A |
//! | CXL pool (device + switch) | 265 ns | \[60\], \[43\], \[3\] |
//!
//! The CXL latency is a live knob ([`ModelParams::set_cxl_latency`]) so the
//! Fig. 12 sweep (75–400 ns) can re-run the same workload under different
//! pool latencies.
//!
//! Traffic counters reproduce what the paper measures with Intel PCM
//! (Fig. 6b memory-bandwidth occupation, Fig. 7c DM traffic per request).

#![warn(missing_docs)]

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use simcore::{Counter, RateResource};

/// Where a memory access lands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemClass {
    /// Same-socket DRAM.
    Local,
    /// Other socket's DRAM over UPI.
    CrossSocket,
    /// The disaggregated CXL pool, through the CXL switch.
    Cxl,
}

/// Shared latency/bandwidth parameters (one per simulation, typically).
#[derive(Clone)]
pub struct ModelParams {
    inner: Rc<ParamsInner>,
}

struct ParamsInner {
    local_latency: Cell<Duration>,
    cross_socket_latency: Cell<Duration>,
    cxl_latency: Cell<Duration>,
    /// Single-thread copy bandwidth (bytes/s) for modeled memcpy.
    copy_bandwidth: Cell<f64>,
    /// CXL link bandwidth per host (bytes/s).
    cxl_bandwidth: Cell<f64>,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            inner: Rc::new(ParamsInner {
                local_latency: Cell::new(Duration::from_nanos(75)),
                cross_socket_latency: Cell::new(Duration::from_nanos(125)),
                cxl_latency: Cell::new(Duration::from_nanos(265)),
                copy_bandwidth: Cell::new(12e9),
                cxl_bandwidth: Cell::new(64e9),
            }),
        }
    }
}

impl ModelParams {
    /// Default paper calibration.
    pub fn new() -> ModelParams {
        ModelParams::default()
    }

    /// Latency for one access of the given class.
    pub fn latency(&self, class: MemClass) -> Duration {
        match class {
            MemClass::Local => self.inner.local_latency.get(),
            MemClass::CrossSocket => self.inner.cross_socket_latency.get(),
            MemClass::Cxl => self.inner.cxl_latency.get(),
        }
    }

    /// Set the CXL pool latency (Fig. 12 sweep).
    pub fn set_cxl_latency(&self, l: Duration) {
        self.inner.cxl_latency.set(l);
    }

    /// Current CXL pool latency.
    pub fn cxl_latency(&self) -> Duration {
        self.inner.cxl_latency.get()
    }

    /// Single-thread copy bandwidth in bytes/s.
    pub fn copy_bandwidth(&self) -> f64 {
        self.inner.copy_bandwidth.get()
    }

    /// Override the copy bandwidth.
    pub fn set_copy_bandwidth(&self, bps: f64) {
        self.inner.copy_bandwidth.set(bps);
    }

    /// CXL link bandwidth in bytes/s.
    pub fn cxl_bandwidth(&self) -> f64 {
        self.inner.cxl_bandwidth.get()
    }

    /// Duration of a modeled memcpy of `bytes` (latency + streaming time).
    pub fn copy_time(&self, bytes: u64) -> Duration {
        self.latency(MemClass::Local) + simcore::transfer_time(bytes, self.copy_bandwidth())
    }

    /// Duration of one access of `bytes` to the given class, assuming the
    /// initial-latency + streaming model.
    pub fn access_time(&self, class: MemClass, bytes: u64) -> Duration {
        let bw = match class {
            MemClass::Cxl => self.cxl_bandwidth(),
            _ => self.copy_bandwidth(),
        };
        self.latency(class) + simcore::transfer_time(bytes, bw)
    }
}

/// Per-node memory subsystem: a bandwidth resource plus traffic counters.
#[derive(Clone)]
pub struct NodeMemory {
    params: ModelParams,
    /// Aggregate DRAM bandwidth of the node (all channels).
    bw: RateResource,
    /// Bytes moved through this node's memory system.
    traffic: Counter,
}

impl NodeMemory {
    /// Create a node memory with `dram_bandwidth` bytes/s of aggregate DRAM
    /// bandwidth.
    pub fn new(name: impl Into<String>, params: ModelParams, dram_bandwidth: f64) -> NodeMemory {
        NodeMemory {
            params,
            bw: RateResource::new(
                format!("{}.mem", name.into()),
                dram_bandwidth,
                Duration::ZERO,
            ),
            traffic: Counter::new(),
        }
    }

    /// Node memory with the paper's default aggregate bandwidth (~60 GB/s
    /// per socket of DDR4-2400).
    pub fn with_defaults(name: impl Into<String>, params: ModelParams) -> NodeMemory {
        NodeMemory::new(name, params, 60e9)
    }

    /// The shared parameter set.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Model a memcpy of `bytes` on this node: counts 2×`bytes` of traffic
    /// (read + write) and occupies DRAM bandwidth accordingly.
    pub async fn memcpy(&self, bytes: u64) {
        self.traffic.add(2 * bytes);
        self.bw.access(2 * bytes).await;
        simcore::sleep(self.params.latency(MemClass::Local)).await;
    }

    /// Model touching (reading or writing once) `bytes` on this node.
    pub async fn touch(&self, bytes: u64) {
        self.traffic.add(bytes);
        self.bw.access(bytes).await;
        simcore::sleep(self.params.latency(MemClass::Local)).await;
    }

    /// Account traffic without charging time (used when the time cost is
    /// charged elsewhere, e.g. on a shared device resource).
    pub fn account(&self, bytes: u64) {
        self.traffic.add(bytes);
    }

    /// Bytes of memory traffic recorded on this node.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic.get()
    }

    /// Memory-bandwidth occupation in bytes/s over `elapsed`.
    pub fn bandwidth_occupation(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.traffic.get() as f64 / elapsed.as_secs_f64()
    }

    /// Reset counters (between warmup and measurement).
    pub fn reset_stats(&self) {
        self.traffic.reset();
        self.bw.reset_stats();
    }
}

/// Timing model of one durable-media device (the log device of the
/// DESIGN.md §12 persistence backend): an append-only device with a fixed
/// per-sync latency plus streaming bandwidth, modeled as a FIFO
/// [`RateResource`] so concurrent appenders serialize naturally.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurableMediaParams {
    /// Fixed latency charged per synced append (the fsync / flush cost).
    /// `ZERO` together with an infinite `bandwidth` makes the device
    /// *zero-cost*: appends are recorded but charge no virtual time and
    /// schedule no events, so an attached durable tier cannot perturb the
    /// executor schedule.
    pub sync_latency: Duration,
    /// Streaming bandwidth in bytes/s. `f64::INFINITY` disables the
    /// per-byte charge.
    pub bandwidth: f64,
}

impl DurableMediaParams {
    /// Paper-era NVMe-class log device: ~5 µs per sync, 2 GB/s streaming.
    pub fn nvme() -> DurableMediaParams {
        DurableMediaParams {
            sync_latency: Duration::from_micros(5),
            bandwidth: 2e9,
        }
    }

    /// A zero-cost device: durability bookkeeping with no time charge (the
    /// `DM_DURABLE=1` schedule-neutral mode).
    pub fn zero_cost() -> DurableMediaParams {
        DurableMediaParams {
            sync_latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
        }
    }

    /// Whether this device charges no virtual time at all.
    pub fn is_zero_cost(&self) -> bool {
        self.sync_latency.is_zero() && self.bandwidth.is_infinite()
    }
}

/// A simulated durable-media device: charges virtual time for appends and
/// recovery scans and counts traffic. The *contents* of the device live
/// with its owner (e.g. `dmnet::wal::Wal`); this object models only time
/// and accounting, so it can be shared by writers and the recovery path.
#[derive(Clone)]
pub struct DurableMedia {
    params: DurableMediaParams,
    dev: RateResource,
    appends: Counter,
    bytes_appended: Counter,
    bytes_scanned: Counter,
}

impl DurableMedia {
    /// Create a device with the given timing parameters.
    pub fn new(name: impl Into<String>, params: DurableMediaParams) -> DurableMedia {
        // An infinite-bandwidth RateResource would produce NaN transfer
        // times; clamp to a finite-but-huge rate for the resource and skip
        // it entirely on the zero-cost path.
        let rate = if params.bandwidth.is_finite() {
            params.bandwidth
        } else {
            1e18
        };
        DurableMedia {
            params,
            dev: RateResource::new(name, rate, params.sync_latency),
            appends: Counter::new(),
            bytes_appended: Counter::new(),
            bytes_scanned: Counter::new(),
        }
    }

    /// The timing parameters.
    pub fn params(&self) -> DurableMediaParams {
        self.params
    }

    /// Durably append `bytes`: counts the traffic and, unless the device
    /// is zero-cost, occupies the device for the sync latency plus the
    /// streaming time. Zero-cost appends complete without yielding, so
    /// they cannot perturb the executor schedule.
    pub async fn append(&self, bytes: u64) {
        self.appends.add(1);
        self.bytes_appended.add(bytes);
        if self.params.is_zero_cost() {
            return;
        }
        self.dev.access(bytes).await;
    }

    /// Record an append without charging time (background bookkeeping
    /// paths such as lease-reclaim records, whose latency is not on any
    /// acknowledged request's critical path).
    pub fn append_untimed(&self, bytes: u64) {
        self.appends.add(1);
        self.bytes_appended.add(bytes);
    }

    /// Charge a recovery scan of `bytes` (reading the log back after a
    /// crash). Zero-cost devices charge nothing.
    pub async fn scan(&self, bytes: u64) {
        self.bytes_scanned.add(bytes);
        if self.params.is_zero_cost() {
            return;
        }
        self.dev.access(bytes).await;
    }

    /// Synced appends so far.
    pub fn appends(&self) -> u64 {
        self.appends.get()
    }

    /// Bytes appended so far.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended.get()
    }

    /// Bytes read back by recovery scans so far.
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn default_latencies_match_paper() {
        let p = ModelParams::new();
        assert_eq!(p.latency(MemClass::Local), Duration::from_nanos(75));
        assert_eq!(p.latency(MemClass::CrossSocket), Duration::from_nanos(125));
        assert_eq!(p.latency(MemClass::Cxl), Duration::from_nanos(265));
    }

    #[test]
    fn cxl_latency_knob() {
        let p = ModelParams::new();
        p.set_cxl_latency(Duration::from_nanos(400));
        assert_eq!(p.latency(MemClass::Cxl), Duration::from_nanos(400));
        // Clones share the knob (it's one simulation-wide parameter set).
        let q = p.clone();
        q.set_cxl_latency(Duration::from_nanos(75));
        assert_eq!(p.cxl_latency(), Duration::from_nanos(75));
    }

    #[test]
    fn copy_time_scales_with_size() {
        let p = ModelParams::new();
        let t1 = p.copy_time(4096);
        let t2 = p.copy_time(8192);
        assert!(t2 > t1);
        // 4096B at 12GB/s = ~342ns + 75ns latency.
        assert_eq!(t1, Duration::from_nanos(75 + 342));
    }

    #[test]
    fn access_time_uses_class_latency_and_bw() {
        let p = ModelParams::new();
        let cxl = p.access_time(MemClass::Cxl, 4096);
        let loc = p.access_time(MemClass::Local, 4096);
        assert_eq!(cxl, Duration::from_nanos(265 + 64)); // 4096B @ 64GB/s
        assert_eq!(loc, Duration::from_nanos(75 + 342)); // 4096B @ 12GB/s
                                                         // For small (cacheline-scale) accesses latency dominates: CXL slower.
        assert!(p.access_time(MemClass::Cxl, 64) > p.access_time(MemClass::Local, 64));
    }

    #[test]
    fn memcpy_counts_double_traffic_and_charges_time() {
        let sim = Sim::new();
        let mem = NodeMemory::with_defaults("n0", ModelParams::new());
        let m2 = mem.clone();
        let t = sim.block_on(async move {
            m2.memcpy(6000).await;
            simcore::now().nanos()
        });
        assert_eq!(mem.traffic_bytes(), 12_000);
        // 12000B at 60GB/s = 200ns + 75ns latency.
        assert_eq!(t, 275);
    }

    #[test]
    fn account_is_free_of_time() {
        let sim = Sim::new();
        let mem = NodeMemory::with_defaults("n0", ModelParams::new());
        let m2 = mem.clone();
        let t = sim.block_on(async move {
            m2.account(1_000_000);
            simcore::now().nanos()
        });
        assert_eq!(t, 0);
        assert_eq!(mem.traffic_bytes(), 1_000_000);
    }

    #[test]
    fn durable_media_zero_cost_charges_no_time_but_counts() {
        let sim = Sim::new();
        let dev = DurableMedia::new("wal0", DurableMediaParams::zero_cost());
        let d2 = dev.clone();
        let t = sim.block_on(async move {
            d2.append(4096).await;
            d2.append(128).await;
            d2.scan(4224).await;
            simcore::now().nanos()
        });
        assert_eq!(t, 0, "zero-cost device charged virtual time");
        assert_eq!(dev.appends(), 2);
        assert_eq!(dev.bytes_appended(), 4224);
        assert_eq!(dev.bytes_scanned(), 4224);
    }

    #[test]
    fn durable_media_nvme_charges_sync_latency_plus_streaming() {
        let sim = Sim::new();
        let dev = DurableMedia::new("wal0", DurableMediaParams::nvme());
        let d2 = dev.clone();
        let t = sim.block_on(async move {
            d2.append(2000).await;
            simcore::now().nanos()
        });
        // 5 µs sync + 2000 B at 2 GB/s = 1 µs streaming.
        assert_eq!(t, 6_000);
        // Untimed appends count traffic but never touch the device clock.
        dev.append_untimed(500);
        assert_eq!(dev.appends(), 2);
        assert_eq!(dev.bytes_appended(), 2500);
    }

    #[test]
    fn bandwidth_occupation_reports_rate() {
        let mem = NodeMemory::with_defaults("n0", ModelParams::new());
        mem.account(10_000_000);
        let occ = mem.bandwidth_occupation(Duration::from_millis(1));
        assert!((occ - 1e10).abs() / 1e10 < 1e-9);
        mem.reset_stats();
        assert_eq!(mem.traffic_bytes(), 0);
    }
}
