//! The nested-RPC-call application (paper §VI-B, Fig. 5).
//!
//! "The client calls an RPC with a 4 KB size array as the argument, and the
//! called microservice directly passes the array to the next microservice
//! without using it. After several repeated RPC calls, the final
//! microservice aggregates the array and returns the result."
//!
//! Under eRPC the argument bytes are re-serialized at every hop (and copied
//! between the request and the next call's buffer); under DmRPC only the
//! `Ref` moves until the final service materializes the data.

use std::rc::Rc;

use bytes::Bytes;
use dmcommon::DmResult;
use dmrpc::{DmRpc, Value};
use simnet::Addr;
use telemetry::SpanKind;

use crate::cluster::Cluster;
use crate::codec::{u64_value, value_u64};

/// Request type used along the chain.
pub const CHAIN_REQ: u8 = 1;

/// A deployed chain application.
pub struct ChainApp {
    /// The client's endpoint (on its own node).
    pub client: Rc<DmRpc>,
    /// First service in the chain.
    pub entry: Addr,
    /// Number of services (nested RPC calls).
    pub length: usize,
}

/// Deploy a chain of `length` services, each on its own compute server,
/// plus a client node. Must be called inside the simulation.
pub async fn build_chain(cluster: &Cluster, length: usize) -> ChainApp {
    assert!(length >= 1);
    // Create all endpoints first so each service can know its successor.
    let mut endpoints = Vec::with_capacity(length);
    let mut nodes = Vec::with_capacity(length);
    for i in 0..length {
        let node = cluster.add_server(format!("svc{i}"));
        let ep = cluster.endpoint(&node, 100).await;
        endpoints.push(ep);
        nodes.push(node);
    }
    for i in 0..length {
        let ep = endpoints[i].clone();
        let node = nodes[i].clone();
        let next: Option<Addr> = endpoints.get(i + 1).map(|e| e.addr());
        ep.rpc().clone().register(CHAIN_REQ, move |ctx| {
            let ep = ep.clone();
            let node = node.clone();
            async move {
                match next {
                    Some(next_addr) => {
                        // Middle service: forward without using the data.
                        // Pass-by-value forwarding costs an application-level
                        // copy of the argument into the next request buffer.
                        if let Ok(v) = Value::decode(&ctx.payload) {
                            if !v.is_by_ref() {
                                let mut copy = telemetry::leaf_span(
                                    SpanKind::MemCharge,
                                    "chain.forward_copy",
                                    node.id.0,
                                );
                                if let Some(s) = copy.as_mut() {
                                    s.attr("bytes", v.len());
                                }
                                node.mem.memcpy(v.len()).await;
                                drop(copy);
                            }
                        }
                        match ep.rpc().call(next_addr, CHAIN_REQ, ctx.payload).await {
                            Ok(resp) => resp,
                            Err(_) => Value::Inline(Bytes::new()).encode(),
                        }
                    }
                    None => {
                        // Final service: materialize and aggregate.
                        let Ok(v) = Value::decode(&ctx.payload) else {
                            return Value::Inline(Bytes::new()).encode();
                        };
                        let Ok(data) = ep.fetch(&v).await else {
                            return Value::Inline(Bytes::new()).encode();
                        };
                        // Aggregation streams the buffer through memory.
                        let mut agg =
                            telemetry::leaf_span(SpanKind::MemCharge, "chain.aggregate", node.id.0);
                        if let Some(s) = agg.as_mut() {
                            s.attr("bytes", data.len() as u64);
                        }
                        node.mem.touch(data.len() as u64).await;
                        drop(agg);
                        let sum: u64 = data.iter().map(|&b| b as u64).sum();
                        u64_value(sum).encode()
                    }
                }
            }
        });
    }
    let client_node = cluster.add_server("chain-client");
    let client = cluster.endpoint(&client_node, 100).await;
    ChainApp {
        client,
        entry: endpoints[0].addr(),
        length,
    }
}

impl ChainApp {
    /// Issue one end-to-end request with a fresh `size`-byte argument,
    /// verifying the aggregate on return. Returns the checksum.
    pub async fn request(&self, payload: &Bytes) -> DmResult<u64> {
        // Trace root for the whole end-to-end request (head-sampled); the
        // argument upload, every chain hop, the aggregation and the
        // deferred release all nest under it.
        let mut root = telemetry::start_trace("chain.request", self.client.addr().node.0);
        if let Some(s) = root.as_mut() {
            s.attr("payload_bytes", payload.len() as u64);
            s.attr("chain_length", self.length as u64);
        }
        let v = self.client.make_value(payload.clone()).await?;
        // Release the argument whether or not the call succeeded: a timed-out
        // request must not leak its by-reference pages.
        let reply = self.client.call(self.entry, CHAIN_REQ, &v).await;
        self.client.release_async(v);
        value_u64(&reply?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;

    fn expected_sum(payload: &Bytes) -> u64 {
        payload.iter().map(|&b| b as u64).sum()
    }

    fn run(kind: SystemKind, length: usize, size: usize) -> (u64, u64, u64) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 77);
            let app = build_chain(&cluster, length).await;
            let payload = Bytes::from((0..size).map(|i| (i % 251) as u8).collect::<Vec<_>>());
            let want = expected_sum(&payload);
            let t0 = simcore::now();
            let got = app.request(&payload).await.unwrap();
            let elapsed = (simcore::now() - t0).as_nanos() as u64;
            assert_eq!(got, want);
            // Middle-node traffic: node for svc1 (a pure forwarder).
            let mid = cluster.servers()[1].clone();
            (got, mid.mem.traffic_bytes(), elapsed)
        })
    }

    #[test]
    fn chain_correct_on_all_three_systems() {
        for kind in SystemKind::ALL {
            let (_, _, _) = run(kind, 4, 4096);
        }
    }

    #[test]
    fn forwarders_move_no_data_under_dmrpc() {
        let (_, erpc_mid, _) = run(SystemKind::Erpc, 4, 16384);
        let (_, net_mid, _) = run(SystemKind::DmNet, 4, 16384);
        assert!(
            erpc_mid > 16384,
            "eRPC forwarder must move the payload: {erpc_mid}"
        );
        assert!(net_mid < 2048, "DmRPC forwarder moves only refs: {net_mid}");
    }

    #[test]
    fn erpc_latency_grows_faster_with_chain_length() {
        let (_, _, e3) = run(SystemKind::Erpc, 3, 65536);
        let (_, _, e6) = run(SystemKind::Erpc, 6, 65536);
        let (_, _, n3) = run(SystemKind::DmNet, 3, 65536);
        let (_, _, n6) = run(SystemKind::DmNet, 6, 65536);
        let erpc_growth = e6 as f64 - e3 as f64;
        let net_growth = n6 as f64 - n3 as f64;
        assert!(
            erpc_growth > 2.0 * net_growth,
            "per-hop cost: eRPC +{erpc_growth}ns vs DmRPC-net +{net_growth}ns"
        );
    }

    #[test]
    fn single_call_chain_works() {
        let (_, _, _) = run(SystemKind::DmCxl, 1, 4096);
    }
}
