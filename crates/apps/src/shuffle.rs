//! All-to-all shuffle — the data-processing workload (Spark-style) that
//! motivates pass-by-reference in the paper's introduction (§I, §III:
//! frameworks like Spark integrate an in-memory store precisely because
//! RPC's pass-by-value cannot carry shuffle partitions efficiently).
//!
//! `M` mappers each produce `R` partitions; every reducer fetches its
//! partition from every mapper (M×R transfers). Under DmRPC a mapper
//! *publishes* each partition once and hands out refs; reducers pull the
//! bytes from DM exactly once each, and the mapper's NIC never re-sends.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};
use dmcommon::{DmError, DmResult};
use dmrpc::{DmRpc, Value};
use simcore::SimRng;
use simnet::Addr;

use crate::cluster::{Cluster, ServiceNode};

/// Run map tasks: `[n_partitions u16][bytes_per_partition u32][seed u64]`.
pub const MAP_REQ: u8 = 20;
/// Fetch one partition: `[partition u16]` → `[value]`.
pub const FETCH_PART: u8 = 21;

/// One deployed shuffle: `mappers` map-side servers and `reducers`
/// reduce-side servers.
pub struct ShuffleApp {
    mappers: Vec<Rc<DmRpc>>,
    reducers: Vec<Rc<DmRpc>>,
    mapper_addrs: Vec<Addr>,
    /// Mapper server handles (NIC metrics).
    pub mapper_nodes: Vec<ServiceNode>,
    /// Reducer server handles.
    pub reducer_nodes: Vec<ServiceNode>,
}

/// Deploy `m` mappers and `r` reducers on dedicated servers.
pub async fn build_shuffle(cluster: &Cluster, m: usize, r: usize) -> ShuffleApp {
    let mut mappers = Vec::new();
    let mut mapper_addrs = Vec::new();
    let mut mapper_nodes = Vec::new();
    for i in 0..m {
        let node = cluster.add_server(format!("mapper{i}"));
        let ep = cluster.endpoint(&node, 100).await;
        // Partition store: partition id -> published Value.
        let parts: Rc<RefCell<HashMap<u16, Value>>> = Rc::new(RefCell::new(HashMap::new()));
        {
            // MAP: generate deterministic partition contents and publish.
            let ep2 = ep.clone();
            let parts = parts.clone();
            let node = node.clone();
            ep.rpc().register(MAP_REQ, move |ctx| {
                let ep = ep2.clone();
                let parts = parts.clone();
                let node = node.clone();
                async move {
                    if ctx.payload.len() < 14 {
                        return Bytes::new();
                    }
                    let n = u16::from_le_bytes(ctx.payload[0..2].try_into().expect("len ok"));
                    let bytes =
                        u32::from_le_bytes(ctx.payload[2..6].try_into().expect("len ok")) as usize;
                    let seed = u64::from_le_bytes(ctx.payload[6..14].try_into().expect("len ok"));
                    // Release any previous round's partitions (in key order:
                    // HashMap drain order would be nondeterministic).
                    let old: Vec<Value> = {
                        let mut p = parts.borrow_mut();
                        let mut keys: Vec<u16> = p.keys().copied().collect();
                        keys.sort_unstable();
                        keys.iter().filter_map(|k| p.remove(k)).collect()
                    };
                    for v in old {
                        ep.release_async(v);
                    }
                    let rng = SimRng::new(seed);
                    for p in 0..n {
                        let mut buf = vec![0u8; bytes];
                        rng.fill_bytes(&mut buf);
                        // Map work: producing the partition streams it once.
                        node.mem.touch(bytes as u64).await;
                        match ep.make_value(Bytes::from(buf)).await {
                            Ok(v) => {
                                parts.borrow_mut().insert(p, v);
                            }
                            Err(_) => return Bytes::new(),
                        }
                    }
                    Bytes::from_static(b"ok")
                }
            });
        }
        {
            // FETCH_PART: hand out the published value (no data touched).
            let parts = parts.clone();
            ep.rpc().register(FETCH_PART, move |ctx| {
                let parts = parts.clone();
                async move {
                    let Some(id_bytes) = ctx.payload.get(..2) else {
                        return Value::Inline(Bytes::new()).encode();
                    };
                    let id = u16::from_le_bytes(id_bytes.try_into().expect("2 bytes"));
                    match parts.borrow().get(&id) {
                        Some(v) => v.encode(),
                        None => Value::Inline(Bytes::new()).encode(),
                    }
                }
            });
        }
        mapper_addrs.push(ep.addr());
        mappers.push(ep);
        mapper_nodes.push(node);
    }
    let mut reducers = Vec::new();
    let mut reducer_nodes = Vec::new();
    for i in 0..r {
        let node = cluster.add_server(format!("reducer{i}"));
        reducers.push(cluster.endpoint(&node, 100).await);
        reducer_nodes.push(node);
    }
    ShuffleApp {
        mappers,
        reducers,
        mapper_addrs,
        mapper_nodes,
        reducer_nodes,
    }
}

impl ShuffleApp {
    /// Run the map phase: every mapper produces `reducers` partitions of
    /// `bytes` each (contents deterministic in `seed` + mapper index).
    pub async fn map_phase(&self, bytes: usize, seed: u64) -> DmResult<()> {
        let n = self.reducers.len() as u16;
        let mut handles = Vec::new();
        for (mi, m) in self.mappers.iter().enumerate() {
            let mut req = BytesMut::with_capacity(14);
            req.put_u16_le(n);
            req.put_u32_le(bytes as u32);
            req.put_u64_le(seed ^ (mi as u64) << 32);
            let m = m.clone();
            let dst = self.mapper_addrs[mi];
            let req = req.freeze();
            handles.push(simcore::spawn(async move {
                m.rpc().call(dst, MAP_REQ, req).await.is_ok()
            }));
        }
        for h in handles {
            if !h.await {
                return Err(DmError::Transport);
            }
        }
        Ok(())
    }

    /// Run the reduce phase: every reducer fetches its partition from every
    /// mapper and folds it. Returns per-reducer checksums.
    pub async fn reduce_phase(&self) -> DmResult<Vec<u64>> {
        let mut handles = Vec::new();
        for (ri, red) in self.reducers.iter().enumerate() {
            let red = red.clone();
            let mapper_addrs = self.mapper_addrs.clone();
            handles.push(simcore::spawn(async move {
                let mut sum = 0u64;
                for &ma in &mapper_addrs {
                    let mut req = BytesMut::with_capacity(2);
                    req.put_u16_le(ri as u16);
                    let resp = red
                        .rpc()
                        .call(ma, FETCH_PART, req.freeze())
                        .await
                        .map_err(|_| DmError::Transport)?;
                    let v = Value::decode(&resp)?;
                    let data = red.fetch(&v).await?;
                    sum = sum.wrapping_add(data.iter().map(|&b| b as u64).sum::<u64>());
                }
                Ok::<u64, DmError>(sum)
            }));
        }
        let mut out = Vec::new();
        for h in handles {
            out.push(h.await?);
        }
        Ok(out)
    }

    /// Total bytes transmitted by all mapper NICs (shuffle amplification
    /// metric).
    pub fn mapper_tx_bytes(&self, cluster: &Cluster) -> u64 {
        self.mapper_nodes
            .iter()
            .map(|n| cluster.net.node_tx_bytes(n.id))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;

    fn run(kind: SystemKind, m: usize, r: usize, bytes: usize) -> (Vec<u64>, u64) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 61);
            let app = build_shuffle(&cluster, m, r).await;
            app.map_phase(bytes, 7).await.unwrap();
            cluster.net.reset_stats();
            let sums = app.reduce_phase().await.unwrap();
            let tx = app.mapper_tx_bytes(&cluster);
            (sums, tx)
        })
    }

    #[test]
    fn shuffle_checksums_agree_across_systems() {
        let (erpc, _) = run(SystemKind::Erpc, 3, 2, 20_000);
        let (net, _) = run(SystemKind::DmNet, 3, 2, 20_000);
        let (cxl, _) = run(SystemKind::DmCxl, 3, 2, 20_000);
        assert_eq!(erpc, net);
        assert_eq!(erpc, cxl);
        assert_eq!(erpc.len(), 2);
        assert!(erpc.iter().all(|&s| s > 0));
    }

    #[test]
    fn mappers_never_resend_partitions_under_dmrpc() {
        let (_, erpc_tx) = run(SystemKind::Erpc, 4, 4, 32_768);
        let (_, dm_tx) = run(SystemKind::DmNet, 4, 4, 32_768);
        // eRPC: each of 16 partitions crosses the mapper NIC in full.
        assert!(erpc_tx >= 16 * 32_768, "erpc mapper tx {erpc_tx}");
        // DmRPC: only refs leave the mappers during reduce.
        assert!(dm_tx < 64_000, "dm mapper tx {dm_tx}");
    }

    #[test]
    fn repeated_rounds_release_old_partitions() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 61);
            let app = build_shuffle(&cluster, 2, 2).await;
            for round in 0..10u64 {
                app.map_phase(16_384, round).await.unwrap();
                app.reduce_phase().await.unwrap();
            }
            simcore::sleep(std::time::Duration::from_millis(1)).await;
            // Only the final round's 2 mappers x 2 partitions x 4 pages
            // stay pinned.
            let used = cluster.dm_servers[0].with_page_manager(|pm| {
                pm.check_invariants();
                pm.capacity_pages() - pm.free_pages()
            });
            assert!(used <= 16 + 8, "partition leak across rounds: {used} pages");
        });
    }
}
