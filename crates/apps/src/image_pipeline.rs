//! The 7-tier Cloud Image Processing application (paper §VI-E, Figs. 9–10).
//!
//! `Client → Firewall → Load balance → Image processing (×2) →
//! {Transcoding | Compressing} → back to Client`.
//!
//! The firewall checks an authorization header without touching the image;
//! the load balancer forwards round-robin; image processing parses the
//! request and routes by operation; transcoding/compressing materialize the
//! image, burn per-byte CPU, and return a processed image of the same (or
//! half) size. Under DmRPC the image travels as a `Ref` end to end and is
//! only read where it is processed.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use dmcommon::{DmError, DmResult};
use dmrpc::{DmRpc, Value};
use simnet::Addr;

use crate::cluster::{Cluster, ServiceNode};
use crate::codec::{op_value, parse_op_value};

/// Request type used throughout the pipeline.
pub const IMG_REQ: u8 = 3;

/// Operation: transcode (same-size output).
pub const OP_TRANSCODE: u8 = 0;
/// Operation: compress (half-size output).
pub const OP_COMPRESS: u8 = 1;
/// Unauthorized marker (rejected by the firewall).
pub const OP_UNAUTHORIZED: u8 = 0xFF;

/// Per-byte CPU cost of image work (transcode/compress kernels).
const WORK_PER_BYTE: Duration = Duration::from_nanos(1);

/// A deployed image-processing pipeline.
pub struct ImagePipeline {
    /// Client endpoint.
    pub client: Rc<DmRpc>,
    /// Entry point (the firewall).
    pub entry: Addr,
    /// All service nodes, for stats: firewall, lb, proc a/b, transcode,
    /// compress.
    pub service_nodes: Vec<ServiceNode>,
}

async fn build_worker(cluster: &Cluster, name: &str, shrink: bool) -> (Rc<DmRpc>, ServiceNode) {
    let node = cluster.add_server(name);
    let ep = cluster.endpoint(&node, 100).await;
    let wep = ep.clone();
    let wnode = node.clone();
    ep.rpc().register(IMG_REQ, move |ctx| {
        let ep = wep.clone();
        let node = wnode.clone();
        async move {
            let Ok((_op, v)) = parse_op_value(&ctx.payload) else {
                return Value::Inline(Bytes::new()).encode();
            };
            let Ok(img) = ep.fetch(&v).await else {
                return Value::Inline(Bytes::new()).encode();
            };
            // Image kernel: stream the input, burn CPU per byte, produce
            // the output buffer.
            node.mem.touch(img.len() as u64).await;
            node.cpu.execute(WORK_PER_BYTE * img.len() as u32).await;
            let out_len = if shrink { img.len() / 2 } else { img.len() };
            let mut out = vec![0u8; out_len];
            for (i, o) in out.iter_mut().enumerate() {
                *o = img[i % img.len()].wrapping_add(1);
            }
            node.mem.touch(out_len as u64).await;
            match ep.make_value(Bytes::from(out)).await {
                Ok(result) => result.encode(),
                Err(_) => Value::Inline(Bytes::new()).encode(),
            }
        }
    });
    (ep, node)
}

/// Deploy the 7-tier pipeline (client + 6 service servers).
pub async fn build_pipeline(cluster: &Cluster) -> ImagePipeline {
    let (transcode_ep, transcode_node) = build_worker(cluster, "transcode", false).await;
    let (compress_ep, compress_node) = build_worker(cluster, "compress", true).await;
    let transcode_addr = transcode_ep.addr();
    let compress_addr = compress_ep.addr();

    // Two image-processing instances that parse and route.
    let mut proc_addrs = Vec::new();
    let mut proc_nodes = Vec::new();
    for name in ["imgproc-a", "imgproc-b"] {
        let node = cluster.add_server(name);
        let ep = cluster.endpoint(&node, 100).await;
        let pep = ep.clone();
        ep.rpc().register(IMG_REQ, move |ctx| {
            let ep = pep.clone();
            async move {
                // Parse the request header (not the image).
                let Ok((op, _v)) = parse_op_value(&ctx.payload) else {
                    return Value::Inline(Bytes::new()).encode();
                };
                let target = if op == OP_COMPRESS {
                    compress_addr
                } else {
                    transcode_addr
                };
                match ep.rpc().call(target, IMG_REQ, ctx.payload).await {
                    Ok(resp) => resp,
                    Err(_) => Value::Inline(Bytes::new()).encode(),
                }
            }
        });
        proc_addrs.push(ep.addr());
        proc_nodes.push(node);
    }

    // Load balancer.
    let lb_node = cluster.add_server("lb");
    let lb_ep = cluster.endpoint(&lb_node, 100).await;
    {
        let ep = lb_ep.clone();
        let next = Rc::new(Cell::new(0usize));
        lb_ep.rpc().register(IMG_REQ, move |ctx| {
            let ep = ep.clone();
            let proc_addrs = proc_addrs.clone();
            let next = next.clone();
            async move {
                let i = next.get();
                next.set((i + 1) % proc_addrs.len());
                match ep.rpc().call(proc_addrs[i], IMG_REQ, ctx.payload).await {
                    Ok(resp) => resp,
                    Err(_) => Value::Inline(Bytes::new()).encode(),
                }
            }
        });
    }

    // Firewall.
    let fw_node = cluster.add_server("firewall");
    let fw_ep = cluster.endpoint(&fw_node, 100).await;
    let lb_addr = lb_ep.addr();
    {
        let ep = fw_ep.clone();
        fw_ep.rpc().register(IMG_REQ, move |ctx| {
            let ep = ep.clone();
            async move {
                // Permission check reads only the header byte.
                match ctx.payload.first() {
                    Some(&OP_UNAUTHORIZED) | None => Value::Inline(Bytes::new()).encode(),
                    Some(_) => match ep.rpc().call(lb_addr, IMG_REQ, ctx.payload).await {
                        Ok(resp) => resp,
                        Err(_) => Value::Inline(Bytes::new()).encode(),
                    },
                }
            }
        });
    }

    let client_node = cluster.add_server("client");
    let client = cluster.endpoint(&client_node, 100).await;
    ImagePipeline {
        client,
        entry: fw_ep.addr(),
        service_nodes: vec![
            fw_node,
            lb_node,
            proc_nodes[0].clone(),
            proc_nodes[1].clone(),
            transcode_node,
            compress_node,
        ],
    }
}

impl ImagePipeline {
    /// Issue one request from the default client; returns the processed
    /// image bytes.
    pub async fn request(&self, op: u8, image: &Bytes) -> DmResult<Bytes> {
        self.request_via(&self.client, op, image).await
    }

    /// Issue one request from an arbitrary client endpoint (load can be
    /// offered from several client servers, as the paper does).
    pub async fn request_via(&self, client: &Rc<DmRpc>, op: u8, image: &Bytes) -> DmResult<Bytes> {
        let v = client.make_value(image.clone()).await?;
        let resp = client
            .rpc()
            .call(self.entry, IMG_REQ, op_value(op, &v))
            .await
            .map_err(|_| DmError::Transport)?;
        let rv = Value::decode(&resp)?;
        if rv.is_empty() {
            client.release(&v).await?;
            return Err(DmError::InvalidRef);
        }
        let out = client.fetch(&rv).await?;
        client.release_async(rv);
        client.release_async(v);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;

    fn run_one(kind: SystemKind, op: u8, size: usize) -> (usize, Vec<u64>) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 13);
            let app = build_pipeline(&cluster).await;
            cluster.reset_stats();
            let image = Bytes::from((0..size).map(|i| (i % 200) as u8).collect::<Vec<_>>());
            let out = app.request(op, &image).await.unwrap();
            let traffic = app
                .service_nodes
                .iter()
                .map(|n| n.mem.traffic_bytes())
                .collect();
            (out.len(), traffic)
        })
    }

    #[test]
    fn transcode_keeps_size_compress_halves() {
        for kind in SystemKind::ALL {
            let (t_len, _) = run_one(kind, OP_TRANSCODE, 16384);
            assert_eq!(t_len, 16384, "{kind:?}");
            let (c_len, _) = run_one(kind, OP_COMPRESS, 16384);
            assert_eq!(c_len, 8192, "{kind:?}");
        }
    }

    #[test]
    fn transcode_output_is_input_plus_one() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 13);
            let app = build_pipeline(&cluster).await;
            let image = Bytes::from(vec![7u8; 8192]);
            let out = app.request(OP_TRANSCODE, &image).await.unwrap();
            assert!(out.iter().all(|&b| b == 8), "kernel applied to all bytes");
        });
    }

    #[test]
    fn unauthorized_rejected_at_firewall() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 13);
            let app = build_pipeline(&cluster).await;
            let image = Bytes::from(vec![1u8; 4096]);
            let r = app.request(OP_UNAUTHORIZED, &image).await;
            assert!(r.is_err());
            // The workers never saw the request.
            assert_eq!(app.service_nodes[4].mem.traffic_bytes(), 0);
            assert_eq!(app.service_nodes[5].mem.traffic_bytes(), 0);
        });
    }

    #[test]
    fn movers_carry_no_image_data_under_dmrpc() {
        let (_, erpc) = run_one(SystemKind::Erpc, OP_TRANSCODE, 65536);
        let (_, dm) = run_one(SystemKind::DmNet, OP_TRANSCODE, 65536);
        // Firewall (idx 0) and LB (idx 1) are pure movers.
        assert!(erpc[0] > 65536 && erpc[1] > 65536, "{erpc:?}");
        assert!(dm[0] < 4096 && dm[1] < 4096, "{dm:?}");
        // The transcode worker touched the image either way.
        assert!(erpc[4] >= 65536 && dm[4] >= 65536);
    }
}
