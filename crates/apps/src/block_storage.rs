//! Replicated block storage — the paper's motivating data-intensive RPC
//! workload ("the commodity block storage service uses RPC to transfer
//! large data blocks (tens to hundreds of KBs)", §I, citing \[28\], \[49\]).
//!
//! Topology: `client → primary → {replica 1, replica 2}` with 3-way
//! replication. Under pass-by-value the primary re-transmits every block
//! twice (write amplification on its NIC and memory); under DmRPC the
//! primary forwards the block's `Ref` and each replica pulls the bytes
//! from DM directly.
//!
//! Replicas materialize blocks locally (modeling durable media); the
//! primary serves reads from its in-memory index.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};
use dmcommon::{DmError, DmResult};
use dmrpc::{DmRpc, Value};
use simnet::Addr;

use crate::cluster::{Cluster, ServiceNode};

/// Write a block: `[block_id u64][value]` → ack.
pub const BLK_WRITE: u8 = 10;
/// Read a block: `[block_id u64]` → `[value]`.
pub const BLK_READ: u8 = 11;
/// Internal replication: `[block_id u64][value]` → ack.
pub const BLK_REPLICATE: u8 = 12;

/// A deployed block-storage service.
pub struct BlockStore {
    /// Client endpoint.
    pub client: Rc<DmRpc>,
    /// Primary address.
    pub primary: Addr,
    /// Primary server (write-amplification metrics).
    pub primary_node: ServiceNode,
    /// Replica servers.
    pub replica_nodes: Vec<ServiceNode>,
    replicas_data: Vec<Rc<RefCell<HashMap<u64, Bytes>>>>,
}

/// Deploy a primary plus `n_replicas` replicas and one client.
pub async fn build_block_store(cluster: &Cluster, n_replicas: usize) -> BlockStore {
    // Replicas: materialize replicated blocks.
    let mut replica_addrs = Vec::new();
    let mut replica_nodes = Vec::new();
    let mut replicas_data = Vec::new();
    for i in 0..n_replicas {
        let node = cluster.add_server(format!("replica{i}"));
        let ep = cluster.endpoint(&node, 100).await;
        let data: Rc<RefCell<HashMap<u64, Bytes>>> = Rc::new(RefCell::new(HashMap::new()));
        {
            let ep2 = ep.clone();
            let node = node.clone();
            let data = data.clone();
            ep.rpc().register(BLK_REPLICATE, move |ctx| {
                let ep = ep2.clone();
                let node = node.clone();
                let data = data.clone();
                async move {
                    if ctx.payload.len() < 8 {
                        return Bytes::new();
                    }
                    let id = u64::from_le_bytes(ctx.payload[..8].try_into().expect("len ok"));
                    let Ok(v) = Value::decode(&ctx.payload.slice(8..)) else {
                        return Bytes::new();
                    };
                    // Pull the block bytes (from DM under DmRPC) and
                    // persist a local copy.
                    let Ok(block) = ep.fetch(&v).await else {
                        return Bytes::new();
                    };
                    node.mem.touch(block.len() as u64).await; // media write
                    data.borrow_mut().insert(id, block);
                    Bytes::from_static(b"ok")
                }
            });
        }
        replica_addrs.push(ep.addr());
        replica_nodes.push(node);
        replicas_data.push(data);
    }

    // Primary: indexes blocks as Values; fans replication out in parallel.
    let primary_node = cluster.add_server("primary");
    let primary_ep = cluster.endpoint(&primary_node, 100).await;
    let index: Rc<RefCell<HashMap<u64, Value>>> = Rc::new(RefCell::new(HashMap::new()));
    {
        let ep = primary_ep.clone();
        let index = index.clone();
        let replica_addrs2 = replica_addrs.clone();
        primary_ep.rpc().register(BLK_WRITE, move |ctx| {
            let ep = ep.clone();
            let index = index.clone();
            let replica_addrs = replica_addrs2.clone();
            async move {
                if ctx.payload.len() < 8 {
                    return Bytes::new();
                }
                let id = u64::from_le_bytes(ctx.payload[..8].try_into().expect("len ok"));
                let Ok(v) = Value::decode(&ctx.payload.slice(8..)) else {
                    return Bytes::new();
                };
                // Replicate in parallel: forward the value verbatim.
                let mut acks = Vec::new();
                for &r in &replica_addrs {
                    let ep = ep.clone();
                    let payload = ctx.payload.clone();
                    acks.push(simcore::spawn(async move {
                        ep.rpc().call(r, BLK_REPLICATE, payload).await.is_ok()
                    }));
                }
                let mut ok = true;
                for a in acks {
                    ok &= a.await;
                }
                if !ok {
                    return Bytes::new();
                }
                // Retire the previous version's pin, keep the new one.
                let old = index.borrow_mut().insert(id, v);
                if let Some(old) = old {
                    ep.release_async(old);
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    {
        let index = index.clone();
        primary_ep.rpc().register(BLK_READ, move |ctx| {
            let index = index.clone();
            async move {
                if ctx.payload.len() < 8 {
                    return Value::Inline(Bytes::new()).encode();
                }
                let id = u64::from_le_bytes(ctx.payload[..8].try_into().expect("len ok"));
                match index.borrow().get(&id) {
                    Some(v) => v.encode(),
                    None => Value::Inline(Bytes::new()).encode(),
                }
            }
        });
    }

    let client_node = cluster.add_server("blk-client");
    let client = cluster.endpoint(&client_node, 100).await;
    BlockStore {
        client,
        primary: primary_ep.addr(),
        primary_node,
        replica_nodes,
        replicas_data,
    }
}

impl BlockStore {
    /// Write a block with 3-way replication.
    pub async fn write_block(&self, id: u64, block: &Bytes) -> DmResult<()> {
        let v = self.client.make_value(block.clone()).await?;
        let mut req = BytesMut::with_capacity(8 + v.wire_bytes());
        req.put_u64_le(id);
        req.extend_from_slice(&v.encode());
        let resp = self
            .client
            .rpc()
            .call(self.primary, BLK_WRITE, req.freeze())
            .await
            .map_err(|_| DmError::Transport)?;
        // Ownership of the Ref passes to the primary's index.
        if resp.is_empty() {
            return Err(DmError::Transport);
        }
        Ok(())
    }

    /// Read a block back.
    pub async fn read_block(&self, id: u64) -> DmResult<Bytes> {
        let resp = self
            .client
            .rpc()
            .call(
                self.primary,
                BLK_READ,
                Bytes::from(id.to_le_bytes().to_vec()),
            )
            .await
            .map_err(|_| DmError::Transport)?;
        let v = Value::decode(&resp)?;
        if v.is_empty() {
            return Err(DmError::InvalidRef);
        }
        self.client.fetch(&v).await
    }

    /// A replica's durable copy of a block (tests).
    pub fn replica_copy(&self, replica: usize, id: u64) -> Option<Bytes> {
        self.replicas_data[replica].borrow().get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;

    #[test]
    fn write_read_roundtrip_all_systems() {
        for kind in SystemKind::ALL {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 31);
                let store = build_block_store(&cluster, 2).await;
                let block = Bytes::from((0..65536u32).map(|i| (i % 239) as u8).collect::<Vec<_>>());
                store.write_block(7, &block).await.unwrap();
                let back = store.read_block(7).await.unwrap();
                assert_eq!(back, block, "{kind:?}");
                // Both replicas hold identical durable copies.
                assert_eq!(store.replica_copy(0, 7).unwrap(), block);
                assert_eq!(store.replica_copy(1, 7).unwrap(), block);
            });
        }
    }

    #[test]
    fn missing_block_errors() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 31);
            let store = build_block_store(&cluster, 2).await;
            assert!(store.read_block(999).await.is_err());
        });
    }

    #[test]
    fn overwrite_releases_old_version() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 31);
            let store = build_block_store(&cluster, 2).await;
            for round in 0..20u8 {
                let block = Bytes::from(vec![round; 32768]);
                store.write_block(1, &block).await.unwrap();
            }
            assert_eq!(
                store.read_block(1).await.unwrap(),
                Bytes::from(vec![19u8; 32768])
            );
            // Old versions were released: only the live version's 8 pages
            // (plus slack for an in-flight async release) stay pinned.
            simcore::sleep(std::time::Duration::from_millis(1)).await;
            let (cap, free) = cluster.dm_servers[0]
                .with_page_manager(|pm| (pm.capacity_pages(), pm.free_pages()));
            assert!(
                cap - free <= 16,
                "version leak: {} pages pinned",
                cap - free
            );
        });
    }

    #[test]
    fn primary_write_amplification_removed_by_refs() {
        let run = |kind: SystemKind| {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 31);
                let store = build_block_store(&cluster, 2).await;
                let block = Bytes::from(vec![1u8; 128 * 1024]);
                store.write_block(1, &block).await.unwrap();
                cluster.net.reset_stats();
                for id in 2..6 {
                    store.write_block(id, &block).await.unwrap();
                }
                cluster.net.node_tx_bytes(store.primary_node.id)
            })
        };
        let erpc = run(SystemKind::Erpc);
        let dm = run(SystemKind::DmNet);
        // eRPC primary re-transmits each 128 KiB block twice.
        assert!(erpc > 4 * 2 * 128 * 1024, "erpc primary tx {erpc}");
        assert!(dm < 64 * 1024, "DmRPC primary forwards refs only: {dm}");
    }

    #[test]
    fn concurrent_writers_consistent() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmCxl, 1, ClusterConfig::default(), 31);
            let store = Rc::new(build_block_store(&cluster, 2).await);
            let mut handles = Vec::new();
            for w in 0..4u64 {
                let store = store.clone();
                handles.push(simcore::spawn(async move {
                    for i in 0..5u64 {
                        let id = w * 100 + i;
                        let block = Bytes::from(vec![(id % 251) as u8; 16384]);
                        store.write_block(id, &block).await.unwrap();
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            for w in 0..4u64 {
                for i in 0..5u64 {
                    let id = w * 100 + i;
                    let back = store.read_block(id).await.unwrap();
                    assert!(back.iter().all(|&b| b == (id % 251) as u8));
                }
            }
        });
    }
}
