//! Tiny application-level message codecs: an op byte in front of a
//! [`Value`], and lists of `Value`s (timeline reads return several posts).

use bytes::{BufMut, Bytes, BytesMut};
use dmcommon::{DmError, DmResult};
use dmrpc::Value;

/// Encode `[op][value]`.
pub fn op_value(op: u8, v: &Value) -> Bytes {
    let enc = v.encode();
    let mut out = BytesMut::with_capacity(1 + enc.len());
    out.put_u8(op);
    out.extend_from_slice(&enc);
    out.freeze()
}

/// Decode `[op][value]`.
pub fn parse_op_value(b: &Bytes) -> DmResult<(u8, Value)> {
    let op = *b.first().ok_or(DmError::Malformed)?;
    let v = Value::decode(&b.slice(1..))?;
    Ok((op, v))
}

/// Encode a list of values: `[count u16][len u32, value bytes]*`.
pub fn encode_values(values: &[Value]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u16_le(values.len() as u16);
    for v in values {
        let enc = v.encode();
        out.put_u32_le(enc.len() as u32);
        out.extend_from_slice(&enc);
    }
    out.freeze()
}

/// Decode a list of values.
pub fn decode_values(b: &Bytes) -> DmResult<Vec<Value>> {
    if b.len() < 2 {
        return Err(DmError::Malformed);
    }
    let n = u16::from_le_bytes(b[0..2].try_into().expect("len ok")) as usize;
    let mut pos = 2usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if b.len() < pos + 4 {
            return Err(DmError::Malformed);
        }
        let l = u32::from_le_bytes(b[pos..pos + 4].try_into().expect("len ok")) as usize;
        pos += 4;
        if b.len() < pos + l {
            return Err(DmError::Malformed);
        }
        out.push(Value::decode(&b.slice(pos..pos + l))?);
        pos += l;
    }
    Ok(out)
}

/// Encode a u64 as an inline result value.
pub fn u64_value(v: u64) -> Value {
    Value::Inline(Bytes::from(v.to_le_bytes().to_vec()))
}

/// Decode a u64 from an inline value.
pub fn value_u64(v: &Value) -> DmResult<u64> {
    match v {
        Value::Inline(b) if b.len() >= 8 => {
            Ok(u64::from_le_bytes(b[..8].try_into().expect("len ok")))
        }
        _ => Err(DmError::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcommon::{DmServerId, Ref};

    #[test]
    fn op_value_roundtrip() {
        let v = Value::Inline(Bytes::from_static(b"payload"));
        let enc = op_value(9, &v);
        let (op, back) = parse_op_value(&enc).unwrap();
        assert_eq!(op, 9);
        assert_eq!(back, v);
    }

    #[test]
    fn value_list_roundtrip() {
        let vs = vec![
            Value::Inline(Bytes::from_static(b"a")),
            Value::ByRef(Ref::Net {
                server: DmServerId(0),
                key: 5,
                len: 4096,
            }),
            Value::Inline(Bytes::new()),
        ];
        let enc = encode_values(&vs);
        assert_eq!(decode_values(&enc).unwrap(), vs);
        assert_eq!(decode_values(&encode_values(&[])).unwrap(), vec![]);
    }

    #[test]
    fn u64_value_roundtrip() {
        assert_eq!(value_u64(&u64_value(0xFEED_BEEF)).unwrap(), 0xFEED_BEEF);
        assert!(value_u64(&Value::Inline(Bytes::from_static(b"xx"))).is_err());
    }

    #[test]
    fn malformed_lists_rejected() {
        assert!(decode_values(&Bytes::from_static(&[1])).is_err());
        assert!(decode_values(&Bytes::from_static(&[2, 0, 1, 0, 0, 0])).is_err());
    }
}
