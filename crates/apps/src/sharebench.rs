//! The caller/callee sharing micro-benchmark (paper §VI-D, Fig. 8; also
//! reused for the Fig. 12a latency sweep).
//!
//! "The caller microservice creates a reference of a large raw data block
//! (32 KB), and then sends the reference to a remote microservice using an
//! RPC call. [...] The remote microservice writes the shared data that the
//! reference points to" — with the write *percentage* swept from 0 to 100.
//!
//! Two families are deployed behind one interface: DmRPC (either backend,
//! COW) and the Ray/Spark distributed object store (put → id → get, two
//! unconditional copies).

use std::rc::Rc;

use bytes::Bytes;
use datastore::{ray_config, spark_config, ObjectId, ObjectStore, StoreConfig};
use dmcommon::{DmError, DmResult};
use dmrpc::{DmRpc, Value};
use memsim::NodeMemory;
use rpclib::RpcBuilder;
use simnet::Addr;

use crate::cluster::Cluster;

/// Request type for the share op.
pub const SHARE_REQ: u8 = 4;

/// One deployed sharing benchmark (DmRPC flavor).
pub struct ShareBench {
    caller: Rc<DmRpc>,
    callee: Addr,
}

/// Deploy caller + callee on fresh nodes of `cluster`. The callee writes
/// `write_pct`% of the shared block on every request (passed per-request in
/// the header byte).
pub async fn build_sharebench(cluster: &Cluster) -> ShareBench {
    let callee_node = cluster.add_server("callee");
    let callee = cluster.endpoint(&callee_node, 100).await;
    {
        let ep = callee.clone();
        callee.rpc().register(SHARE_REQ, move |ctx| {
            let ep = ep.clone();
            async move {
                let pct = ctx.payload.first().copied().unwrap_or(0);
                let Ok(v) = Value::decode(&ctx.payload.slice(1..)) else {
                    return Bytes::new();
                };
                let frac = pct as f64 / 100.0;
                let _ = ep.overwrite_fraction(&v, frac).await;
                Bytes::from_static(b"ok")
            }
        });
    }
    let caller_node = cluster.add_server("caller");
    let caller = cluster.endpoint(&caller_node, 100).await;
    ShareBench {
        caller,
        callee: callee.addr(),
    }
}

impl ShareBench {
    /// One request: share a fresh `block`-sized value, callee writes
    /// `write_pct`% of it.
    pub async fn request(&self, block: &Bytes, write_pct: u8) -> DmResult<()> {
        let v = self.caller.make_value(block.clone()).await?;
        let mut msg = Vec::with_capacity(1 + v.encode().len());
        msg.push(write_pct);
        msg.extend_from_slice(&v.encode());
        self.caller
            .rpc()
            .call(self.callee, SHARE_REQ, Bytes::from(msg))
            .await
            .map_err(|_| DmError::Transport)?;
        self.caller.release_async(v);
        Ok(())
    }
}

/// The Ray/Spark flavor of the same benchmark.
pub struct StoreShareBench {
    caller_store: Rc<ObjectStore>,
    callee_store: Rc<ObjectStore>,
    caller_rpc: Rc<rpclib::Rpc>,
    callee_addr: Addr,
    callee_mem: NodeMemory,
}

/// Which store system to deploy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreKind {
    /// Ray / Plasma.
    Ray,
    /// Spark / BlockTransferService.
    Spark,
}

impl StoreKind {
    /// Paper-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Ray => "Ray",
            StoreKind::Spark => "Spark",
        }
    }

    fn config(&self) -> StoreConfig {
        match self {
            StoreKind::Ray => ray_config(),
            StoreKind::Spark => spark_config(),
        }
    }
}

/// Deploy the store-based benchmark on two fresh nodes of `cluster` (the
/// cluster's transfer kind is ignored; stores replace DM entirely).
pub async fn build_store_sharebench(cluster: &Cluster, kind: StoreKind) -> StoreShareBench {
    let cfg = kind.config();
    let caller_node = cluster.add_server("store-caller");
    let callee_node = cluster.add_server("store-callee");
    let caller_store =
        ObjectStore::start(&cluster.net, caller_node.id, caller_node.mem.clone(), cfg);
    let callee_store =
        ObjectStore::start(&cluster.net, callee_node.id, callee_node.mem.clone(), cfg);

    // Callee app process: receives an ObjectId, gets the object (two
    // copies), then writes pct% of its private heap copy.
    let callee_rpc = RpcBuilder::new(&cluster.net, callee_node.id, 101)
        .cpu(callee_node.cpu.clone())
        .mem(callee_node.mem.clone())
        .build();
    {
        let store = callee_store.clone();
        let mem = callee_node.mem.clone();
        callee_rpc.register(SHARE_REQ, move |ctx| {
            let store = store.clone();
            let mem = mem.clone();
            async move {
                let pct = ctx.payload.first().copied().unwrap_or(0);
                let Ok(id) = ObjectId::decode(&ctx.payload[1..]) else {
                    return Bytes::new();
                };
                let Ok(data) = store.get(id).await else {
                    return Bytes::new();
                };
                // Write pct% of the private heap copy (plain local memory).
                let n = data.len() * pct as usize / 100;
                if n > 0 {
                    mem.touch(n as u64).await;
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    let caller_rpc = RpcBuilder::new(&cluster.net, caller_node.id, 101)
        .cpu(caller_node.cpu.clone())
        .mem(caller_node.mem.clone())
        .build();
    StoreShareBench {
        caller_store,
        callee_store,
        caller_rpc,
        callee_addr: Addr {
            node: callee_node.id,
            port: 101,
        },
        callee_mem: callee_node.mem.clone(),
    }
}

impl StoreShareBench {
    /// One request through the object store.
    pub async fn request(&self, block: &Bytes, write_pct: u8) -> DmResult<()> {
        let id = self.caller_store.put(block.clone()).await?;
        let mut msg = Vec::with_capacity(23);
        msg.push(write_pct);
        msg.extend_from_slice(&id.encode());
        self.caller_rpc
            .call(self.callee_addr, SHARE_REQ, Bytes::from(msg))
            .await
            .map_err(|_| DmError::Transport)?;
        self.caller_store.delete(id);
        Ok(())
    }

    /// Callee-side store (tests).
    pub fn callee_store(&self) -> &Rc<ObjectStore> {
        &self.callee_store
    }

    /// Callee memory model (tests).
    pub fn callee_mem(&self) -> &NodeMemory {
        &self.callee_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use crate::workload::measure_once;
    use simcore::Sim;

    #[test]
    fn dmrpc_share_roundtrip_all_backends() {
        for kind in [SystemKind::DmNet, SystemKind::DmCxl] {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 1, ClusterConfig::default(), 3);
                let app = build_sharebench(&cluster).await;
                let block = Bytes::from(vec![9u8; 32 * 1024]);
                app.request(&block, 0).await.unwrap();
                app.request(&block, 50).await.unwrap();
                app.request(&block, 100).await.unwrap();
            });
        }
    }

    #[test]
    fn cow_makes_write_fraction_matter_for_dmrpc() {
        let sim = Sim::new();
        let (t0, t100) = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 3);
            let app = build_sharebench(&cluster).await;
            let block = Bytes::from(vec![9u8; 32 * 1024]);
            // Warm up.
            app.request(&block, 0).await.unwrap();
            let (_, t0) = measure_once(|| app.request(&block, 0)).await;
            let (_, t100) = measure_once(|| app.request(&block, 100)).await;
            (t0, t100)
        });
        assert!(
            t100 > t0,
            "100% writes must cost more than 0% (COW copies): {t0:?} vs {t100:?}"
        );
    }

    #[test]
    fn store_share_roundtrip_and_flat_in_write_pct() {
        let sim = Sim::new();
        let (t0, t100) = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 3);
            let app = build_store_sharebench(&cluster, StoreKind::Ray).await;
            let block = Bytes::from(vec![1u8; 32 * 1024]);
            app.request(&block, 0).await.unwrap();
            let (_, t0) = measure_once(|| app.request(&block, 0)).await;
            let (_, t100) = measure_once(|| app.request(&block, 100)).await;
            (t0, t100)
        });
        // The unconditional two-copy path dominates; the write fraction
        // barely moves the needle (paper: "Ray's and Spark's throughput and
        // latency merely change").
        let ratio = t100.as_nanos() as f64 / t0.as_nanos() as f64;
        assert!(ratio < 1.15, "store latency should be flat, ratio {ratio}");
    }

    #[test]
    fn dmrpc_is_much_faster_than_ray() {
        let sim = Sim::new();
        let (dm, ray) = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 3);
            let dm_app = build_sharebench(&cluster).await;
            let ray_app = build_store_sharebench(&cluster, StoreKind::Ray).await;
            let block = Bytes::from(vec![1u8; 32 * 1024]);
            dm_app.request(&block, 10).await.unwrap();
            ray_app.request(&block, 10).await.unwrap();
            let (_, dm) = measure_once(|| dm_app.request(&block, 10)).await;
            let (_, ray) = measure_once(|| ray_app.request(&block, 10)).await;
            (dm, ray)
        });
        assert!(
            ray.as_nanos() > 5 * dm.as_nanos(),
            "Ray {ray:?} should be far slower than DmRPC-net {dm:?}"
        );
    }

    #[test]
    fn spark_slower_than_ray_in_benchmark() {
        let sim = Sim::new();
        let (ray, spark) = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 3);
            let ray_app = build_store_sharebench(&cluster, StoreKind::Ray).await;
            let spark_app = build_store_sharebench(&cluster, StoreKind::Spark).await;
            let block = Bytes::from(vec![1u8; 32 * 1024]);
            ray_app.request(&block, 10).await.unwrap();
            spark_app.request(&block, 10).await.unwrap();
            let (_, ray) = measure_once(|| ray_app.request(&block, 10)).await;
            let (_, spark) = measure_once(|| spark_app.request(&block, 10)).await;
            (ray, spark)
        });
        assert!(spark > ray, "spark {spark:?} vs ray {ray:?}");
    }
}
