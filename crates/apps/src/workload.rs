//! Load generators and measurement plumbing shared by every experiment:
//! closed-loop (fixed concurrency) and open-loop (Poisson arrivals at an
//! offered rate) drivers with warmup handling and latency histograms.

use std::cell::Cell;
use std::future::Future;
use std::rc::Rc;
use std::time::Duration;

use simcore::{Histogram, SimRng, SimTime};

/// Results of one measured run.
#[derive(Clone)]
pub struct Measured {
    /// Latency of completed operations, in nanoseconds. Open-loop runs
    /// measure from the *intended* Poisson arrival time, so queueing and
    /// admission delay are included (no coordinated omission).
    pub latency: Histogram,
    /// Operations completed inside the measurement window.
    pub completed: u64,
    /// Operations that returned a real error.
    pub errors: u64,
    /// Operations refused by overload control (a typed `Busy` rejection
    /// or a front-door shed) — deliberate load-shedding, kept distinct
    /// from `errors` so goodput math doesn't conflate the two.
    pub rejected: u64,
    /// In-window operations issued by the driver (open loop: intended
    /// arrivals; closed loop: ops both started and finished in-window).
    pub issued: u64,
    /// Length of the measurement window.
    pub window: Duration,
}

impl Measured {
    /// Completed operations per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.window.as_secs_f64()
    }

    /// Goodput in bits/second given `bytes` moved per operation.
    pub fn throughput_gbps(&self, bytes_per_op: u64) -> f64 {
        self.throughput_rps() * bytes_per_op as f64 * 8.0 / 1e9
    }

    /// Fraction of issued in-window requests that completed successfully
    /// (1.0 when nothing was issued). Under overload this is what the
    /// offered load actually got served: rejections and errors both
    /// count against it.
    pub fn goodput_fraction(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.completed as f64 / self.issued as f64
        }
    }

    /// SLO goodput: completed operations whose latency (from intended
    /// arrival) stayed within `budget`, per second. The metric overload
    /// control optimizes — requests served late count for nothing.
    pub fn goodput_rps(&self, budget: Duration) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.latency.count_below(budget.as_nanos() as u64) as f64 / self.window.as_secs_f64()
    }

    /// Mean latency in microseconds.
    pub fn avg_latency_us(&self) -> f64 {
        self.latency.mean() / 1000.0
    }

    /// Latency quantile in microseconds.
    pub fn latency_us(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1000.0
    }
}

/// Run `op` from `workers` closed-loop workers for `warmup + window`,
/// recording latencies only inside the window.
///
/// `op(worker, iteration)` returns `Ok(())` or an error (counted).
pub async fn run_closed_loop<F, Fut, E>(
    workers: usize,
    warmup: Duration,
    window: Duration,
    op: Rc<F>,
) -> Measured
where
    F: Fn(usize, u64) -> Fut + 'static,
    Fut: Future<Output = Result<(), E>> + 'static,
{
    let start = simcore::now();
    let measure_from = start + warmup;
    let end = measure_from + window;
    let latency = Histogram::new();
    let completed = Rc::new(Cell::new(0u64));
    let errors = Rc::new(Cell::new(0u64));

    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let op = op.clone();
        let latency = latency.clone();
        let completed = completed.clone();
        let errors = errors.clone();
        handles.push(simcore::spawn(async move {
            let mut iter = 0u64;
            loop {
                let t0 = simcore::now();
                if t0 >= end {
                    break;
                }
                let r = op(w, iter).await;
                iter += 1;
                let t1 = simcore::now();
                if t0 >= measure_from && t1 <= end {
                    match r {
                        Ok(()) => {
                            latency.record((t1 - t0).as_nanos() as u64);
                            completed.set(completed.get() + 1);
                        }
                        Err(_) => errors.set(errors.get() + 1),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.await;
    }
    Measured {
        latency,
        completed: completed.get(),
        errors: errors.get(),
        rejected: 0,
        issued: completed.get() + errors.get(),
        window,
    }
}

/// Run `op` under an open-loop Poisson arrival process at `rate_rps` for
/// `warmup + window`. Returns measured stats; in-flight requests at window
/// end are awaited (their latencies count if they started in the window).
///
/// Every error counts as a real error; see
/// [`run_open_loop_classified`] to separate overload rejections.
pub async fn run_open_loop<F, Fut, E>(
    rate_rps: f64,
    warmup: Duration,
    window: Duration,
    rng: SimRng,
    op: Rc<F>,
) -> Measured
where
    F: Fn(u64) -> Fut + 'static,
    Fut: Future<Output = Result<(), E>> + 'static,
    E: 'static,
{
    run_open_loop_classified(rate_rps, warmup, window, rng, op, Rc::new(|_: &E| false)).await
}

/// [`run_open_loop`] with an error classifier: errors for which
/// `is_rejection` returns true are counted as [`Measured::rejected`]
/// (deliberately shed load) instead of [`Measured::errors`].
///
/// Latency is measured from each request's **intended Poisson arrival
/// time**, not from whenever its task first ran — the classic
/// coordinated-omission fix: under overload, delay between when a
/// request *should* have been issued and when it made progress is
/// queueing the user experienced and must show in the percentiles. The
/// arrival clock accumulates exact inter-arrival gaps, so the sleep
/// schedule (and thus the event schedule) is identical to the historical
/// sleep-per-gap driver.
pub async fn run_open_loop_classified<F, Fut, E>(
    rate_rps: f64,
    warmup: Duration,
    window: Duration,
    rng: SimRng,
    op: Rc<F>,
    is_rejection: Rc<dyn Fn(&E) -> bool>,
) -> Measured
where
    F: Fn(u64) -> Fut + 'static,
    Fut: Future<Output = Result<(), E>> + 'static,
    E: 'static,
{
    assert!(rate_rps > 0.0, "open loop needs a positive rate");
    let start = simcore::now();
    let measure_from = start + warmup;
    let end = measure_from + window;
    let latency = Histogram::new();
    let completed = Rc::new(Cell::new(0u64));
    let errors = Rc::new(Cell::new(0u64));
    let rejected = Rc::new(Cell::new(0u64));
    let mean_gap_ns = 1e9 / rate_rps;

    let mut handles = Vec::new();
    let mut seq = 0u64;
    let mut issued = 0u64;
    let mut next_arrival = start;
    loop {
        let gap = rng.gen_exp(mean_gap_ns);
        next_arrival += Duration::from_nanos(gap as u64);
        let now = simcore::now();
        if next_arrival > now {
            simcore::sleep(next_arrival - now).await;
        }
        if next_arrival >= end {
            break;
        }
        let op = op.clone();
        let latency = latency.clone();
        let completed = completed.clone();
        let errors = errors.clone();
        let rejected = rejected.clone();
        let is_rejection = is_rejection.clone();
        let in_window = next_arrival >= measure_from;
        if in_window {
            issued += 1;
        }
        let arrival = next_arrival;
        let n = seq;
        seq += 1;
        handles.push(simcore::spawn(async move {
            let r = op(n).await;
            let t1 = simcore::now();
            if in_window {
                match r {
                    Ok(()) => {
                        latency.record((t1 - arrival).as_nanos() as u64);
                        completed.set(completed.get() + 1);
                    }
                    Err(e) if is_rejection(&e) => rejected.set(rejected.get() + 1),
                    Err(_) => errors.set(errors.get() + 1),
                }
            }
        }));
    }
    for h in handles {
        h.await;
    }
    Measured {
        latency,
        completed: completed.get(),
        errors: errors.get(),
        rejected: rejected.get(),
        issued,
        window,
    }
}

/// A per-request trace: one record per completed operation, for offline
/// analysis (CDFs, time series) beyond the aggregate histogram.
#[derive(Clone, Default)]
pub struct Recorder {
    records: Rc<std::cell::RefCell<Vec<TraceRecord>>>,
}

/// One completed operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Issue time (ns since simulation start).
    pub start_ns: u64,
    /// Completion time (ns).
    pub end_ns: u64,
    /// Worker / sequence tag assigned by the caller.
    pub tag: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
}

impl Recorder {
    /// New empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Record one operation.
    pub fn record(&self, start: SimTime, end: SimTime, tag: u64, ok: bool) {
        self.records.borrow_mut().push(TraceRecord {
            start_ns: start.nanos(),
            end_ns: end.nanos(),
            tag,
            ok,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records (sorted by completion time).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut v = self.records.borrow().clone();
        v.sort_by_key(|r| r.end_ns);
        v
    }

    /// Render as CSV (`start_ns,end_ns,latency_ns,tag,ok`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_ns,end_ns,latency_ns,tag,ok\n");
        for r in self.snapshot() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.start_ns,
                r.end_ns,
                r.end_ns - r.start_ns,
                r.tag,
                r.ok
            ));
        }
        out
    }

    /// Write the CSV to `path`.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Throughput over a trailing window ending at the last completion, in
    /// ops/sec — useful for spotting ramp-up vs steady state.
    pub fn trailing_rate(&self, window: Duration) -> f64 {
        let snap = self.snapshot();
        let Some(last) = snap.last() else { return 0.0 };
        let cut = last.end_ns.saturating_sub(window.as_nanos() as u64);
        let n = snap.iter().filter(|r| r.end_ns > cut && r.ok).count();
        n as f64 / window.as_secs_f64()
    }
}

/// Measure a single operation's latency (paper-style unloaded latency).
pub async fn measure_once<F, Fut, T>(op: F) -> (T, Duration)
where
    F: FnOnce() -> Fut,
    Fut: Future<Output = T>,
{
    let t0 = simcore::now();
    let out = op().await;
    (out, simcore::now() - t0)
}

/// Helper: elapsed virtual time since `t0`.
pub fn since(t0: SimTime) -> Duration {
    simcore::now() - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn closed_loop_counts_only_window_ops() {
        let sim = Sim::new();
        let m = sim.block_on(async {
            run_closed_loop(
                2,
                Duration::from_micros(100),
                Duration::from_micros(1000),
                Rc::new(|_w, _i| async {
                    simcore::sleep(Duration::from_micros(10)).await;
                    Ok::<(), ()>(())
                }),
            )
            .await
        });
        // 2 workers, 10us per op, 1000us window => ~200 ops.
        assert!(
            (190..=200).contains(&m.completed),
            "completed {}",
            m.completed
        );
        assert_eq!(m.errors, 0);
        let tp = m.throughput_rps();
        assert!((tp - 200_000.0).abs() / 200_000.0 < 0.1, "tp {tp}");
        // Latency is exactly 10us.
        assert!((m.avg_latency_us() - 10.0).abs() < 0.5);
    }

    #[test]
    fn closed_loop_counts_errors() {
        let sim = Sim::new();
        let m = sim.block_on(async {
            run_closed_loop(
                1,
                Duration::ZERO,
                Duration::from_micros(100),
                Rc::new(|_w, i| async move {
                    simcore::sleep(Duration::from_micros(10)).await;
                    if i % 2 == 0 {
                        Err(())
                    } else {
                        Ok(())
                    }
                }),
            )
            .await
        });
        assert!(m.errors > 0);
        assert!(m.completed > 0);
    }

    #[test]
    fn open_loop_offers_requested_rate() {
        let sim = Sim::new();
        let m = sim.block_on(async {
            run_open_loop(
                100_000.0, // 100k rps
                Duration::from_millis(1),
                Duration::from_millis(20),
                SimRng::new(9),
                Rc::new(|_n| async {
                    simcore::sleep(Duration::from_micros(2)).await;
                    Ok::<(), ()>(())
                }),
            )
            .await
        });
        let tp = m.throughput_rps();
        assert!((tp - 100_000.0).abs() / 100_000.0 < 0.1, "tp {tp}");
        assert!((m.avg_latency_us() - 2.0).abs() < 0.2);
    }

    #[test]
    fn open_loop_latency_grows_when_saturated() {
        // A single-server queue at 2x its service rate must show queueing.
        let sim = Sim::new();
        let m = sim.block_on(async {
            let sem = simcore::sync::Semaphore::new(1);
            run_open_loop(
                200_000.0, // offered 200k rps
                Duration::ZERO,
                Duration::from_millis(5),
                SimRng::new(9),
                Rc::new(move |_n| {
                    let sem = sem.clone();
                    async move {
                        let _p = sem.acquire_one().await;
                        simcore::sleep(Duration::from_micros(10)).await; // cap 100k
                        Ok::<(), ()>(())
                    }
                }),
            )
            .await
        });
        assert!(
            m.avg_latency_us() > 100.0,
            "saturated queue should back up: {}us",
            m.avg_latency_us()
        );
    }

    #[test]
    fn open_loop_p99_includes_queueing_delay() {
        // Coordinated-omission regression: a single-server queue offered
        // 2x its service rate builds a standing queue that grows through
        // the window; measuring from the *intended arrival* must surface
        // that wait in the tail, orders of magnitude above the 10us
        // service time (an uncorrected driver that timed only the op
        // body would report ~10us forever).
        let sim = Sim::new();
        let m = sim.block_on(async {
            let sem = simcore::sync::Semaphore::new(1);
            run_open_loop(
                200_000.0, // offered 200k rps
                Duration::ZERO,
                Duration::from_millis(5),
                SimRng::new(9),
                Rc::new(move |_n| {
                    let sem = sem.clone();
                    async move {
                        let _p = sem.acquire_one().await;
                        simcore::sleep(Duration::from_micros(10)).await; // cap 100k
                        Ok::<(), ()>(())
                    }
                }),
            )
            .await
        });
        let p99 = m.latency_us(0.99);
        assert!(
            p99 > 1_000.0,
            "p99 must show the ~2.5ms standing queue, got {p99}us"
        );
        assert!(
            m.latency_us(0.5) > 100.0,
            "even the median queues at 2x overload: {}us",
            m.latency_us(0.5)
        );
        // SLO goodput: almost nothing completed within a 50us budget.
        let slo = m.goodput_rps(Duration::from_micros(50));
        assert!(slo < 20_000.0, "SLO goodput under overload: {slo}");
    }

    #[test]
    fn open_loop_separates_rejections_from_errors() {
        #[derive(Debug)]
        enum OpErr {
            Shed,
            Real,
        }
        let sim = Sim::new();
        let m = sim.block_on(async {
            run_open_loop_classified(
                100_000.0,
                Duration::ZERO,
                Duration::from_millis(2),
                SimRng::new(5),
                Rc::new(|n| async move {
                    simcore::sleep(Duration::from_micros(1)).await;
                    match n % 4 {
                        0 => Err(OpErr::Shed),
                        1 => Err(OpErr::Real),
                        _ => Ok(()),
                    }
                }),
                Rc::new(|e: &OpErr| matches!(e, OpErr::Shed)),
            )
            .await
        });
        assert!(m.rejected > 0, "shed ops counted separately");
        assert!(m.errors > 0, "real errors still counted");
        assert!(
            (m.rejected as i64 - m.errors as i64).abs() <= 2,
            "1-in-4 each: rejected {} vs errors {}",
            m.rejected,
            m.errors
        );
        assert_eq!(m.issued, m.completed + m.errors + m.rejected);
        let gf = m.goodput_fraction();
        assert!((gf - 0.5).abs() < 0.05, "goodput fraction {gf}");
    }

    #[test]
    fn recorder_csv_and_rates() {
        let rec = Recorder::new();
        assert!(rec.is_empty());
        rec.record(SimTime::from_micros(5), SimTime::from_micros(9), 1, true);
        rec.record(SimTime::from_micros(1), SimTime::from_micros(2), 0, true);
        rec.record(SimTime::from_micros(6), SimTime::from_micros(12), 2, false);
        assert_eq!(rec.len(), 3);
        let snap = rec.snapshot();
        assert_eq!(snap[0].tag, 0, "sorted by completion");
        let csv = rec.to_csv();
        assert!(csv.starts_with("start_ns,end_ns,latency_ns,tag,ok\n"));
        assert!(csv.contains("5000,9000,4000,1,true"));
        assert!(csv.contains("6000,12000,6000,2,false"));
        // Trailing window covering only the last two completions (ok only).
        let rate = rec.trailing_rate(Duration::from_micros(4));
        assert!((rate - 250_000.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn measure_once_returns_duration() {
        let sim = Sim::new();
        let (v, d) = sim.block_on(async {
            measure_once(|| async {
                simcore::sleep(Duration::from_micros(7)).await;
                42
            })
            .await
        });
        assert_eq!(v, 42);
        assert_eq!(d, Duration::from_micros(7));
    }
}
