//! DeathStarBench-style social network (paper §VI-F, Fig. 11).
//!
//! The paper evaluates the social-network application's mixed workload:
//! 60% read-home-timeline, 30% read-user-timeline, 10% compose-post.
//! "All requests traverse at least three data mover services (load
//! balancer, proxy, and php-fpm) [...] Traffic in read-user-timeline even
//! traverses five data mover services."
//!
//! Topology (three servers, as in the paper):
//!
//! * server A: `nginx` (entry LB) and `proxy`;
//! * server B: `php-fpm`, `compose-post`, `home-timeline`;
//! * server C: `user-timeline`, `post-storage`.
//!
//! Posts carry media payloads; under DmRPC the media travels as a `Ref`
//! from composer to storage and from storage to reader, never touching the
//! movers.
//!
//! Consistency note: post-storage evicts beyond [`POST_CAPACITY`] and
//! releases the evicted refs. A reader that learned a post id just before
//! its eviction can race the release; the DM layer then reports a clean
//! `InvalidRef` (no stale data is ever served). Long-haul stress tests
//! tolerate a sub-percent rate of these application-level races.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};
use dmcommon::{DmError, DmResult};
use dmnet::admission::{Admission, AdmissionConfig};
use dmrpc::{DmRpc, Value};
use loadgen::Population;
use simcore::{SimRng, Zipf};
use simnet::Addr;

use crate::cluster::{Cluster, ServiceNode};
use crate::codec::{decode_values, encode_values};

/// Front-door request (nginx, proxy, php-fpm route on the op byte).
pub const SOC_REQ: u8 = 5;
/// Internal: store a post (post-storage).
pub const SOC_STORE: u8 = 6;
/// Internal: fetch posts by id (post-storage).
pub const SOC_FETCH: u8 = 7;
/// Internal: append to a user timeline.
pub const SOC_APPEND_UTL: u8 = 8;
/// Internal: append to a home timeline.
pub const SOC_APPEND_HTL: u8 = 9;

/// Front-door operations.
pub const OP_COMPOSE: u8 = 0;
/// Read the caller's home timeline.
pub const OP_READ_HOME: u8 = 1;
/// Read one user's timeline.
pub const OP_READ_USER: u8 = 2;

/// Posts returned per timeline read.
pub const POSTS_PER_READ: usize = 5;
/// Followers per user receiving home-timeline fan-out.
pub const FOLLOWERS: usize = 8;
/// Maximum posts retained before eviction.
pub const POST_CAPACITY: usize = 4096;

/// Workload mix (read-home, read-user, compose) — paper §VI-F.
pub const MIX: [f64; 3] = [0.6, 0.3, 0.1];

/// Front-door shed marker: a one-byte response no legitimate handler
/// produces (compose returns `"ok"`/empty, reads return a ≥2-byte value
/// list). The client maps it to [`DmError::Busy`].
pub const SOC_BUSY_RESP: &[u8] = &[0xEE];

/// Who receives home-timeline fan-out when a user composes.
///
/// `Fixed` is the historical fig11 graph ([`FOLLOWERS`] targets per user
/// from a per-user reseeded RNG — kept bit-for-bit so committed CSVs
/// stay byte-identical); `Scaled` defers to a [`loadgen::Population`]
/// (~100 followers/user, materialised lazily per compose).
enum FanoutGraph {
    Fixed(Vec<Vec<u32>>),
    Scaled(Population),
}

impl FanoutGraph {
    fn followers(&self, user: u32) -> Vec<u32> {
        match self {
            FanoutGraph::Fixed(g) => g[user as usize].clone(),
            FanoutGraph::Scaled(p) => p.followers(user),
        }
    }
}

struct TimelineMap {
    map: HashMap<u32, VecDeque<u64>>,
}

impl TimelineMap {
    fn new() -> Self {
        TimelineMap {
            map: HashMap::new(),
        }
    }

    fn append(&mut self, user: u32, post: u64) {
        let tl = self.map.entry(user).or_default();
        tl.push_back(post);
        if tl.len() > 64 {
            tl.pop_front();
        }
    }

    fn recent(&self, user: u32, k: usize) -> Vec<u64> {
        self.map
            .get(&user)
            .map(|tl| tl.iter().rev().take(k).copied().collect())
            .unwrap_or_default()
    }
}

fn put_ids(out: &mut BytesMut, ids: &[u64]) {
    out.put_u16_le(ids.len() as u16);
    for &id in ids {
        out.put_u64_le(id);
    }
}

fn get_ids(b: &[u8]) -> DmResult<(Vec<u64>, usize)> {
    if b.len() < 2 {
        return Err(DmError::Malformed);
    }
    let n = u16::from_le_bytes(b[0..2].try_into().expect("len ok")) as usize;
    if b.len() < 2 + 8 * n {
        return Err(DmError::Malformed);
    }
    let ids = (0..n)
        .map(|i| u64::from_le_bytes(b[2 + 8 * i..10 + 8 * i].try_into().expect("len ok")))
        .collect();
    Ok((ids, 2 + 8 * n))
}

/// A deployed social network.
pub struct SocialApp {
    /// The workload client's endpoint.
    pub client: Rc<DmRpc>,
    /// Front door (nginx).
    pub entry: Addr,
    /// Users in the social graph.
    pub users: u32,
    /// Media payload size per post.
    pub media_size: usize,
    /// The three server nodes (stats).
    pub servers: Vec<ServiceNode>,
    /// Client-side whole-request admission gate (None when overload
    /// control is not installed — the historical default). Shares the
    /// nginx config: the gateway advertises its admission state and
    /// cooperative clients fail fast *before* uploading media or issuing
    /// DM fetches, so shed requests cost neither NIC bandwidth nor DM
    /// allocations. The nginx entry handler keeps its own authoritative
    /// instance for non-cooperative callers.
    pub admission: Option<Rc<Admission>>,
    rng: SimRng,
    zipf: Zipf,
}

/// Deploy the social network on three servers plus a client node.
pub async fn build_social(
    cluster: &Cluster,
    users: u32,
    media_size: usize,
    seed: u64,
) -> SocialApp {
    build_social_inner(cluster, users, media_size, seed, None, None, POST_CAPACITY).await
}

/// [`build_social`] with an explicit post-storage capacity. A cap smaller
/// than the post volume makes every steady-state compose evict (and
/// release) the oldest post's media ref — the write-churn regime the
/// cache-coherence bench measures.
pub async fn build_social_capped(
    cluster: &Cluster,
    users: u32,
    media_size: usize,
    seed: u64,
    post_capacity: usize,
) -> SocialApp {
    build_social_inner(cluster, users, media_size, seed, None, None, post_capacity).await
}

/// Deploy the social network over a scale-factor [`Population`], optionally
/// installing front-door admission control at the nginx entry point.
///
/// The fan-out graph and hot-key sampler come from the population (so the
/// same `SF` always produces the same workload, regardless of thread
/// count), and the entry handler sheds with [`SOC_BUSY_RESP`] when the
/// admission queue is full or CoDel is in a shedding episode.
pub async fn build_social_scaled(
    cluster: &Cluster,
    pop: Population,
    media_size: usize,
    seed: u64,
    entry_admission: Option<AdmissionConfig>,
) -> SocialApp {
    build_social_inner(
        cluster,
        pop.users(),
        media_size,
        seed,
        Some(pop),
        entry_admission,
        POST_CAPACITY,
    )
    .await
}

async fn build_social_inner(
    cluster: &Cluster,
    users: u32,
    media_size: usize,
    seed: u64,
    pop: Option<Population>,
    entry_admission: Option<AdmissionConfig>,
    post_capacity: usize,
) -> SocialApp {
    let rng = SimRng::new(seed);
    let server_a = cluster.add_server("sn-a");
    let server_b = cluster.add_server("sn-b");
    let server_c = cluster.add_server("sn-c");

    // ---- post-storage (server C, port 101) -------------------------------
    let storage_ep = cluster.endpoint(&server_c, 101).await;
    // Post store: id -> media value, plus FIFO eviction order.
    type PostStore = (HashMap<u64, Value>, VecDeque<u64>);
    let posts: Rc<RefCell<PostStore>> = Rc::new(RefCell::new((HashMap::new(), VecDeque::new())));
    {
        // STORE: [post_id u64][value bytes]
        let posts = posts.clone();
        let ep = storage_ep.clone();
        storage_ep.rpc().register(SOC_STORE, move |ctx| {
            let posts = posts.clone();
            let ep = ep.clone();
            async move {
                if ctx.payload.len() < 8 {
                    return Bytes::new();
                }
                let id = u64::from_le_bytes(ctx.payload[..8].try_into().expect("len ok"));
                let Ok(v) = Value::decode(&ctx.payload.slice(8..)) else {
                    return Bytes::new();
                };
                let evicted = {
                    let mut p = posts.borrow_mut();
                    p.0.insert(id, v);
                    p.1.push_back(id);
                    if p.1.len() > post_capacity {
                        let old = p.1.pop_front().expect("len > 0");
                        p.0.remove(&old)
                    } else {
                        None
                    }
                };
                if let Some(old) = evicted {
                    let _ = ep.release(&old).await;
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    {
        // FETCH: [ids] -> encoded value list (the storage never touches the
        // media itself — it forwards stored Values).
        let posts = posts.clone();
        storage_ep.rpc().register(SOC_FETCH, move |ctx| {
            let posts = posts.clone();
            async move {
                let Ok((ids, _)) = get_ids(&ctx.payload) else {
                    return encode_values(&[]);
                };
                let p = posts.borrow();
                let values: Vec<Value> = ids.iter().filter_map(|id| p.0.get(id).cloned()).collect();
                encode_values(&values)
            }
        });
    }
    let storage_addr = storage_ep.addr();

    // ---- user-timeline (server C, port 100) -------------------------------
    let utl_ep = cluster.endpoint(&server_c, 100).await;
    let utl = Rc::new(RefCell::new(TimelineMap::new()));
    {
        let utl2 = utl.clone();
        utl_ep.rpc().register(SOC_APPEND_UTL, move |ctx| {
            let utl = utl2.clone();
            async move {
                if ctx.payload.len() >= 12 {
                    let user = u32::from_le_bytes(ctx.payload[..4].try_into().expect("len ok"));
                    let post = u64::from_le_bytes(ctx.payload[4..12].try_into().expect("len ok"));
                    utl.borrow_mut().append(user, post);
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    {
        // READ-USER: [user u32] -> value list via post-storage.
        let utl2 = utl.clone();
        let ep = utl_ep.clone();
        utl_ep.rpc().register(SOC_REQ, move |ctx| {
            let utl = utl2.clone();
            let ep = ep.clone();
            async move {
                if ctx.payload.len() < 4 {
                    return encode_values(&[]);
                }
                let user = u32::from_le_bytes(ctx.payload[..4].try_into().expect("len ok"));
                let ids = utl.borrow().recent(user, POSTS_PER_READ);
                let mut req = BytesMut::new();
                put_ids(&mut req, &ids);
                match ep.rpc().call(storage_addr, SOC_FETCH, req.freeze()).await {
                    Ok(resp) => resp,
                    Err(_) => encode_values(&[]),
                }
            }
        });
    }
    let utl_addr = utl_ep.addr();

    // ---- home-timeline (server B, port 102) --------------------------------
    let htl_ep = cluster.endpoint(&server_b, 102).await;
    let htl = Rc::new(RefCell::new(TimelineMap::new()));
    {
        let htl2 = htl.clone();
        htl_ep.rpc().register(SOC_APPEND_HTL, move |ctx| {
            let htl = htl2.clone();
            async move {
                if ctx.payload.len() >= 12 {
                    let user = u32::from_le_bytes(ctx.payload[..4].try_into().expect("len ok"));
                    let post = u64::from_le_bytes(ctx.payload[4..12].try_into().expect("len ok"));
                    htl.borrow_mut().append(user, post);
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    {
        let htl2 = htl.clone();
        let ep = htl_ep.clone();
        htl_ep.rpc().register(SOC_REQ, move |ctx| {
            let htl = htl2.clone();
            let ep = ep.clone();
            async move {
                if ctx.payload.len() < 4 {
                    return encode_values(&[]);
                }
                let user = u32::from_le_bytes(ctx.payload[..4].try_into().expect("len ok"));
                let ids = htl.borrow().recent(user, POSTS_PER_READ);
                let mut req = BytesMut::new();
                put_ids(&mut req, &ids);
                match ep.rpc().call(storage_addr, SOC_FETCH, req.freeze()).await {
                    Ok(resp) => resp,
                    Err(_) => encode_values(&[]),
                }
            }
        });
    }
    let htl_addr = htl_ep.addr();

    // ---- compose-post (server B, port 101) ---------------------------------
    let compose_ep = cluster.endpoint(&server_b, 101).await;
    let graph: Rc<FanoutGraph> = Rc::new(match pop {
        Some(p) => FanoutGraph::Scaled(p),
        None => FanoutGraph::Fixed(
            (0..users)
                .map(|_| {
                    let g = SimRng::new(seed ^ 0xF00D);
                    (0..FOLLOWERS)
                        .map(|_| g.gen_range(users as u64) as u32)
                        .collect()
                })
                .collect(),
        ),
    });
    let next_post = Rc::new(std::cell::Cell::new(1u64));
    {
        let ep = compose_ep.clone();
        let graph = graph.clone();
        let next_post = next_post.clone();
        compose_ep.rpc().register(SOC_REQ, move |ctx| {
            let ep = ep.clone();
            let graph = graph.clone();
            let next_post = next_post.clone();
            async move {
                // [user u32][value bytes]
                if ctx.payload.len() < 4 {
                    return Bytes::new();
                }
                let user = u32::from_le_bytes(ctx.payload[..4].try_into().expect("len ok"));
                let post_id = next_post.get();
                next_post.set(post_id + 1);
                // Store the post: forward the media value untouched.
                let mut store_req = BytesMut::with_capacity(8 + ctx.payload.len());
                store_req.put_u64_le(post_id);
                store_req.extend_from_slice(&ctx.payload[4..]);
                let _ = ep
                    .rpc()
                    .call(storage_addr, SOC_STORE, store_req.freeze())
                    .await;
                // Timeline updates (small control messages).
                let mut app = BytesMut::with_capacity(12);
                app.put_u32_le(user);
                app.put_u64_le(post_id);
                let _ = ep.rpc().call(utl_addr, SOC_APPEND_UTL, app.freeze()).await;
                for f in graph.followers(user) {
                    let mut app = BytesMut::with_capacity(12);
                    app.put_u32_le(f);
                    app.put_u64_le(post_id);
                    let _ = ep.rpc().call(htl_addr, SOC_APPEND_HTL, app.freeze()).await;
                }
                Bytes::from_static(b"ok")
            }
        });
    }
    let compose_addr = compose_ep.addr();

    // ---- data movers: php-fpm (B), proxy (A), nginx (A) --------------------
    let phpfpm_ep = cluster.endpoint(&server_b, 100).await;
    {
        let ep = phpfpm_ep.clone();
        phpfpm_ep.rpc().register(SOC_REQ, move |ctx| {
            let ep = ep.clone();
            async move {
                let Some(&op) = ctx.payload.first() else {
                    return Bytes::new();
                };
                let body = ctx.payload.slice(1..);
                let target = match op {
                    OP_COMPOSE => compose_addr,
                    OP_READ_HOME => htl_addr,
                    OP_READ_USER => utl_addr,
                    _ => return Bytes::new(),
                };
                match ep.rpc().call(target, SOC_REQ, body).await {
                    Ok(resp) => resp,
                    Err(_) => Bytes::new(),
                }
            }
        });
    }
    let phpfpm_addr = phpfpm_ep.addr();

    let proxy_ep = cluster.endpoint(&server_a, 101).await;
    {
        let ep = proxy_ep.clone();
        proxy_ep.rpc().register(SOC_REQ, move |ctx| {
            let ep = ep.clone();
            async move {
                match ep.rpc().call(phpfpm_addr, SOC_REQ, ctx.payload).await {
                    Ok(resp) => resp,
                    Err(_) => Bytes::new(),
                }
            }
        });
    }
    let proxy_addr = proxy_ep.addr();

    let nginx_ep = cluster.endpoint(&server_a, 100).await;
    // Two limiter instances from one config: the nginx-side one protects
    // the service tier from any caller; the client-side gate (returned in
    // the app) bounds whole-request concurrency including the media
    // upload and DM fetch phases the front door never sees.
    let nginx_admission = entry_admission.map(|c| Rc::new(Admission::new(c)));
    let admission: Option<Rc<Admission>> = entry_admission.map(|c| Rc::new(Admission::new(c)));
    {
        let ep = nginx_ep.clone();
        let adm = nginx_admission.clone();
        nginx_ep.rpc().register(SOC_REQ, move |ctx| {
            let ep = ep.clone();
            let adm = adm.clone();
            async move {
                // The guard is held across the downstream call so CoDel
                // observes the full end-to-end sojourn time at the front
                // door; dropping it on shed keeps the counters exact.
                let _guard = match &adm {
                    None => None,
                    Some(a) => match a.try_admit() {
                        Some(g) => Some(g),
                        None => return Bytes::from_static(SOC_BUSY_RESP),
                    },
                };
                match ep.rpc().call(proxy_addr, SOC_REQ, ctx.payload).await {
                    Ok(resp) => resp,
                    Err(_) => Bytes::new(),
                }
            }
        });
    }

    // ---- client -------------------------------------------------------------
    let client_node = cluster.add_server("sn-client");
    let client = cluster.endpoint(&client_node, 100).await;
    SocialApp {
        client,
        entry: nginx_ep.addr(),
        users,
        media_size,
        servers: vec![server_a, server_b, server_c],
        admission,
        // Scaled populations bring their own hot-key sampler (derived from
        // the population seed, so SF alone pins the workload); the fixed
        // path keeps its historical fork-of-the-build-seed sampler.
        zipf: match pop {
            Some(p) => p.sampler(),
            None => Zipf::new(rng.fork(), users as usize, 0.99),
        },
        rng,
    }
}

impl SocialApp {
    /// Fail fast at the client gate when overload control is installed.
    /// The returned guard spans the whole request, so the gate bounds
    /// end-to-end concurrency (media upload + movers + DM fetches) and
    /// its CoDel sees full-request sojourn times.
    fn gate(&self) -> DmResult<Option<dmnet::admission::AdmitGuard<'_>>> {
        match &self.admission {
            None => Ok(None),
            Some(a) => match a.try_admit() {
                Some(g) => Ok(Some(g)),
                None => Err(DmError::Busy),
            },
        }
    }

    /// Compose a post with fresh media for `user`.
    pub async fn compose(&self, user: u32) -> DmResult<()> {
        let client = self.client.clone();
        self.compose_from(&client, user).await
    }

    /// [`Self::compose`] with the media uploaded from `writer` — a second
    /// client endpoint — so the composer's DM traffic neither warms nor
    /// churns this app client's cache. The cache-coherence bench uses
    /// this to separate the reading client from the writing one.
    pub async fn compose_from(&self, writer: &Rc<DmRpc>, user: u32) -> DmResult<()> {
        let _gate = self.gate()?;
        let media = Bytes::from(vec![(user % 251) as u8; self.media_size]);
        let v = writer.make_value(media).await?;
        let mut req = BytesMut::with_capacity(5 + v.wire_bytes());
        req.put_u8(OP_COMPOSE);
        req.put_u32_le(user);
        req.extend_from_slice(&v.encode());
        let resp = writer
            .rpc()
            .call(self.entry, SOC_REQ, req.freeze())
            .await
            .map_err(|_| DmError::Transport)?;
        // NOTE: the Ref ownership passes to post-storage; the writer does
        // not release it.
        if resp.as_ref() == SOC_BUSY_RESP {
            // The front door shed us before the post reached storage, so
            // ownership never transferred — release the media ref here or
            // every rejected compose would pin a DM page.
            let _ = writer.release(&v).await;
            return Err(DmError::Busy);
        }
        if resp.is_empty() {
            return Err(DmError::Malformed);
        }
        Ok(())
    }

    async fn read(&self, op: u8, user: u32) -> DmResult<usize> {
        let _gate = self.gate()?;
        let mut req = BytesMut::with_capacity(5);
        req.put_u8(op);
        req.put_u32_le(user);
        let resp = self
            .client
            .rpc()
            .call(self.entry, SOC_REQ, req.freeze())
            .await
            .map_err(|_| DmError::Transport)?;
        if resp.as_ref() == SOC_BUSY_RESP {
            return Err(DmError::Busy);
        }
        let values = decode_values(&resp)?;
        // Materialize all posts concurrently (a real client would issue the
        // DM reads in parallel; inline values complete immediately).
        let mut handles = Vec::with_capacity(values.len());
        for v in values {
            let client = self.client.clone();
            handles.push(simcore::spawn(async move {
                client.fetch(&v).await.map(|d| d.len())
            }));
        }
        let mut total = 0usize;
        for h in handles {
            total += h.await?;
        }
        Ok(total)
    }

    /// Read the home timeline of `user`; returns media bytes materialized.
    pub async fn read_home(&self, user: u32) -> DmResult<usize> {
        self.read(OP_READ_HOME, user).await
    }

    /// Read the timeline of `user`.
    pub async fn read_user(&self, user: u32) -> DmResult<usize> {
        self.read(OP_READ_USER, user).await
    }

    /// One request drawn from the paper's 60/30/10 mix.
    pub async fn mixed_request(&self) -> DmResult<()> {
        let user = self.zipf.sample() as u32;
        match self.rng.pick_weighted(&MIX) {
            0 => {
                self.read_home(user).await?;
            }
            1 => {
                self.read_user(user).await?;
            }
            _ => {
                let composer = self.rng.gen_range(self.users as u64) as u32;
                self.compose(composer).await?;
            }
        }
        Ok(())
    }

    /// Seed the network with `n_posts` posts so reads have data.
    pub async fn preload(&self, n_posts: usize) -> DmResult<()> {
        for i in 0..n_posts {
            self.compose((i as u32) % self.users).await?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;

    fn deploy(kind: SystemKind) -> (Sim, Rc<RefCell<Option<SocialApp>>>) {
        let sim = Sim::new();
        let slot = Rc::new(RefCell::new(None));
        let s2 = slot.clone();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 99);
            let app = build_social(&cluster, 100, 4096, 1).await;
            *s2.borrow_mut() = Some(app);
        });
        (sim, slot)
    }

    #[test]
    fn compose_then_read_user_returns_media() {
        for kind in SystemKind::ALL {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 99);
                let app = build_social(&cluster, 100, 4096, 1).await;
                app.compose(7).await.unwrap();
                app.compose(7).await.unwrap();
                let bytes = app.read_user(7).await.unwrap();
                assert_eq!(bytes, 2 * 4096, "{kind:?}");
            });
        }
    }

    #[test]
    fn home_timeline_fanout_reaches_followers() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 99);
            let app = build_social(&cluster, 50, 4096, 1).await;
            // Compose from everyone; some follower's home timeline fills.
            app.preload(100).await.unwrap();
            let mut saw = 0usize;
            for u in 0..50 {
                saw += app.read_home(u).await.unwrap();
            }
            assert!(saw > 0, "fan-out must populate home timelines");
        });
    }

    #[test]
    fn read_empty_timeline_is_empty() {
        let (_sim, _slot) = deploy(SystemKind::Erpc);
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 99);
            let app = build_social(&cluster, 10, 4096, 1).await;
            assert_eq!(app.read_home(3).await.unwrap(), 0);
            assert_eq!(app.read_user(3).await.unwrap(), 0);
        });
    }

    #[test]
    fn mixed_workload_runs_on_all_systems() {
        for kind in SystemKind::ALL {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 99);
                let app = build_social(&cluster, 50, 2048, 7).await;
                app.preload(30).await.unwrap();
                for _ in 0..30 {
                    app.mixed_request().await.unwrap();
                }
            });
        }
    }

    #[test]
    fn movers_stay_cold_under_dmrpc() {
        let run = |kind| {
            let sim = Sim::new();
            sim.block_on(async move {
                let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 99);
                let app = build_social(&cluster, 50, 16384, 7).await;
                app.preload(20).await.unwrap();
                cluster.reset_stats();
                for u in 0..10 {
                    app.read_home(u).await.unwrap();
                }
                // Server A runs only nginx + proxy (pure movers).
                app.servers[0].mem.traffic_bytes()
            })
        };
        let erpc = run(SystemKind::Erpc);
        let dm = run(SystemKind::DmNet);
        assert!(
            dm * 10 < erpc.max(1),
            "mover traffic: eRPC {erpc} vs DmRPC-net {dm}"
        );
    }

    #[test]
    fn scaled_social_serves_population_workload() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 99);
            let pop = Population::new(1, 42);
            let app = build_social_scaled(&cluster, pop, 2048, 7, None).await;
            assert_eq!(app.users, 1000);
            assert!(app.admission.is_none());
            app.preload(20).await.unwrap();
            for _ in 0..20 {
                app.mixed_request().await.unwrap();
            }
        });
    }

    #[test]
    fn front_door_shed_returns_busy_and_releases_media() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 99);
            let pop = Population::new(1, 42);
            // max_inflight: 0 would reject everything including the probe
            // path; use a queue of 1 and race two composes instead.
            let cfg = AdmissionConfig {
                max_inflight: 1,
                ..AdmissionConfig::default()
            };
            let app = Rc::new(build_social_scaled(&cluster, pop, 4096, 7, Some(cfg)).await);
            let used_before = {
                let pm = &cluster.dm_servers[0];
                pm.with_page_manager(|pm| pm.capacity_pages() - pm.free_pages())
            };
            let a = {
                let app = app.clone();
                simcore::spawn(async move { app.compose(1).await })
            };
            let b = {
                let app = app.clone();
                simcore::spawn(async move { app.compose(2).await })
            };
            let (ra, rb) = (a.await, b.await);
            let adm = app.admission.as_ref().expect("installed");
            // Exactly one of the two composes must have been shed.
            let shed_err = [&ra, &rb]
                .iter()
                .filter(|r| matches!(r, Err(DmError::Busy)))
                .count();
            assert_eq!(shed_err, 1, "got {ra:?} / {rb:?}");
            assert_eq!(adm.rejected(), 1);
            // The shed compose released its media ref: only the stored
            // post's page remains pinned.
            let used_after = {
                let pm = &cluster.dm_servers[0];
                pm.with_page_manager(|pm| pm.capacity_pages() - pm.free_pages())
            };
            assert_eq!(used_after - used_before, 1, "shed compose leaked a page");
        });
    }

    #[test]
    fn post_eviction_releases_refs() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 99);
            let app = build_social(&cluster, 10, 4096, 1).await;
            // Overflow the post store.
            app.preload(POST_CAPACITY + 50).await.unwrap();
            // The DM server must not have leaked: pages for evicted posts
            // were released. (One page per 4 KiB post.)
            let free = cluster.dm_servers[0].with_page_manager(|pm| pm.free_pages());
            let cap = cluster.dm_servers[0].with_page_manager(|pm| pm.capacity_pages());
            assert!(
                cap - free <= POST_CAPACITY + 60,
                "leaked pages: {} in use",
                cap - free
            );
        });
    }
}
